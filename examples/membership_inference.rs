//! Membership inference: the attack DP training is meant to blunt.
//!
//! §1 of the paper motivates user-level DP with membership-inference
//! attacks [25, 52]: an adversary holding the model can tell whether a
//! target's data was used in training. This example runs the standard
//! loss-threshold attack against (a) a non-private skip-gram and (b) a
//! PLP model trained under a finite (ε, δ) budget, and compares the
//! attacker's AUC.
//!
//! Run with: `cargo run --release --example membership_inference`

use rand::rngs::StdRng;
use rand::SeedableRng;

use dp_nextloc::core::attacks::loss_threshold_attack;
use dp_nextloc::core::config::Hyperparameters;
use dp_nextloc::core::experiment::{ExperimentConfig, PreparedData};
use dp_nextloc::core::nonprivate::{train_nonprivate, NonPrivateConfig};
use dp_nextloc::core::plp::train_plp;
use dp_nextloc::privacy::PrivacyBudget;

fn main() {
    let prep = PreparedData::generate(&ExperimentConfig::small(321)).expect("data");
    println!(
        "dataset: {} train users, {} held-out users\n",
        prep.train.num_users(),
        prep.test.num_users()
    );

    let hp = Hyperparameters {
        embedding_dim: 24,
        negative_samples: 8,
        budget: PrivacyBudget::new(2.0, 2e-4).expect("budget"),
        max_steps: 60,
        ..Hyperparameters::default()
    };

    // (a) Non-private model: trained to convergence, it memorises more.
    let mut rng = StdRng::seed_from_u64(1);
    let np = train_nonprivate(
        &mut rng,
        &prep.train,
        None,
        &hp,
        &NonPrivateConfig {
            epochs: 15,
            lr_decay: false,
            ..NonPrivateConfig::default()
        },
    )
    .expect("non-private training");

    // (b) PLP model under a finite budget.
    let mut rng = StdRng::seed_from_u64(1);
    let plp = train_plp(&mut rng, &prep.train, None, &hp).expect("private training");
    println!(
        "PLP spent eps = {:.3} over {} steps\n",
        plp.summary.epsilon_spent, plp.summary.steps
    );

    // Attack both. Members = training users; non-members = held-out users.
    let mut rng = StdRng::seed_from_u64(2);
    let attack_np = loss_threshold_attack(&mut rng, &np.params, &prep.train, &prep.test, &hp)
        .expect("attack (non-private)");
    let mut rng = StdRng::seed_from_u64(2);
    let attack_plp = loss_threshold_attack(&mut rng, &plp.params, &prep.train, &prep.test, &hp)
        .expect("attack (PLP)");

    println!("loss-threshold membership inference (AUC 0.5 = no leakage):");
    println!(
        "  non-private: AUC {:.3} (advantage {:+.3}); member loss {:.3} vs non-member {:.3}",
        attack_np.auc,
        attack_np.advantage,
        attack_np.member_mean_loss,
        attack_np.nonmember_mean_loss
    );
    println!(
        "  PLP (eps=2): AUC {:.3} (advantage {:+.3}); member loss {:.3} vs non-member {:.3}",
        attack_plp.auc,
        attack_plp.advantage,
        attack_plp.member_mean_loss,
        attack_plp.nonmember_mean_loss
    );
    println!(
        "\nDP bound check: the private model's advantage should sit near 0 \
         (and certainly below e^eps - 1 over trivial baselines)."
    );
}
