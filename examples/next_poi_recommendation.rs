//! Next-POI recommendation walkthrough (§3.3 "Model Utilization").
//!
//! Trains a (non-private, for speed) skip-gram on synthetic Tokyo
//! check-ins, then walks through the deployment path: build the profile
//! F(ζ) from a user's recent check-ins, rank all POIs by cosine score,
//! return the top-K — optionally excluding just-visited places — and map
//! tokens back to POI coordinates.
//!
//! Run with: `cargo run --release --example next_poi_recommendation`

use rand::rngs::StdRng;
use rand::SeedableRng;

use dp_nextloc::core::config::Hyperparameters;
use dp_nextloc::core::experiment::{ExperimentConfig, PreparedData};
use dp_nextloc::core::nonprivate::{train_nonprivate, NonPrivateConfig};
use dp_nextloc::data::generator::SyntheticGenerator;
use dp_nextloc::model::metrics::{evaluate_hit_rate, leave_one_out_trials};
use dp_nextloc::model::Recommender;

fn main() {
    let config = ExperimentConfig::small(2024);
    // Regenerate the raw world too so we can resolve coordinates.
    let raw = SyntheticGenerator::generate_with_seed(config.generator.clone(), config.seed)
        .expect("generation");
    let prep = PreparedData::from_checkins(&raw, &config).expect("preparation");

    let hp = Hyperparameters {
        embedding_dim: 32,
        negative_samples: 8,
        ..Hyperparameters::default()
    };
    let mut rng = StdRng::seed_from_u64(11);
    println!("training a non-private skip-gram for a few epochs ...");
    let out = train_nonprivate(
        &mut rng,
        &prep.train,
        None,
        &hp,
        &NonPrivateConfig {
            epochs: 6,
            ..NonPrivateConfig::default()
        },
    )
    .expect("training");

    let recommender = Recommender::new(&out.params);

    // Take a real held-out trajectory as the "recent check-ins" zeta.
    let (input, target) = leave_one_out_trials(&prep.test)
        .into_iter()
        .find(|(i, _)| i.len() >= 3)
        .expect("a test trajectory with >= 3 visits");
    println!("\nrecent check-ins zeta (tokens): {input:?}");
    println!("ground-truth next location: token {target}");

    let top = recommender.recommend(input, 10).expect("recommendation");
    println!("top-10 recommendations: {top:?}");
    println!("hit: {}", top.contains(&target));

    // Same query, but suppress places the user is standing in right now.
    let fresh = recommender
        .recommend_excluding(input, 10, input)
        .expect("recommendation");
    println!("top-10 excluding already-visited: {fresh:?}");

    // Tokens map back to POIs with coordinates via the shared vocabulary.
    println!("\nresolved coordinates of the top-3:");
    for &t in top.iter().take(3) {
        let loc = prep.vocab.location(t).expect("token in vocab");
        if let Some(poi) = raw.pois.iter().find(|p| p.id == loc) {
            println!(
                "  token {t} -> POI {:?} at ({:.4}, {:.4})",
                poi.id.0, poi.point.lat, poi.point.lon
            );
        }
    }

    // Aggregate quality on all held-out users.
    let hr = evaluate_hit_rate(&recommender, &prep.test, &[5, 10, 20]).expect("evaluation");
    println!("\nheld-out quality:");
    for h in &hr {
        println!("  HR@{:<2} = {:.4}", h.k, h.rate());
    }
}
