//! Quickstart: train a differentially-private next-location model on a
//! synthetic check-in dataset and ask it for recommendations.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;

use dp_nextloc::core::config::Hyperparameters;
use dp_nextloc::core::experiment::{evaluate, ExperimentConfig, PreparedData};
use dp_nextloc::core::plp::train_plp;
use dp_nextloc::model::Recommender;
use dp_nextloc::privacy::PrivacyBudget;

fn main() {
    // 1. Data: a synthetic Foursquare-Tokyo-like dataset (the real export
    //    is not redistributable; see DESIGN.md). Everything is seeded.
    let config = ExperimentConfig::small(42);
    let prep = PreparedData::generate(&config).expect("data generation");
    println!(
        "dataset: {} users / {} locations / {} check-ins",
        prep.stats.num_users, prep.stats.num_locations, prep.stats.num_checkins
    );

    // 2. Hyper-parameters: the paper's defaults, with a small budget so the
    //    example finishes in seconds. delta < 1/N as the paper requires.
    let hp = Hyperparameters {
        embedding_dim: 32,
        budget: PrivacyBudget::new(1.0, 2e-4).expect("valid budget"),
        grouping_factor: 4,
        sampling_prob: 0.06,
        noise_multiplier: 2.5,
        max_steps: 40,
        ..Hyperparameters::default()
    };

    // 3. Train under user-level (epsilon, delta)-DP (Algorithm 1).
    let mut rng = StdRng::seed_from_u64(7);
    let outcome = train_plp(&mut rng, &prep.train, None, &hp).expect("training");
    println!(
        "trained {} private steps, spent epsilon = {:.3} (budget {}), stop: {:?}",
        outcome.summary.steps,
        outcome.summary.epsilon_spent,
        hp.budget.epsilon,
        outcome.summary.stop_reason
    );

    // 4. Evaluate leave-one-out Hit-Rate on held-out users.
    let hr = evaluate(&outcome.params, &prep.test, &[5, 10, 20]).expect("evaluation");
    for h in &hr {
        println!(
            "HR@{:<2} = {:.4}  ({} / {} trials)",
            h.k,
            h.rate(),
            h.hits,
            h.trials
        );
    }

    // 5. Deploy: only the (normalised) embedding matrix ships to devices.
    let recommender = Recommender::new(&outcome.params);
    let recent = &prep.test.users[0].sessions[0];
    let input = &recent[..recent.len().saturating_sub(1).max(1)];
    let top = recommender.recommend(input, 5).expect("recommendation");
    println!("recent check-ins (tokens): {input:?}");
    println!("top-5 next-location suggestions (tokens): {top:?}");

    // The privacy ledger is the auditable artifact shipped with the model.
    println!(
        "ledger: {} entries, {} steps, independently-recomputed epsilon = {:.3}",
        outcome.ledger.entries().len(),
        outcome.ledger.total_steps(),
        outcome.ledger.epsilon(hp.budget.delta).expect("replay")
    );
}
