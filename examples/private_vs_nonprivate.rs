//! The privacy/utility trade-off in one picture: non-private skip-gram vs
//! PLP vs user-level DP-SGD vs the popularity baseline, with the paper's
//! paired t-test over multiple seeds (§5.2).
//!
//! Run with: `cargo run --release --example private_vs_nonprivate`

use rand::rngs::StdRng;
use rand::SeedableRng;

use dp_nextloc::core::config::Hyperparameters;
use dp_nextloc::core::dpsgd::train_dpsgd;
use dp_nextloc::core::experiment::{hit_rate_at_10, ExperimentConfig, PreparedData};
use dp_nextloc::core::nonprivate::{train_nonprivate, NonPrivateConfig};
use dp_nextloc::core::plp::train_plp;
use dp_nextloc::linalg::stats::paired_t_test;
use dp_nextloc::model::metrics::{popularity_hit_rate, random_baseline, token_counts};
use dp_nextloc::privacy::PrivacyBudget;

fn main() {
    let prep = PreparedData::generate(&ExperimentConfig::small(99)).expect("data");
    println!(
        "dataset: {} users / {} locations / {} check-ins\n",
        prep.stats.num_users, prep.stats.num_locations, prep.stats.num_checkins
    );

    let mut hp = Hyperparameters {
        embedding_dim: 32,
        negative_samples: 8,
        budget: PrivacyBudget::new(2.0, 2e-4).expect("budget"),
        max_steps: 60,
        ..Hyperparameters::default()
    };

    // Reference points.
    let mut rng = StdRng::seed_from_u64(1);
    let np = train_nonprivate(
        &mut rng,
        &prep.train,
        None,
        &hp,
        &NonPrivateConfig {
            epochs: 6,
            ..NonPrivateConfig::default()
        },
    )
    .expect("non-private");
    let np_hr = hit_rate_at_10(&np.params, &prep.test).expect("eval");

    let counts = token_counts(&prep.train);
    let pop_hr = popularity_hit_rate(&counts, &prep.test, &[10])[0].rate();

    // Multiple seeds for the significance test.
    let seeds = [11u64, 12, 13, 14, 15];
    let mut plp_scores = Vec::new();
    let mut dpsgd_scores = Vec::new();
    for &s in &seeds {
        hp.grouping_factor = 4;
        let mut rng = StdRng::seed_from_u64(s);
        let plp = train_plp(&mut rng, &prep.train, None, &hp).expect("plp");
        plp_scores.push(hit_rate_at_10(&plp.params, &prep.test).expect("eval"));

        let mut rng = StdRng::seed_from_u64(s);
        let base = train_dpsgd(&mut rng, &prep.train, None, &hp).expect("dpsgd");
        dpsgd_scores.push(hit_rate_at_10(&base.params, &prep.test).expect("eval"));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    println!("{:<28} {:>8}", "method", "HR@10");
    println!("{:<28} {:>8.4}", "non-private skip-gram", np_hr);
    println!("{:<28} {:>8.4}", "PLP (eps=2, lambda=4)", mean(&plp_scores));
    println!("{:<28} {:>8.4}", "DP-SGD (eps=2)", mean(&dpsgd_scores));
    println!("{:<28} {:>8.4}", "popularity baseline", pop_hr);
    println!(
        "{:<28} {:>8.4}",
        "random baseline",
        random_baseline(10, prep.vocab_size())
    );

    match paired_t_test(&plp_scores, &dpsgd_scores) {
        Some(t) => println!(
            "\npaired t-test PLP vs DP-SGD over {} seeds: t = {:.3}, p = {:.4} (mean diff {:+.4})",
            seeds.len(),
            t.t_statistic,
            t.p_value,
            t.mean_difference
        ),
        None => println!("\npaired t-test degenerate (identical scores across seeds)"),
    }
    println!("(at this toy scale the gap is small; see the fig07/fig08 harnesses for the paper-shape comparison)");
}
