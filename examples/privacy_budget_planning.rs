//! Privacy-budget planning with the moments accountant.
//!
//! Answers the questions a practitioner asks before training (§5.1, §5.3):
//! how many steps does a budget afford, what noise scale do I need, and
//! how much tighter is the moments accountant than classical composition?
//!
//! Run with: `cargo run --release --example privacy_budget_planning`

use dp_nextloc::privacy::accountant::MomentsAccountant;
use dp_nextloc::privacy::composition::{advanced_composition, naive_composition};
use dp_nextloc::privacy::planner::{calibrate_noise, epsilon_for_steps, max_steps};
use dp_nextloc::privacy::PrivacyBudget;

fn main() {
    let delta = PrivacyBudget::paper_delta(); // 2e-4 < 1/4602

    // 1. Steps afforded by a budget at the paper's settings.
    println!("steps afforded by (eps, delta={delta}) at the paper's settings:");
    println!(
        "{:<8} {:<8} {:>8} {:>8} {:>8} {:>8}",
        "q", "sigma", "eps=1", "eps=2", "eps=3", "eps=4"
    );
    for (q, sigma) in [(0.06, 1.5), (0.06, 2.5), (0.10, 1.5), (0.10, 2.5)] {
        let row: Vec<u64> = [1.0, 2.0, 3.0, 4.0]
            .iter()
            .map(|&e| max_steps(q, sigma, PrivacyBudget::new(e, delta).unwrap()).unwrap())
            .collect();
        println!(
            "{:<8} {:<8} {:>8} {:>8} {:>8} {:>8}",
            q, sigma, row[0], row[1], row[2], row[3]
        );
    }

    // 2. Calibrating sigma for a target step count.
    let budget = PrivacyBudget::new(2.0, delta).unwrap();
    for steps in [100u64, 300, 1000] {
        let sigma = calibrate_noise(0.06, steps, budget, 50.0, 1e-4).unwrap();
        println!("to run {steps} steps at q=0.06 within eps=2: sigma >= {sigma:.3}");
    }

    // 3. The moments accountant vs classical composition for T steps.
    let q = 0.06;
    let sigma = 2.5;
    let steps = 300u64;
    let eps_ma = epsilon_for_steps(q, sigma, steps, delta).unwrap();
    // Per-step classical Gaussian mechanism cost (Theorem 2.1 inverted),
    // amplified linearly by q for the naive estimate.
    let eps_step = (2.0 * (1.25f64 / delta).ln()).sqrt() / sigma * q;
    let (eps_naive, _) = naive_composition(eps_step, 0.0, steps).unwrap();
    let (eps_adv, _) = advanced_composition(eps_step, 0.0, steps, delta / 2.0).unwrap();
    println!("\ncomposing {steps} subsampled-Gaussian steps (q={q}, sigma={sigma}):");
    println!("  naive composition:    eps ~ {eps_naive:.2}");
    println!("  advanced composition: eps ~ {eps_adv:.2}");
    println!("  moments accountant:   eps = {eps_ma:.2}");

    // 4. Live tracking during (simulated) training, as Algorithm 1 does.
    let mut acc = MomentsAccountant::new(delta).unwrap();
    let budget = PrivacyBudget::new(1.0, delta).unwrap();
    let mut step = 0u64;
    loop {
        let peek = acc.epsilon_after_hypothetical_step(q, sigma).unwrap();
        if peek >= budget.epsilon {
            break;
        }
        acc.step(q, sigma).unwrap();
        step += 1;
        if step.is_multiple_of(20) {
            println!("after {step} steps: eps = {:.4}", acc.epsilon().unwrap());
        }
    }
    println!(
        "stopped before step {} — next step would reach eps {:.4} >= budget {}",
        step + 1,
        acc.epsilon_after_hypothetical_step(q, sigma).unwrap(),
        budget.epsilon
    );
}
