//! Property-based tests of the system's core invariants (proptest).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dp_nextloc::data::checkin::UserId;
use dp_nextloc::data::dataset::{TokenizedDataset, UserSequences};
use dp_nextloc::data::grouping::{
    group_data, group_data_split, realized_split_factor, GroupingStrategy,
};
use dp_nextloc::linalg::ops;
use dp_nextloc::model::clip::clip_per_layer;
use dp_nextloc::model::grad::SparseGrad;
use dp_nextloc::model::loss::{forward_backward, Loss, Scratch};
use dp_nextloc::model::params::ModelParams;
use dp_nextloc::privacy::planner::epsilon_for_steps;
use dp_nextloc::privacy::rdp::RdpCurve;

fn dataset(num_users: usize, tokens_per_user: usize, vocab: usize) -> TokenizedDataset {
    let users = (0..num_users)
        .map(|i| UserSequences {
            user: UserId(i as u32),
            sessions: vec![(0..tokens_per_user).map(|t| (t * 7 + i) % vocab).collect()],
        })
        .collect();
    TokenizedDataset {
        users,
        vocab_size: vocab,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random grouping partitions the sampled users exactly (ω = 1).
    #[test]
    fn grouping_is_a_partition(
        num_users in 1usize..40,
        lambda in 1usize..8,
        seed in 0u64..1000,
        strategy in prop_oneof![
            Just(GroupingStrategy::Random),
            Just(GroupingStrategy::EqualFrequency)
        ],
    ) {
        let ds = dataset(num_users, 5, 20);
        let sampled: Vec<usize> = (0..num_users).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let buckets = group_data(&mut rng, &sampled, &ds, lambda, strategy).unwrap();
        let mut all: Vec<usize> =
            buckets.iter().flat_map(|b| b.user_indices.iter().copied()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, sampled);
        prop_assert_eq!(realized_split_factor(&buckets), 1);
        // No bucket exceeds lambda members.
        prop_assert!(buckets.iter().all(|b| b.user_indices.len() <= lambda));
        // Token conservation.
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, num_users * 5);
    }

    /// Splitting with ω never exceeds the declared split factor and
    /// conserves every token.
    #[test]
    fn split_grouping_respects_omega(
        num_users in 4usize..30,
        omega in 1usize..4,
        seed in 0u64..500,
    ) {
        let ds = dataset(num_users, 8, 20);
        let sampled: Vec<usize> = (0..num_users).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // lambda = 1 guarantees enough buckets for any omega <= 4.
        match group_data_split(&mut rng, &sampled, &ds, 1, omega) {
            Ok(buckets) => {
                prop_assert!(realized_split_factor(&buckets) <= omega);
                let total: usize = buckets.iter().map(|b| b.len()).sum();
                prop_assert_eq!(total, num_users * 8);
            }
            Err(_) => prop_assert!(omega > num_users, "only fails with too few buckets"),
        }
    }

    /// Per-layer clipping always bounds the global norm by C and never
    /// *increases* any tensor's norm.
    #[test]
    fn clipping_contract(
        rows in 1usize..20,
        scale in 0.001f64..100.0,
        clip in 0.01f64..5.0,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = dp_nextloc::linalg::sample::NormalSampler::new();
        let mut g = SparseGrad::new();
        for r in 0..rows {
            let mut v = vec![0.0; 8];
            sampler.fill(&mut rng, scale, &mut v);
            g.add_embedding_row(r, 1.0, &v);
            g.add_context_row(r, 0.5, &v);
            g.add_bias(r, scale);
        }
        let before = g.tensor_norms();
        clip_per_layer(&mut g, clip).unwrap();
        let after = g.tensor_norms();
        prop_assert!(g.global_norm() <= clip + 1e-9);
        prop_assert!(after.0 <= before.0 + 1e-12);
        prop_assert!(after.1 <= before.1 + 1e-12);
        prop_assert!(after.2 <= before.2 + 1e-12);
    }

    /// The accountant's epsilon is monotone in steps, q and 1/sigma.
    #[test]
    fn accountant_monotonicity(
        q in 0.01f64..0.5,
        sigma in 0.8f64..5.0,
        steps in 1u64..200,
    ) {
        let delta = 1e-5;
        let e = epsilon_for_steps(q, sigma, steps, delta).unwrap();
        let e_more_steps = epsilon_for_steps(q, sigma, steps + 50, delta).unwrap();
        let e_more_q = epsilon_for_steps((q + 0.2).min(1.0), sigma, steps, delta).unwrap();
        let e_more_sigma = epsilon_for_steps(q, sigma + 1.0, steps, delta).unwrap();
        prop_assert!(e > 0.0);
        prop_assert!(e_more_steps > e);
        prop_assert!(e_more_q >= e);
        prop_assert!(e_more_sigma < e);
    }

    /// RDP composition is exactly additive.
    #[test]
    fn rdp_composition_additivity(
        q in 0.01f64..0.3,
        sigma in 1.0f64..4.0,
        a in 1u64..50,
        b in 1u64..50,
    ) {
        let step = RdpCurve::subsampled_gaussian_step(q, sigma, 32).unwrap();
        let mut left = RdpCurve::zero(32).unwrap();
        left.compose_steps(&step, a).unwrap();
        left.compose_steps(&step, b).unwrap();
        let mut right = RdpCurve::zero(32).unwrap();
        right.compose_steps(&step, a + b).unwrap();
        for l in 1..=32 {
            let x = left.log_moment(l).unwrap();
            let y = right.log_moment(l).unwrap();
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// The skip-gram loss is finite and its gradient rows stay within the
    /// candidate set, for arbitrary valid tokens.
    #[test]
    fn loss_gradient_support(
        target in 0usize..30,
        context in 0usize..30,
        seed in 0u64..200,
        loss in prop_oneof![Just(Loss::SampledSoftmax), Just(Loss::Sgns)],
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = ModelParams::init(&mut rng, 30, 6).unwrap();
        let negatives: Vec<usize> =
            (0..5).map(|i| (context + i + 1) % 30).filter(|&n| n != context).collect();
        let mut grad = SparseGrad::new();
        let mut scratch = Scratch::new();
        let l = forward_backward(
            &params, loss, target, context, &negatives, 1.0, &mut grad, &mut scratch,
        ).unwrap();
        prop_assert!(l.is_finite() && l >= 0.0);
        prop_assert!(grad.all_finite());
        prop_assert!(grad.embedding.keys().all(|&r| r == target));
        let candidates: Vec<usize> =
            std::iter::once(context).chain(negatives.iter().copied()).collect();
        prop_assert!(grad.context.keys().all(|r| candidates.contains(r)));
        prop_assert!(grad.bias.keys().all(|r| candidates.contains(r)));
    }

    /// Softmax output is always a probability distribution.
    #[test]
    fn softmax_simplex(logits in prop::collection::vec(-50.0f64..50.0, 1..40)) {
        let mut out = vec![0.0; logits.len()];
        ops::softmax_into(&logits, &mut out).unwrap();
        let sum: f64 = out.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(out.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Norm clipping of plain vectors is a projection: applying it twice
    /// equals applying it once.
    #[test]
    fn vector_clip_is_idempotent(
        v in prop::collection::vec(-10.0f64..10.0, 1..30),
        c in 0.01f64..10.0,
    ) {
        let mut once = v.clone();
        ops::clip_to_norm(&mut once, c).unwrap();
        let mut twice = once.clone();
        ops::clip_to_norm(&mut twice, c).unwrap();
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        prop_assert!(ops::l2_norm(&once) <= c + 1e-9);
    }
}
