//! End-to-end: the private training loop (Algorithm 1) through the public
//! API — budget enforcement, ledger auditability, determinism, and the
//! DP-SGD baseline equivalence.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dp_nextloc::core::config::Hyperparameters;
use dp_nextloc::core::dpsgd::train_dpsgd;
use dp_nextloc::core::experiment::{evaluate, ExperimentConfig, PreparedData};
use dp_nextloc::core::plp::train_plp;
use dp_nextloc::core::telemetry::StopReason;
use dp_nextloc::privacy::PrivacyBudget;

fn tiny() -> ExperimentConfig {
    let mut c = ExperimentConfig::small(55);
    c.generator.num_users = 120;
    c.generator.num_locations = 100;
    c.generator.target_checkins = 5_000;
    c.generator.num_clusters = 5;
    c.validation_users = 10;
    c.test_users = 10;
    c
}

fn fast_hp() -> Hyperparameters {
    Hyperparameters {
        embedding_dim: 12,
        negative_samples: 4,
        sampling_prob: 0.1,
        grouping_factor: 4,
        max_steps: 6,
        budget: PrivacyBudget {
            epsilon: 100.0,
            delta: 2e-4,
        },
        ..Hyperparameters::default()
    }
}

#[test]
fn plp_trains_within_budget_and_ledger_replays() {
    let prep = PreparedData::generate(&tiny()).unwrap();
    let mut hp = fast_hp();
    hp.budget = PrivacyBudget {
        epsilon: 1.2,
        delta: 2e-4,
    };
    hp.max_steps = 10_000;
    let mut rng = StdRng::seed_from_u64(9);
    let out = train_plp(&mut rng, &prep.train, None, &hp).unwrap();

    assert_eq!(out.summary.stop_reason, StopReason::BudgetExhausted);
    assert!(out.summary.epsilon_spent < hp.budget.epsilon);
    assert!(out.summary.steps > 0);
    // Independent replay from the auditable ledger.
    let replayed = out.ledger.epsilon(hp.budget.delta).unwrap();
    assert!((replayed - out.summary.epsilon_spent).abs() < 1e-9);
    assert_eq!(out.ledger.total_steps(), out.summary.steps);
    assert!(out.params.all_finite());
    // The model evaluates cleanly on held-out users.
    let hr = evaluate(&out.params, &prep.test, &[5, 10]).unwrap();
    assert!(hr.iter().all(|h| (0.0..=1.0).contains(&h.rate())));
}

#[test]
fn full_private_pipeline_is_deterministic() {
    let prep = PreparedData::generate(&tiny()).unwrap();
    let hp = fast_hp();
    let run = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        train_plp(&mut rng, &prep.train, None, &hp).unwrap()
    };
    let a = run(31);
    let b = run(31);
    assert_eq!(a.params, b.params);
    assert_eq!(a.summary.steps, b.summary.steps);
    let c = run(32);
    assert_ne!(a.params, c.params, "different seeds must diverge");
}

#[test]
fn dpsgd_baseline_is_plp_with_lambda_one() {
    let prep = PreparedData::generate(&tiny()).unwrap();
    let hp = fast_hp();
    let mut rng = StdRng::seed_from_u64(13);
    let base = train_dpsgd(&mut rng, &prep.train, None, &hp).unwrap();
    let mut hp1 = hp.clone();
    hp1.grouping_factor = 1;
    let mut rng = StdRng::seed_from_u64(13);
    let plp1 = train_plp(&mut rng, &prep.train, None, &hp1).unwrap();
    assert_eq!(base.params, plp1.params);
}

#[test]
fn grouping_factor_reduces_buckets_proportionally() {
    let prep = PreparedData::generate(&tiny()).unwrap();
    let mut hp = fast_hp();
    hp.sampling_prob = 0.5;
    let mut rng = StdRng::seed_from_u64(17);
    let out = train_plp(&mut rng, &prep.train, None, &hp).unwrap();
    for t in &out.telemetry {
        assert_eq!(t.buckets, t.sampled_users.div_ceil(hp.grouping_factor));
    }
}

#[test]
fn privacy_accounting_is_independent_of_grouping() {
    // Same (q, sigma, steps) => same epsilon regardless of lambda: grouping
    // is free privacy-wise, which is the paper's core selling point.
    let prep = PreparedData::generate(&tiny()).unwrap();
    let mut eps = Vec::new();
    for lambda in [1usize, 3, 6] {
        let mut hp = fast_hp();
        hp.grouping_factor = lambda;
        let mut rng = StdRng::seed_from_u64(23);
        let out = train_plp(&mut rng, &prep.train, None, &hp).unwrap();
        eps.push(out.summary.epsilon_spent);
    }
    assert!((eps[0] - eps[1]).abs() < 1e-12);
    assert!((eps[1] - eps[2]).abs() < 1e-12);
}

#[test]
fn omega_two_trains_and_documents_higher_noise() {
    let prep = PreparedData::generate(&tiny()).unwrap();
    let mut hp = fast_hp();
    hp.grouping_factor = 1;
    hp.split_factor = 2;
    let mut rng = StdRng::seed_from_u64(29);
    let out = train_plp(&mut rng, &prep.train, None, &hp).unwrap();
    assert!(out.params.all_finite());
    assert_eq!(out.summary.steps, hp.max_steps as u64);
}
