//! End-to-end: the non-private skip-gram pipeline learns real structure
//! from generated check-ins (the Figure 5/6 path).

use rand::rngs::StdRng;
use rand::SeedableRng;

use dp_nextloc::core::config::Hyperparameters;
use dp_nextloc::core::experiment::{evaluate, ExperimentConfig, PreparedData};
use dp_nextloc::core::nonprivate::{train_nonprivate, NonPrivateConfig};
use dp_nextloc::model::metrics::{popularity_hit_rate, random_baseline, token_counts};

fn tiny() -> ExperimentConfig {
    let mut c = ExperimentConfig::small(77);
    c.generator.num_users = 150;
    c.generator.num_locations = 120;
    c.generator.target_checkins = 6_000;
    c.generator.num_clusters = 6;
    c.validation_users = 15;
    c.test_users = 15;
    c
}

fn fast_hp() -> Hyperparameters {
    Hyperparameters {
        embedding_dim: 16,
        negative_samples: 6,
        ..Hyperparameters::default()
    }
}

#[test]
fn nonprivate_training_beats_random_by_a_wide_margin() {
    let prep = PreparedData::generate(&tiny()).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let out = train_nonprivate(
        &mut rng,
        &prep.train,
        None,
        &fast_hp(),
        &NonPrivateConfig {
            epochs: 6,
            ..NonPrivateConfig::default()
        },
    )
    .unwrap();
    let hr10 = evaluate(&out.params, &prep.test, &[10]).unwrap()[0].rate();
    let random = random_baseline(10, prep.vocab_size());
    assert!(
        hr10 > 3.0 * random,
        "learned HR@10 {hr10} should dwarf random {random}"
    );
}

#[test]
fn nonprivate_training_loss_decreases_monotonically_at_the_ends() {
    let prep = PreparedData::generate(&tiny()).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let out = train_nonprivate(
        &mut rng,
        &prep.train,
        None,
        &fast_hp(),
        &NonPrivateConfig {
            epochs: 5,
            ..NonPrivateConfig::default()
        },
    )
    .unwrap();
    let first = out.telemetry.first().unwrap().train_loss;
    let last = out.telemetry.last().unwrap().train_loss;
    assert!(last < first, "epoch loss should fall: {first} -> {last}");
    assert!(out.params.all_finite());
}

#[test]
fn evaluation_baselines_are_ordered_sanely() {
    // popularity >= random on skewed data; both within [0, 1].
    let prep = PreparedData::generate(&tiny()).unwrap();
    let counts = token_counts(&prep.train);
    let pop = popularity_hit_rate(&counts, &prep.test, &[10])[0].rate();
    let rand = random_baseline(10, prep.vocab_size());
    assert!((0.0..=1.0).contains(&pop));
    assert!(
        pop > rand,
        "popularity {pop} must beat random {rand} on Zipf data"
    );
}
