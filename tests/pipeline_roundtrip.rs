//! Cross-crate pipeline invariants: persistence round-trips, vocabulary
//! consistency across splits, and generator/filter statistics.

use dp_nextloc::core::experiment::{ExperimentConfig, PreparedData};
use dp_nextloc::data::generator::SyntheticGenerator;
use dp_nextloc::data::io;
use dp_nextloc::data::preprocess::{filter_sparse, FilterConfig};
use dp_nextloc::data::stats::dataset_stats;

fn tiny() -> ExperimentConfig {
    let mut c = ExperimentConfig::small(101);
    c.generator.num_users = 100;
    c.generator.num_locations = 90;
    c.generator.target_checkins = 4_000;
    c.generator.num_clusters = 5;
    c.validation_users = 8;
    c.test_users = 8;
    c
}

#[test]
fn binary_snapshot_survives_the_full_pipeline() {
    let cfg = tiny();
    let raw = SyntheticGenerator::generate_with_seed(cfg.generator.clone(), cfg.seed).unwrap();
    let bytes = io::encode_binary(&raw);
    let restored = io::decode_binary(bytes).unwrap();
    assert_eq!(raw, restored);

    // Preparing from the restored dataset gives identical tokenised splits.
    let a = PreparedData::from_checkins(&raw, &cfg).unwrap();
    let b = PreparedData::from_checkins(&restored, &cfg).unwrap();
    assert_eq!(a.train, b.train);
    assert_eq!(a.validation, b.validation);
    assert_eq!(a.test, b.test);
}

#[test]
fn csv_export_reimports_to_the_same_histories() {
    let cfg = tiny();
    let raw = SyntheticGenerator::generate_with_seed(cfg.generator.clone(), cfg.seed).unwrap();
    let csv = io::checkins_to_csv(&raw);
    let back = io::checkins_from_csv(&csv).unwrap();
    let rebuilt = dp_nextloc::data::CheckInDataset::from_checkins(raw.pois.clone(), back);
    assert_eq!(raw.users, rebuilt.users);
}

#[test]
fn splits_share_one_vocabulary_and_tokens_are_in_range() {
    let prep = PreparedData::generate(&tiny()).unwrap();
    let l = prep.vocab.len();
    assert_eq!(prep.train.vocab_size, l);
    assert_eq!(prep.validation.vocab_size, l);
    assert_eq!(prep.test.vocab_size, l);
    for split in [&prep.train, &prep.validation, &prep.test] {
        for u in &split.users {
            for s in &u.sessions {
                assert!(s.iter().all(|&t| t < l));
            }
        }
    }
}

#[test]
fn filtering_is_idempotent() {
    let cfg = tiny();
    let raw = SyntheticGenerator::generate_with_seed(cfg.generator.clone(), cfg.seed).unwrap();
    let once = filter_sparse(&raw, FilterConfig::default());
    let twice = filter_sparse(&once, FilterConfig::default());
    assert_eq!(once, twice, "a fixpoint must be stable");
    let s = dataset_stats(&once);
    assert!(s.min_checkins_per_user >= 10 || s.num_users == 0);
}

#[test]
fn generator_matches_paper_statistics_at_full_scale_shape() {
    // Down-scaled proportions of the paper's profile: heavy tail, Zipf
    // skew, sparse user-location matrix.
    let prep = PreparedData::generate(&tiny()).unwrap();
    let s = &prep.stats;
    assert!(s.location_gini > 0.3, "gini {}", s.location_gini);
    assert!(
        s.max_checkins_per_user as f64 >= 3.0 * s.median_checkins_per_user,
        "max {} median {}",
        s.max_checkins_per_user,
        s.median_checkins_per_user
    );
    assert!(s.top1pct_location_share > 0.01);
}
