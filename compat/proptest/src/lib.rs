//! Offline stand-in for `proptest`: a deterministic random-case test
//! runner with the strategy combinators the workspace's property tests
//! use (ranges, `Just`, `prop_oneof!`, `collection::vec`).
//!
//! Unlike real proptest there is no shrinking — a failing case panics
//! with the case index so it can be replayed (the generator is a pure
//! function of the test name and case index).

/// Strategy trait and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values for one test argument.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(usize, u32, u64, i32, i64, f64);

    /// A uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn uniformly from `size` and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Config, RNG and case-loop driver used by the `proptest!` macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::fmt;

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion (from `prop_assert!`-family macros).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps an assertion-failure message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-case RNG: a pure function of (test name, case
    /// index), so every run of the suite sees the same inputs.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Builds the RNG for one case of one named property.
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the name, then mix in the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Runs `f` once per case; panics (failing the enclosing `#[test]`)
    /// on the first case whose assertions fail.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::deterministic(name, case);
            if let Err(e) = f(&mut rng) {
                panic!(
                    "property `{name}` failed at case {case}/{}: {e}",
                    config.cases
                );
            }
        }
    }
}

/// The glob import used by consumers: strategies, config, macros, and
/// the crate itself under the conventional `prop` alias.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(__options)
    }};
}

/// Like `assert!`, but fails only the current case (with its index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails only the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(
            n in 3usize..10,
            x in -2.5f64..2.5,
            pick in prop_oneof![Just(1u8), Just(9u8)],
        ) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.5..2.5).contains(&x));
            prop_assert!(pick == 1 || pick == 9, "unexpected arm {}", pick);
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0i64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..8)
            .map(|c| s.sample(&mut crate::test_runner::TestRng::deterministic("t", c)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|c| s.sample(&mut crate::test_runner::TestRng::deterministic("t", c)))
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]), "cases should vary");
    }
}
