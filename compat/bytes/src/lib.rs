//! Offline stand-in for the `bytes` crate: the little-endian [`Buf`] /
//! [`BufMut`] subset the workspace's binary codecs use, plus cheap
//! reference-counted [`Bytes`] slices and a growable [`BytesMut`].

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable immutable byte buffer with an internal
/// read cursor (reads via [`Buf`] consume from the front).
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Unread bytes remaining.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` iff no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-slice view over the unread bytes (no copy).
    ///
    /// # Panics
    /// Panics when the range is out of bounds, like `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the unread bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// `true` iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

/// Sequential little-endian reads from a byte source.
///
/// # Panics
/// Like the real crate, every `get_*` panics when fewer than the required
/// bytes remain; check [`Buf::remaining`] first.
pub trait Buf {
    /// Unread bytes remaining.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"MAGI");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_i64_le(-42);
        w.put_f64_le(1.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 1 + 4 + 8 + 8 + 8);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MAGI");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slices_share_storage_and_have_independent_cursors() {
        let b = Bytes::from((0u8..32).collect::<Vec<_>>());
        let mut head = b.slice(..4);
        let tail = b.slice(28..);
        assert_eq!(head.get_u8(), 0);
        assert_eq!(head.remaining(), 3);
        assert_eq!(tail.as_ref(), &[28, 29, 30, 31]);
        assert_eq!(b.len(), 32, "parent cursor untouched");
        assert_eq!(b.slice(..b.len() - 8).len(), 24);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }
}
