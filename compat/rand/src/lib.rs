//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the exact API surface it uses: a core [`Rng`] trait,
//! the [`RngExt`] extension methods (`random`, `random_range`,
//! `random_bool`), [`SeedableRng::seed_from_u64`], a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64) and
//! [`seq::SliceRandom::shuffle`]. Streams are fully deterministic per seed,
//! which is exactly what the reproduction needs; no OS entropy is ever
//! consulted.

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an [`Rng`] via [`RngExt::random`].
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as [`RngExt::random_range`] bounds.
pub trait RangeSample: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`; `high > low` must hold.
    fn sample_below<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The successor value (for inclusive upper bounds); saturating.
    fn successor(self) -> Self;
}

macro_rules! impl_range_sample_int {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_below<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded draw (Lemire); deterministic and
                // unbiased enough for experiment data generation.
                let word = rng.next_u64() as u128;
                let draw = (word * span) >> 64;
                (low as i128 + draw as i128) as $t
            }
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_range_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeSample for f64 {
    fn sample_below<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let u: f64 = StandardUniform::sample(rng);
        low + u * (high - low)
    }
    fn successor(self) -> Self {
        self
    }
}

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: RangeSample> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: RangeSample> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "random_range: empty inclusive range");
        T::sample_below(rng, lo, hi.successor())
    }
}

/// Convenience sampling methods over any [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value uniformly from the type's standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Constructing a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded by SplitMix64 expansion of a 64-bit seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        let x: u64 = a.random();
        let y: u64 = c.random();
        assert_ne!(x, y, "different seeds should diverge immediately");
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..6)] = true;
            let v = rng.random_range(2..=8);
            assert!((2..=8).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "got {hits}");
    }
}
