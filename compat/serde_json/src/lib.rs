//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree to JSON text and parses JSON text back into it.
//!
//! Floats are printed with Rust's shortest round-trip formatting, so
//! `to_string` → `from_str` round trips are lossless for every finite
//! `f64`. Non-finite floats serialize as `null` (matching serde_json).

pub use serde::Value;
use serde::{Deserialize, Serialize};

use std::fmt;

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(out: &mut String, v: &Value, level: usize) {
    let pad = " ".repeat(2 * (level + 1));
    let pad_close = " ".repeat(2 * level);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&pad);
                write_pretty(out, item, level + 1);
            }
            out.push('\n');
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&pad);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, level + 1);
            }
            out.push('\n');
            out.push_str(&pad_close);
            out.push('}');
        }
        // Scalars and empty containers render exactly like the compact form.
        other => out.push_str(&other.to_string()),
    }
}

/// Renders any serializable value as compact JSON.
///
/// # Errors
/// Never fails for tree-shaped data; the `Result` mirrors serde_json's API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // `Value`'s `Display` impl is the compact renderer.
    Ok(value.to_value().to_string())
}

/// Renders any serializable value as 2-space-indented JSON.
///
/// # Errors
/// Never fails for tree-shaped data; the `Result` mirrors serde_json's API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| Error::new("invalid utf-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad float `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|v| Value::Int(-v))
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = serde::Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error::new("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing bytes at {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Converts any serializable value into a [`Value`] tree (used by
/// [`json!`]).
pub fn to_value_of<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from object-literal syntax, e.g.
/// `json!({"figure": name, "rows": rows})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object($crate::__serde_map_new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __m = $crate::__serde_map_new();
        $crate::__json_object!(__m ($($tt)+));
        $crate::Value::Object(__m)
    }};
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut __v = ::std::vec::Vec::new();
        $crate::__json_items!(__v () $($tt)+);
        $crate::Value::Array(__v)
    }};
    ($other:expr) => { $crate::to_value_of(&$other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` entries.
/// Values are accumulated token by token (see [`__json_value!`]) so that
/// nested `{...}` / `[...]` literals and arbitrary expressions both work.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ($map:ident ()) => {};
    ($map:ident ($key:literal : $($rest:tt)+)) => {
        $crate::__json_value!($map $key () $($rest)+);
    };
}

/// Implementation detail of [`json!`]: accumulates one entry's value up
/// to a top-level comma (or end of input), then recurses into the value.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_value {
    ($map:ident $key:literal ($($val:tt)+)) => {
        $map.insert(::std::string::String::from($key), $crate::json!($($val)+));
    };
    ($map:ident $key:literal ($($val:tt)+) , $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::json!($($val)+));
        $crate::__json_object!($map ($($rest)*));
    };
    ($map:ident $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::__json_value!($map $key ($($val)* $next) $($rest)*);
    };
}

/// Implementation detail of [`json!`]: same accumulation scheme for
/// array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_items {
    ($vec:ident ()) => {};
    ($vec:ident ($($val:tt)+)) => {
        $vec.push($crate::json!($($val)+));
    };
    ($vec:ident ($($val:tt)+) , $($rest:tt)*) => {
        $vec.push($crate::json!($($val)+));
        $crate::__json_items!($vec () $($rest)*);
    };
    ($vec:ident ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::__json_items!($vec ($($val)* $next) $($rest)*);
    };
}

/// Constructs an empty object map (implementation detail of [`json!`]).
pub fn __serde_map_new() -> serde::Map {
    serde::Map::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("PLP λ=6").unwrap(), "\"PLP λ=6\"");
        let f: f64 = from_str("1.5").unwrap();
        assert_eq!(f, 1.5);
        let s: String = from_str("\"PLP λ=6\"").unwrap();
        assert_eq!(s, "PLP λ=6");
    }

    #[test]
    fn float_precision_survives() {
        for &x in &[0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<f64> = vec![1.0, 2.5, -3.25];
        let text = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, v);
        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        let back: Option<f64> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![json!({"a": 1u64}), json!({"a": 2u64})];
        let v = json!({"figure": "fig07", "rows": rows, "x": 1.5f64});
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            "{\"figure\":\"fig07\",\"rows\":[{\"a\":1},{\"a\":2}],\"x\":1.5}"
        );
    }

    #[test]
    fn escapes_and_pretty_printing() {
        let v = json!({"s": "line\n\"quoted\""});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<f64>("\"nope\"").is_err());
    }
}
