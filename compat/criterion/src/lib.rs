//! Offline stand-in for `criterion`: the same bench-definition surface
//! (`Criterion`, groups, `BenchmarkId`, `criterion_group!` /
//! `criterion_main!`) over a deliberately small timing loop.
//!
//! There is no statistical analysis — each benchmark is warmed up once
//! and timed for a handful of iterations, and the mean is printed. Under
//! `cargo test` (which runs `harness = false` bench targets with the
//! `--test` flag) every benchmark body executes exactly once, as a smoke
//! test.

use std::fmt::Display;
use std::time::Instant;

/// Identifies a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to each benchmark closure; `iter` times the routine.
pub struct Bencher {
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, preventing the result from being optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up (and the smoke-test run)
        if self.iterations == 0 {
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        let per_iter = start.elapsed() / u32::try_from(self.iterations).unwrap_or(u32::MAX);
        println!(
            "    time: {per_iter:>12.2?}/iter over {} iters",
            self.iterations
        );
    }
}

/// The benchmark driver handed to every target function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo runs `harness = false` bench targets with `--test` under
        // `cargo test`; run each body once and skip timing there.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    fn run_one(
        &self,
        group: Option<&str>,
        id: &str,
        sample_size: u64,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let full = match group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_owned(),
        };
        println!("bench: {full}");
        let iterations = if self.test_mode { 0 } else { sample_size };
        f(&mut Bencher { iterations });
    }

    /// Runs an anonymous benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run_one(None, &id.id, 10, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: u64,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.criterion
            .run_one(Some(&self.name), &id.id, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        self.criterion
            .run_one(Some(&self.name), &id.id, self.sample_size, &mut |b| {
                f(b, input)
            });
        self
    }

    /// Ends the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// Bundles target functions into one group-runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_execute() {
        let mut c = Criterion { test_mode: true };
        let mut runs = 0u32;
        c.bench_function("plain", |b| b.iter(|| runs += 1));
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(20);
            g.bench_function(format!("named_{}", 3), |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("param", 64), &64usize, |b, &n| {
                b.iter(|| runs += n as u32)
            });
            g.finish();
        }
        assert_eq!(runs, 1 + 1 + 64, "test mode runs each body exactly once");
    }
}
