//! Offline stand-in for `crossbeam`, backed by `std::thread::scope`
//! (stable since Rust 1.63). Only the `thread::scope` API the workspace
//! uses is provided.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Error half of [`scope`]'s result: the payload of a worker panic.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A handle to a scope in which threads can be spawned; mirrors
    /// `crossbeam::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread; `join` returns the closure's result or
    /// the panic payload.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result.
        ///
        /// # Errors
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker; the closure receives the scope handle so it can
        /// spawn further workers (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns.
    ///
    /// # Errors
    /// `std::thread::scope` re-raises unhandled child panics in the parent,
    /// so unlike crossbeam this in practice only ever returns `Ok`; the
    /// `Result` mirrors crossbeam's signature for drop-in compatibility.
    pub fn scope<'env, F, T>(f: F) -> Result<T, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn workers_run_and_join() {
        let data: Vec<u64> = (0..100).collect();
        let total = thread::scope(|scope| {
            let mid = data.len() / 2;
            let (a, b) = data.split_at(mid);
            let ha = scope.spawn(move |_| a.iter().sum::<u64>());
            let hb = scope.spawn(move |_| b.iter().sum::<u64>());
            ha.join().unwrap() + hb.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 4950);
    }

    #[test]
    fn worker_panic_surfaces_in_join() {
        let result = thread::scope(|scope| {
            let h = scope.spawn(|_| -> usize { panic!("boom") });
            h.join().is_err()
        })
        .unwrap();
        assert!(result, "join must report the worker panic");
    }
}
