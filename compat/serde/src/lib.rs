//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy architecture, this shim uses a
//! simple JSON-like [`Value`] tree as the interchange data model:
//! [`Serialize`] renders a type into a [`Value`], [`Deserialize`] rebuilds
//! the type from one. The derive macros (re-exported from the sibling
//! `serde_derive` proc-macro crate) generate those impls with serde's
//! standard representations: structs as objects, newtype structs as their
//! inner value, unit enum variants as strings and struct/newtype variants
//! as single-key objects. `#[serde(skip)]` skips a field on serialization
//! and restores it with `Default::default()`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Key-ordered JSON object representation.
pub type Map = BTreeMap<String, Value>;

/// The interchange data model: a JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers (finite).
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects.
    Object(Map),
}

impl fmt::Display for Value {
    /// Compact JSON rendering (what `serde_json::to_string` produces).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => {
                if x.is_finite() {
                    let s = x.to_string();
                    // serde_json always distinguishes floats from integers.
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a JSON string literal with standard escapes.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl Value {
    /// Borrows the object map if this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if the value is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable path-free message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from any message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Rendering a value into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Rebuilding a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses a value tree into `Self`.
    ///
    /// # Errors
    /// Returns [`DeError`] when the tree does not match the type's shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called by derived struct impls when a field is absent. `Option`
    /// overrides this to yield `None` (matching serde's behaviour).
    ///
    /// # Errors
    /// The default implementation always fails.
    fn missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError::new(format!("missing field `{field}`")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(DeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) if u <= i64::MAX as u64 => u as i64,
                    _ => return Err(DeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // serde_json renders non-finite floats as null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($name:ident . $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::new(concat!("expected ", $len, "-element array"))),
                }
            }
        }
    };
}

impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<f64>::missing_field("x").unwrap(), None);
    }

    #[test]
    fn integers_cross_decode() {
        // A small positive integer can decode as any numeric type.
        let v = Value::UInt(5);
        assert_eq!(u8::from_value(&v).unwrap(), 5);
        assert_eq!(i32::from_value(&v).unwrap(), 5);
        assert_eq!(f64::from_value(&v).unwrap(), 5.0);
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).is_err());
    }
}
