//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the sibling `serde` shim's value-tree data model, parsing the item's
//! token stream by hand (no `syn`/`quote` — those can't be fetched in this
//! offline environment). Supported shapes cover everything the workspace
//! derives on:
//!
//! * structs with named fields (including `#[serde(skip)]` fields, which
//!   serialize to nothing and deserialize via `Default::default()`),
//! * newtype structs (serialized transparently as the inner value),
//! * enums with unit variants (as strings), struct variants and newtype
//!   variants (as single-key objects) — serde's externally-tagged default.
//!
//! Generic items are rejected with a compile error; the workspace has none.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its name and whether `#[serde(skip)]` was present.
struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    /// Tuple fields (only the count matters); `skip` is not supported here.
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// `true` iff this `#[...]` attribute body is `serde(skip)`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) => {
            name.to_string() == "serde"
                && args
                    .stream()
                    .into_iter()
                    .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consumes attributes at the cursor; returns whether any was
/// `#[serde(skip)]`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while *pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*pos] {
            if p.as_char() == '#' {
                if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        skip |= attr_is_serde_skip(g);
                        *pos += 2;
                        continue;
                    }
                }
            }
        }
        break;
    }
    skip
}

/// Consumes `pub`, `pub(crate)`, `pub(in ...)` at the cursor.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(i)) = tokens.get(*pos) {
        if i.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Parses the fields of a braced group: `a: T, pub b: U<V, W>, ...`.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Counts top-level fields of a tuple group `(A, B<C, D>)`.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for t in group.stream() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip a possible discriminant `= expr` and the trailing comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected item name".into()),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!("serde shim: generic item `{name}` is unsupported"));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g)?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(count_tuple_fields(g)),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => {
                    let mut s = String::from("{ let mut __m = ::serde::Map::new();\n");
                    for f in fs.iter().filter(|f| !f.skip) {
                        s.push_str(&format!(
                            "__m.insert(::std::string::String::from({n:?}), \
                             ::serde::Serialize::to_value(&self.{n}));\n",
                            n = f.name
                        ));
                    }
                    s.push_str("::serde::Value::Object(__m) }");
                    s
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\
                         ::std::string::String::from({vname:?})),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__x) => {{ let mut __m = ::serde::Map::new();\n\
                         __m.insert(::std::string::String::from({vname:?}), \
                         ::serde::Serialize::to_value(__x));\n\
                         ::serde::Value::Object(__m) }},\n"
                    )),
                    Fields::Tuple(_) => arms.push_str(&format!(
                        "{name}::{vname}(..) => panic!(\
                         \"serde shim: multi-field tuple variants unsupported\"),\n"
                    )),
                    Fields::Named(fs) => {
                        let binds: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::new();
                        for f in fs.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "__inner.insert(::std::string::String::from({n:?}), \
                                 ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut __inner = ::serde::Map::new();\n{inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from({vname:?}), \
                             ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m) }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n}}\n"
            )
        }
    }
}

fn gen_named_field_reads(fields: &[Field], map_var: &str) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            s.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            s.push_str(&format!(
                "{n}: match {map_var}.get({n:?}) {{\n\
                 ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                 ::std::option::Option::None => ::serde::Deserialize::missing_field({n:?})?,\n\
                 }},\n",
                n = f.name
            ));
        }
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let mut s = format!(
                        "let __items = match __v {{\n\
                         ::serde::Value::Array(__a) if __a.len() == {n} => __a,\n\
                         _ => return ::std::result::Result::Err(::serde::DeError::new(\
                         \"expected {n}-element array for {name}\")),\n}};\n"
                    );
                    let parts: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    s.push_str(&format!(
                        "::std::result::Result::Ok({name}({}))",
                        parts.join(", ")
                    ));
                    s
                }
                Fields::Named(fs) => format!(
                    "let __m = match __v {{\n\
                     ::serde::Value::Object(__m) => __m,\n\
                     _ => return ::std::result::Result::Err(::serde::DeError::new(\
                     \"expected object for {name}\")),\n}};\n\
                     ::std::result::Result::Ok({name} {{\n{reads}}})",
                    reads = gen_named_field_reads(fs, "__m")
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => keyed_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Fields::Tuple(_) => keyed_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Err(::serde::DeError::new(\
                         \"serde shim: multi-field tuple variants unsupported\")),\n"
                    )),
                    Fields::Named(fs) => keyed_arms.push_str(&format!(
                        "{vname:?} => {{\n\
                         let __m = match __inner {{\n\
                         ::serde::Value::Object(__m) => __m,\n\
                         _ => return ::std::result::Result::Err(::serde::DeError::new(\
                         \"expected object for variant {vname}\")),\n}};\n\
                         ::std::result::Result::Ok({name}::{vname} {{\n{reads}}})\n}},\n",
                        reads = gen_named_field_reads(fs, "__m")
                    )),
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = __m.iter().next().unwrap();\n\
                 match __k.as_str() {{\n{keyed_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                 \"expected string or single-key object for {name}\")),\n}}\n}}\n}}\n"
            )
        }
    }
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
