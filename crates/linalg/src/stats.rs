//! Descriptive statistics and the paired *t*-test.
//!
//! The paper reports that "the improvements of PLP over DP-SGD passed the
//! paired t-test with significance value p < 0.01" (§5.2). [`paired_t_test`]
//! reproduces that check exactly, including the two-sided p-value computed
//! from the Student-t survival function (regularised incomplete beta).

use serde::{Deserialize, Serialize};

/// Numerically-stable running mean/variance (Welford's algorithm).
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of `sorted` data.
///
/// Returns `None` for empty input or `p` outside `[0, 100]`. The input must
/// already be sorted ascending.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Result of a paired two-sided Student *t*-test.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TTestResult {
    /// The t statistic of the mean paired difference.
    pub t_statistic: f64,
    /// Degrees of freedom (`n - 1`).
    pub degrees_of_freedom: u64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of the paired differences `a_i - b_i`.
    pub mean_difference: f64,
}

/// Paired two-sided t-test for `H0: mean(a - b) == 0`.
///
/// Returns `None` when the inputs have different lengths, fewer than two
/// pairs, or zero variance in the differences (the statistic is undefined).
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1.0);
    if var <= 0.0 {
        return None;
    }
    let t = mean / (var / n).sqrt();
    let df = n - 1.0;
    let p = 2.0 * student_t_sf(t.abs(), df);
    Some(TTestResult {
        t_statistic: t,
        degrees_of_freedom: a.len() as u64 - 1,
        p_value: p.clamp(0.0, 1.0),
        mean_difference: mean,
    })
}

/// Survival function `P(T > t)` of the Student-t distribution with `df`
/// degrees of freedom, for `t >= 0`.
pub fn student_t_sf(t: f64, df: f64) -> f64 {
    if t <= 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x)
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients from the canonical Lanczos(7, 9) fit; accurate to ~1e-13
    // over the positive reals used here.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().abs().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised incomplete beta function `I_x(a, b)` via the Lentz continued
/// fraction (Numerical Recipes `betacf`).
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-30;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Two-pass sample variance.
        let var = xs.iter().map(|x| (x - 5.0) * (x - 5.0)).sum::<f64>() / 7.0;
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-10);
        // Merging an empty accumulator is a no-op.
        let snapshot = left;
        left.merge(&RunningStats::new());
        assert_eq!(left.count(), snapshot.count());
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&xs, 0.0), Some(1.0));
        assert_eq!(percentile_sorted(&xs, 100.0), Some(4.0));
        assert_eq!(percentile_sorted(&xs, 50.0), Some(2.5));
        assert_eq!(percentile_sorted(&[], 50.0), None);
        assert_eq!(percentile_sorted(&xs, 101.0), None);
        assert_eq!(percentile_sorted(&[7.0], 33.0), Some(7.0));
    }

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        assert!((ln_gamma(1.0)).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_edges_and_symmetry() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let a = 2.3;
        let b = 4.1;
        let x = 0.37;
        let lhs = regularized_incomplete_beta(a, b, x);
        let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-12);
        // I_x(1,1) = x (uniform CDF).
        assert!((regularized_incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn student_t_sf_known_quantiles() {
        // For df=10, the 97.5% quantile is t=2.228: SF(2.228) ~ 0.025.
        let p = student_t_sf(2.228, 10.0);
        assert!((p - 0.025).abs() < 5e-4, "sf {p}");
        // For df=1 (Cauchy), SF(1) = 0.25 exactly.
        assert!((student_t_sf(1.0, 1.0) - 0.25).abs() < 1e-9);
        assert_eq!(student_t_sf(0.0, 5.0), 0.5);
    }

    #[test]
    fn paired_t_test_detects_shift() {
        let a = [5.1, 5.3, 4.9, 5.2, 5.0, 5.4, 5.1, 5.2];
        let b = [4.0, 4.1, 3.9, 4.2, 4.0, 4.3, 4.1, 4.0];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.t_statistic > 5.0);
        assert!(r.p_value < 0.01, "p {}", r.p_value);
        assert!(r.mean_difference > 1.0);
        assert_eq!(r.degrees_of_freedom, 7);
    }

    #[test]
    fn paired_t_test_no_effect_has_large_p() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.1, 1.9, 3.2, 3.8, 5.1, 5.9];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.p_value > 0.5, "p {}", r.p_value);
    }

    #[test]
    fn paired_t_test_rejects_degenerate_input() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
        assert!(paired_t_test(&[1.0, 2.0], &[1.0]).is_none());
        // Identical constant differences: zero variance.
        assert!(paired_t_test(&[2.0, 3.0], &[1.0, 2.0]).is_none());
    }
}
