//! Error types for the linear-algebra layer.

use std::fmt;

/// Errors produced by shape-checked linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimension of the left-hand operand.
        left: usize,
        /// Dimension of the right-hand operand.
        right: usize,
    },
    /// A matrix constructor received a buffer whose length is not
    /// `rows * cols`.
    BadBuffer {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Actual buffer length supplied.
        len: usize,
    },
    /// An index was out of range for the container.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// A numeric operation produced or received a non-finite value.
    NonFinite {
        /// Description of where the non-finite value was observed.
        op: &'static str,
    },
    /// An argument was outside its legal domain (e.g. a negative norm bound).
    InvalidArgument {
        /// Description of the violated requirement.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => {
                write!(f, "shape mismatch in {op}: {left} vs {right}")
            }
            LinalgError::BadBuffer { rows, cols, len } => {
                write!(
                    f,
                    "buffer of length {len} cannot back a {rows}x{cols} matrix"
                )
            }
            LinalgError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            LinalgError::NonFinite { op } => write!(f, "non-finite value in {op}"),
            LinalgError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_readable() {
        let e = LinalgError::ShapeMismatch {
            op: "dot",
            left: 3,
            right: 4,
        };
        assert_eq!(e.to_string(), "shape mismatch in dot: 3 vs 4");
        let e = LinalgError::BadBuffer {
            rows: 2,
            cols: 3,
            len: 5,
        };
        assert_eq!(e.to_string(), "buffer of length 5 cannot back a 2x3 matrix");
        let e = LinalgError::IndexOutOfRange { index: 9, len: 4 };
        assert_eq!(e.to_string(), "index 9 out of range for length 4");
        let e = LinalgError::NonFinite { op: "normalize" };
        assert_eq!(e.to_string(), "non-finite value in normalize");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LinalgError::NonFinite { op: "x" });
    }
}
