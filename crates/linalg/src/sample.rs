//! Random samplers implemented from first principles.
//!
//! The workspace is restricted to the `rand` crate (no `rand_distr`), so the
//! distributions the paper needs are implemented here:
//!
//! * [`NormalSampler`] — standard Gaussian via the Box–Muller transform,
//!   used by the Gaussian mechanism of differential privacy,
//! * [`GaussianStream`] — a deterministic *counter-based* Gaussian stream:
//!   seeded per (step, domain, row), so noise for any row of a parameter
//!   matrix can be generated independently on any worker thread and still
//!   come out bit-identical to a sequential pass,
//! * [`Zipf`] — bounded Zipf via an inverse-CDF table, used by the synthetic
//!   check-in generator (location popularity follows Zipf's law, paper §4.1),
//! * [`poisson_subsample`] — independent Bernoulli(q) selection over an index
//!   range, the user-sampling step of Algorithm 1 (line 5).
//!
//! # Stream contract
//!
//! Box–Muller produces Gaussians in pairs, so every sampler here carries a
//! cached *spare* variate. That makes a sampler a **stream**: consecutive
//! draws from one sampler are one coupled sequence, and the spare must never
//! leak across logically independent streams (training phases, steps, rows,
//! slices). Two ways to honour the contract:
//!
//! * call [`NormalSampler::reset`] at every stream boundary, or
//! * use a fresh, independently seeded sampler per stream — which is exactly
//!   what [`GaussianStream`] does for per-row noise.
//!
//! Discarding a spare at a stream boundary does not bias anything: every
//! emitted variate is exactly N(0, 1) whether or not its pair twin is used.

use rand::{Rng, RngExt};

use crate::ops;

/// SplitMix64 finalizer: a cheap, high-quality bijective mixer used to
/// derive independent seeds (per step, per stream, per row) from a base
/// seed by domain separation.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of stream `index` within `domain` under a per-step
/// `noise_seed`: chained [`mix64`] applications, so two streams collide only
/// if their `(domain, index)` pairs do.
#[inline]
pub fn stream_seed(noise_seed: u64, domain: u64, index: u64) -> u64 {
    mix64(mix64(mix64(noise_seed) ^ domain) ^ index)
}

/// Standard-normal sampler using the Box–Muller transform with a cached
/// spare variate.
///
/// Box–Muller produces two independent N(0, 1) values per two uniforms; the
/// second is cached so consecutive calls cost one transform each on average.
///
/// One `NormalSampler` instance is one **stream** (see the module docs):
/// reuse it only for draws that belong to the same logical stream, and call
/// [`NormalSampler::reset`] at stream boundaries so a cached spare cannot
/// couple independent phases.
#[derive(Debug, Default, Clone)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        NormalSampler { spare: None }
    }

    /// Drops the cached Box–Muller spare, ending the current stream.
    ///
    /// After a reset the next draw depends only on the RNG state, exactly
    /// as for a freshly constructed sampler — call this at every stream
    /// boundary (new phase, new step, new slice) so a spare generated in
    /// one stream can never be emitted into another.
    pub fn reset(&mut self) {
        self.spare = None;
    }

    /// Draws one standard-normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // u1 in (0, 1]: guard against ln(0).
        let mut u1: f64 = rng.random();
        while u1 <= f64::MIN_POSITIVE {
            u1 = rng.random();
        }
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws one N(0, sigma²) variate.
    pub fn sample_scaled<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64) -> f64 {
        sigma * self.sample(rng)
    }

    /// Fills `out` with independent N(0, sigma²) variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64, out: &mut [f64]) {
        for o in out {
            *o = sigma * self.sample(rng);
        }
    }

    /// Adds independent N(0, sigma²) noise to every element of `v`
    /// (the vector Gaussian mechanism applied in place).
    pub fn perturb<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64, v: &mut [f64]) {
        for x in v {
            *x += sigma * self.sample(rng);
        }
    }
}

/// A self-contained, counter-seeded standard-normal stream.
///
/// The generator is SplitMix64 (a 64-bit counter advanced by the golden-ratio
/// increment and passed through [`mix64`]'s finalizer) feeding Box–Muller.
/// Every stream owns its full state — counter *and* Box–Muller spare — so a
/// stream's output depends only on its seed, never on which thread runs it or
/// what other streams ran before it. Seeding one stream per parameter row via
/// [`stream_seed`] therefore makes noise generation partition-invariant:
/// any split of the rows across workers produces bit-identical output.
#[derive(Debug, Clone)]
pub struct GaussianStream {
    state: u64,
    spare: Option<f64>,
}

impl GaussianStream {
    /// Creates a stream whose entire future output is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        GaussianStream {
            state: seed,
            spare: None,
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1) with 53 bits of precision — the same conversion the
    /// workspace `rand` stub uses, so stream and RNG-backed samplers share
    /// one uniform-to-float convention.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws one standard-normal variate (Box–Muller, cached spare).
    pub fn sample(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // u1 in (0, 1]: guard against ln(0), as in `NormalSampler`.
        let mut u1 = self.next_f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fills `out` with independent N(0, 1) variates.
    pub fn fill(&mut self, out: &mut [f64]) {
        for o in out {
            *o = self.sample();
        }
    }
}

/// Adds independent N(0, sigma²) noise to `data`, treated as consecutive
/// rows of length `row_len` (the final row may be shorter), with one
/// [`GaussianStream`] per row seeded by
/// `stream_seed(noise_seed, domain, first_row + k)`.
///
/// Because each row's noise comes from its own stream, the result for a row
/// depends only on `(noise_seed, domain, absolute row index)`: callers may
/// split a matrix into arbitrary contiguous row ranges (passing each range's
/// `first_row`) and process the ranges on any threads in any order, and the
/// combined output is bit-identical to one sequential pass over the whole
/// matrix. An odd `row_len` simply discards each row-stream's final spare,
/// which leaves every emitted variate exactly N(0, 1).
///
/// `scratch` must hold at least `row_len` elements (one row of standard
/// normals); the noise is applied through the unrolled [`ops::axpy_unchecked`]
/// kernel as `row += sigma * scratch`.
pub fn perturb_rows(
    noise_seed: u64,
    domain: u64,
    sigma: f64,
    row_len: usize,
    first_row: u64,
    data: &mut [f64],
    scratch: &mut [f64],
) {
    assert!(row_len > 0, "perturb_rows requires row_len > 0");
    assert!(
        scratch.len() >= row_len,
        "perturb_rows scratch shorter than row_len"
    );
    for (k, row) in data.chunks_mut(row_len).enumerate() {
        let mut stream = GaussianStream::new(stream_seed(noise_seed, domain, first_row + k as u64));
        let s = &mut scratch[..row.len()];
        stream.fill(s);
        ops::axpy_unchecked(sigma, s, row);
    }
}

/// Bounded Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k + 1)^s`.
///
/// Sampling is O(log n) via binary search over a precomputed CDF table,
/// which is exact (up to floating-point rounding) and fast enough for the
/// generator's ~10⁶ draws.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s`.
    ///
    /// Returns `None` if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Option<Self> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return None;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for c in &mut cdf {
            *c /= total;
        }
        Some(Zipf { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` iff the support is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `k`, or `0.0` out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the first index whose CDF value >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Poisson (independent Bernoulli) subsampling: returns the indices in
/// `0..n` that pass an independent Bernoulli(`q`) trial each.
///
/// This is exactly the user-sampling step of the paper's Algorithm 1: the
/// returned sample has size `q * n` only in expectation, which the moments
/// accountant's privacy-amplification analysis requires.
pub fn poisson_subsample<R: Rng + ?Sized>(rng: &mut R, n: usize, q: f64) -> Vec<usize> {
    let q = q.clamp(0.0, 1.0);
    (0..n).filter(|_| rng.random::<f64>() < q).collect()
}

/// Draws `k` distinct values from `0..n` excluding `forbidden`, by rejection.
///
/// Used for uniform negative sampling: the paper draws `neg` negatives
/// uniformly (a frequency-weighted proposal would leak the private location
/// popularity distribution, §3.2). Rejection is cheap because
/// `k + 1 ≪ n` in all realistic configurations; when `k >= n - 1` the
/// function returns every value except `forbidden`.
pub fn sample_distinct_excluding<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    forbidden: usize,
) -> Vec<usize> {
    let mut picked = Vec::with_capacity(k);
    sample_distinct_excluding_into(rng, n, k, forbidden, &mut picked);
    picked
}

/// [`sample_distinct_excluding`] into a caller-provided buffer, so the
/// negative-sampling inner loop can reuse one candidate vector across calls.
/// `out` is cleared first; it retains its capacity, so steady-state calls are
/// allocation-free. Draws the same RNG sequence as the allocating wrapper.
pub fn sample_distinct_excluding_into<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    forbidden: usize,
    out: &mut Vec<usize>,
) {
    out.clear();
    let avail = if forbidden < n { n - 1 } else { n };
    if k >= avail {
        out.extend((0..n).filter(|&i| i != forbidden));
        return;
    }
    while out.len() < k {
        let c = rng.random_range(0..n);
        if c != forbidden && !out.contains(&c) {
            out.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = NormalSampler::new();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| s.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_sampler_scaled_variance() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut s = NormalSampler::new();
        let n = 100_000;
        let sigma = 2.5;
        let var = (0..n)
            .map(|_| s.sample_scaled(&mut rng, sigma))
            .map(|x| x * x)
            .sum::<f64>()
            / n as f64;
        assert!((var - sigma * sigma).abs() < 0.15, "var {var}");
    }

    #[test]
    fn perturb_adds_noise_in_place() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = NormalSampler::new();
        let mut v = vec![1.0; 10_000];
        s.perturb(&mut rng, 0.1, &mut v);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 1.0).abs() < 0.01);
        assert!(v.iter().any(|&x| (x - 1.0).abs() > 1e-6));
    }

    #[test]
    fn normal_sampler_reset_ends_the_stream() {
        // Drawing one variate caches a Box–Muller spare; without a reset the
        // next draw emits that spare instead of consuming fresh RNG state.
        // `reset` must make the next draw identical to a fresh sampler's.
        let mut warm_rng = StdRng::seed_from_u64(31);
        let mut warm = NormalSampler::new();
        let _ = warm.sample(&mut warm_rng);

        let mut leaky = warm.clone();
        let mut leaky_rng = warm_rng.clone();
        let leaked = leaky.sample(&mut leaky_rng);

        let mut fresh_rng = warm_rng.clone();
        warm.reset();
        let after_reset = warm.sample(&mut warm_rng);

        let mut fresh = NormalSampler::new();
        let fresh_next = fresh.sample(&mut fresh_rng);

        assert_eq!(
            after_reset.to_bits(),
            fresh_next.to_bits(),
            "after reset the sampler must behave like a fresh one"
        );
        assert_ne!(
            leaked.to_bits(),
            after_reset.to_bits(),
            "without reset the cached spare leaks into the next stream"
        );
    }

    #[test]
    fn gaussian_stream_is_deterministic_and_seed_sensitive() {
        let mut a = GaussianStream::new(42);
        let mut b = GaussianStream::new(42);
        let mut c = GaussianStream::new(43);
        let xs: Vec<u64> = (0..64).map(|_| a.sample().to_bits()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.sample().to_bits()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.sample().to_bits()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert_ne!(xs, zs, "different seed, different stream");
    }

    #[test]
    fn gaussian_stream_moments() {
        let mut s = GaussianStream::new(7);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| s.sample()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn stream_seed_separates_domains_and_indices() {
        let base = 0xDEAD_BEEF;
        assert_ne!(stream_seed(base, 0, 5), stream_seed(base, 1, 5));
        assert_ne!(stream_seed(base, 0, 5), stream_seed(base, 0, 6));
        assert_ne!(stream_seed(base, 0, 5), stream_seed(base ^ 1, 0, 5));
    }

    #[test]
    fn perturb_rows_is_partition_invariant() {
        // One sequential pass over all rows vs. the same matrix split into
        // contiguous row ranges: bit-identical output is the whole point of
        // per-row streams.
        let row_len = 7;
        let rows = 12;
        let base: Vec<f64> = (0..rows * row_len).map(|i| i as f64 * 0.25).collect();
        let sigma = 1.75;
        let seed = 0xABCD_EF01_2345_6789;
        let domain = 3;

        let mut want = base.clone();
        let mut scratch = vec![0.0; row_len];
        perturb_rows(seed, domain, sigma, row_len, 0, &mut want, &mut scratch);

        for split in [1, 3, 5, 8, 11] {
            let mut got = base.clone();
            let (lo, hi) = got.split_at_mut(split * row_len);
            perturb_rows(seed, domain, sigma, row_len, 0, lo, &mut scratch);
            perturb_rows(seed, domain, sigma, row_len, split as u64, hi, &mut scratch);
            let same = got
                .iter()
                .zip(&want)
                .all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(same, "split at row {split} changed bits");
        }
    }

    #[test]
    fn perturb_rows_handles_short_final_row() {
        // 3 full rows of 4 plus a trailing row of 2 (the bias tail case).
        let mut v = vec![0.0; 14];
        let mut scratch = vec![0.0; 4];
        perturb_rows(99, 2, 1.0, 4, 10, &mut v, &mut scratch);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(v.iter().any(|&x| x != 0.0));
        // The tail row must match the head of the same stream's full row.
        let mut full = vec![0.0; 4];
        let mut stream = GaussianStream::new(stream_seed(99, 2, 13));
        stream.fill(&mut full);
        assert_eq!(v[12].to_bits(), full[0].to_bits());
        assert_eq!(v[13].to_bits(), full[1].to_bits());
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(100, 1.0).unwrap();
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn zipf_empirical_head_mass_matches_pmf() {
        let z = Zipf::new(50, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut count0 = 0usize;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        let emp = count0 as f64 / n as f64;
        assert!((emp - z.pmf(0)).abs() < 0.01, "emp {emp} pmf {}", z.pmf(0));
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(10, -1.0).is_none());
        assert!(Zipf::new(10, f64::NAN).is_none());
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_subsample_expectation_and_edges() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 10_000;
        let q = 0.06;
        let sizes: Vec<usize> = (0..50)
            .map(|_| poisson_subsample(&mut rng, n, q).len())
            .collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            (mean - q * n as f64).abs() < 40.0,
            "mean sample size {mean}"
        );
        assert!(poisson_subsample(&mut rng, n, 0.0).is_empty());
        assert_eq!(poisson_subsample(&mut rng, n, 1.0).len(), n);
        assert_eq!(poisson_subsample(&mut rng, n, 2.0).len(), n, "q is clamped");
    }

    #[test]
    fn distinct_excluding_respects_contract() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..200 {
            let s = sample_distinct_excluding(&mut rng, 20, 5, 3);
            assert_eq!(s.len(), 5);
            assert!(!s.contains(&3));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "values are distinct");
        }
    }

    #[test]
    fn distinct_excluding_into_matches_wrapper() {
        let mut a = StdRng::seed_from_u64(23);
        let mut b = StdRng::seed_from_u64(23);
        let mut buf = vec![99, 98];
        for _ in 0..20 {
            let want = sample_distinct_excluding(&mut a, 30, 6, 4);
            sample_distinct_excluding_into(&mut b, 30, 6, 4, &mut buf);
            assert_eq!(buf, want, "same RNG sequence, same picks");
        }
        sample_distinct_excluding_into(&mut b, 3, 10, 1, &mut buf);
        assert_eq!(buf, vec![0, 2], "saturation clears previous contents");
    }

    #[test]
    fn distinct_excluding_saturates_to_full_complement() {
        let mut rng = StdRng::seed_from_u64(19);
        let s = sample_distinct_excluding(&mut rng, 5, 10, 2);
        assert_eq!(s, vec![0, 1, 3, 4]);
        let t = sample_distinct_excluding(&mut rng, 5, 4, 2);
        assert_eq!(t.len(), 4);
    }
}
