//! Random samplers implemented from first principles.
//!
//! The workspace is restricted to the `rand` crate (no `rand_distr`), so the
//! distributions the paper needs are implemented here:
//!
//! * [`NormalSampler`] — standard Gaussian via the Box–Muller transform,
//!   used by the Gaussian mechanism of differential privacy,
//! * [`Zipf`] — bounded Zipf via an inverse-CDF table, used by the synthetic
//!   check-in generator (location popularity follows Zipf's law, paper §4.1),
//! * [`poisson_subsample`] — independent Bernoulli(q) selection over an index
//!   range, the user-sampling step of Algorithm 1 (line 5).

use rand::{Rng, RngExt};

/// Standard-normal sampler using the Box–Muller transform with a cached
/// spare variate.
///
/// Box–Muller produces two independent N(0, 1) values per two uniforms; the
/// second is cached so consecutive calls cost one transform each on average.
#[derive(Debug, Default, Clone)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        NormalSampler { spare: None }
    }

    /// Draws one standard-normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // u1 in (0, 1]: guard against ln(0).
        let mut u1: f64 = rng.random();
        while u1 <= f64::MIN_POSITIVE {
            u1 = rng.random();
        }
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws one N(0, sigma²) variate.
    pub fn sample_scaled<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64) -> f64 {
        sigma * self.sample(rng)
    }

    /// Fills `out` with independent N(0, sigma²) variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64, out: &mut [f64]) {
        for o in out {
            *o = sigma * self.sample(rng);
        }
    }

    /// Adds independent N(0, sigma²) noise to every element of `v`
    /// (the vector Gaussian mechanism applied in place).
    pub fn perturb<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64, v: &mut [f64]) {
        for x in v {
            *x += sigma * self.sample(rng);
        }
    }
}

/// Bounded Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k + 1)^s`.
///
/// Sampling is O(log n) via binary search over a precomputed CDF table,
/// which is exact (up to floating-point rounding) and fast enough for the
/// generator's ~10⁶ draws.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s`.
    ///
    /// Returns `None` if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Option<Self> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return None;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for c in &mut cdf {
            *c /= total;
        }
        Some(Zipf { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` iff the support is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `k`, or `0.0` out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the first index whose CDF value >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Poisson (independent Bernoulli) subsampling: returns the indices in
/// `0..n` that pass an independent Bernoulli(`q`) trial each.
///
/// This is exactly the user-sampling step of the paper's Algorithm 1: the
/// returned sample has size `q * n` only in expectation, which the moments
/// accountant's privacy-amplification analysis requires.
pub fn poisson_subsample<R: Rng + ?Sized>(rng: &mut R, n: usize, q: f64) -> Vec<usize> {
    let q = q.clamp(0.0, 1.0);
    (0..n).filter(|_| rng.random::<f64>() < q).collect()
}

/// Draws `k` distinct values from `0..n` excluding `forbidden`, by rejection.
///
/// Used for uniform negative sampling: the paper draws `neg` negatives
/// uniformly (a frequency-weighted proposal would leak the private location
/// popularity distribution, §3.2). Rejection is cheap because
/// `k + 1 ≪ n` in all realistic configurations; when `k >= n - 1` the
/// function returns every value except `forbidden`.
pub fn sample_distinct_excluding<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    forbidden: usize,
) -> Vec<usize> {
    let mut picked = Vec::with_capacity(k);
    sample_distinct_excluding_into(rng, n, k, forbidden, &mut picked);
    picked
}

/// [`sample_distinct_excluding`] into a caller-provided buffer, so the
/// negative-sampling inner loop can reuse one candidate vector across calls.
/// `out` is cleared first; it retains its capacity, so steady-state calls are
/// allocation-free. Draws the same RNG sequence as the allocating wrapper.
pub fn sample_distinct_excluding_into<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    forbidden: usize,
    out: &mut Vec<usize>,
) {
    out.clear();
    let avail = if forbidden < n { n - 1 } else { n };
    if k >= avail {
        out.extend((0..n).filter(|&i| i != forbidden));
        return;
    }
    while out.len() < k {
        let c = rng.random_range(0..n);
        if c != forbidden && !out.contains(&c) {
            out.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = NormalSampler::new();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| s.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_sampler_scaled_variance() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut s = NormalSampler::new();
        let n = 100_000;
        let sigma = 2.5;
        let var = (0..n)
            .map(|_| s.sample_scaled(&mut rng, sigma))
            .map(|x| x * x)
            .sum::<f64>()
            / n as f64;
        assert!((var - sigma * sigma).abs() < 0.15, "var {var}");
    }

    #[test]
    fn perturb_adds_noise_in_place() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = NormalSampler::new();
        let mut v = vec![1.0; 10_000];
        s.perturb(&mut rng, 0.1, &mut v);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 1.0).abs() < 0.01);
        assert!(v.iter().any(|&x| (x - 1.0).abs() > 1e-6));
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(100, 1.0).unwrap();
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn zipf_empirical_head_mass_matches_pmf() {
        let z = Zipf::new(50, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut count0 = 0usize;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        let emp = count0 as f64 / n as f64;
        assert!((emp - z.pmf(0)).abs() < 0.01, "emp {emp} pmf {}", z.pmf(0));
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(10, -1.0).is_none());
        assert!(Zipf::new(10, f64::NAN).is_none());
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_subsample_expectation_and_edges() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 10_000;
        let q = 0.06;
        let sizes: Vec<usize> = (0..50)
            .map(|_| poisson_subsample(&mut rng, n, q).len())
            .collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            (mean - q * n as f64).abs() < 40.0,
            "mean sample size {mean}"
        );
        assert!(poisson_subsample(&mut rng, n, 0.0).is_empty());
        assert_eq!(poisson_subsample(&mut rng, n, 1.0).len(), n);
        assert_eq!(poisson_subsample(&mut rng, n, 2.0).len(), n, "q is clamped");
    }

    #[test]
    fn distinct_excluding_respects_contract() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..200 {
            let s = sample_distinct_excluding(&mut rng, 20, 5, 3);
            assert_eq!(s.len(), 5);
            assert!(!s.contains(&3));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "values are distinct");
        }
    }

    #[test]
    fn distinct_excluding_into_matches_wrapper() {
        let mut a = StdRng::seed_from_u64(23);
        let mut b = StdRng::seed_from_u64(23);
        let mut buf = vec![99, 98];
        for _ in 0..20 {
            let want = sample_distinct_excluding(&mut a, 30, 6, 4);
            sample_distinct_excluding_into(&mut b, 30, 6, 4, &mut buf);
            assert_eq!(buf, want, "same RNG sequence, same picks");
        }
        sample_distinct_excluding_into(&mut b, 3, 10, 1, &mut buf);
        assert_eq!(buf, vec![0, 2], "saturation clears previous contents");
    }

    #[test]
    fn distinct_excluding_saturates_to_full_complement() {
        let mut rng = StdRng::seed_from_u64(19);
        let s = sample_distinct_excluding(&mut rng, 5, 10, 2);
        assert_eq!(s, vec![0, 1, 3, 4]);
        let t = sample_distinct_excluding(&mut rng, 5, 4, 2);
        assert_eq!(t.len(), 4);
    }
}
