//! Deterministic IVF (inverted-file) index for sublinear cosine top-k.
//!
//! The recommender's model-utilisation step ranks every location by the
//! dot product of a query profile against the unit-normalised embedding
//! rows (paper §3.3). That exhaustive scan is O(L·dim) per query — fine at
//! the paper's L ≈ 5k, a wall at a production vocabulary of 10⁵–10⁷. This
//! module trades it for a two-stage search:
//!
//! 1. **coarse quantiser** — the rows are partitioned into `cells` by a
//!    seeded *spherical k-means* (assignment by maximal dot product,
//!    centroids renormalised each iteration, so the geometry matches the
//!    cosine scoring it serves);
//! 2. **exact re-rank** — a query scores the `cells` centroids, probes the
//!    `nprobe` best, and re-scores every row of the probed cells with the
//!    *same* [`ops::dot_unchecked`] kernel the exhaustive path uses, then
//!    selects through the same top-k heap ([`topk::top_k_indexed_into`]).
//!
//! Shortlisted rows therefore carry their real cosine scores and inherit
//! the NaN-exclusion contract unchanged; the approximation is only in
//! *which* rows are considered, never in how a considered row is scored or
//! ranked.
//!
//! # Determinism contract
//!
//! Like the PR 4/5 kernels, everything here is bit-identical across thread
//! counts:
//!
//! * **build** — each row's cell assignment is a pure function of the row
//!   and the centroids (computed with the fixed-reduction-order dot
//!   kernel), so the assignment pass can be split across any number of
//!   threads; centroid updates then accumulate sequentially in ascending
//!   row order. Initial centroids come from [`sample::mix64`] counters on
//!   the build seed. Same `(embedding, params)` → same index, bit for bit,
//!   at any `threads`.
//! * **search** — candidate scores are exact dot products, and the final
//!   selection's "(score desc, index asc)" order is strict over distinct
//!   rows, so the result depends only on the candidate *set*. With
//!   `nprobe == cells` the candidate set is every row and the search is
//!   bit-identical to the exhaustive scan.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::ops;
use crate::sample::mix64;
use crate::topk::{top_k_indexed_into, top_k_with_scores_into, TopKScratch};

/// Build-time knobs of an [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfBuildParams {
    /// Number of coarse-quantiser cells (k-means clusters). Must be in
    /// `[1, rows]`.
    pub cells: usize,
    /// Lloyd iterations of the spherical k-means.
    pub iters: usize,
    /// Rows used to *train* the centroids: `0` trains on every row, any
    /// other value trains on an evenly-strided sample of (at least) that
    /// many rows. The final assignment always covers every row.
    pub sample: usize,
    /// Seed for the initial centroid choice (mixed through [`mix64`]).
    pub seed: u64,
    /// Threads for the assignment passes. Any value produces the same
    /// index bit-for-bit; this only changes build latency.
    pub threads: usize,
}

impl Default for IvfBuildParams {
    fn default() -> Self {
        IvfBuildParams {
            cells: 256,
            iters: 4,
            sample: 0,
            seed: 0xA55_C0DE,
            threads: 1,
        }
    }
}

/// Reusable buffers for [`IvfIndex::search_into`], so serving workers run
/// the probe + re-rank without allocating in steady state.
#[derive(Debug, Default)]
pub struct IvfScratch {
    centroid_scores: Vec<f64>,
    probes: Vec<(usize, f64)>,
    topk: TopKScratch,
    candidate_ids: Vec<usize>,
    candidate_scores: Vec<f64>,
    exclude_sorted: Vec<usize>,
    q_profile: Vec<i8>,
    coarse_ids: Vec<usize>,
    coarse_approx: Vec<f64>,
    coarse_lb: Vec<f64>,
    coarse_ub: Vec<f64>,
    quant_sel: Vec<(usize, f64)>,
}

impl IvfScratch {
    /// Empty scratch; buffers grow on first use and are retained.
    pub fn new() -> Self {
        IvfScratch::default()
    }
}

/// A coarse-quantiser index over the rows of an embedding matrix: unit
/// centroids plus, per cell, the ascending list of member row ids. The
/// index does not own the embedding — searches take it as an argument and
/// validate its shape, so one frozen matrix can back both the exhaustive
/// and the indexed path.
#[derive(Debug, Clone, PartialEq)]
pub struct IvfIndex {
    /// `cells × dim` unit-normalised centroids.
    centroids: Matrix,
    /// Member row ids per cell, each list ascending.
    lists: Vec<Vec<u32>>,
    /// Row count of the matrix the index was built over.
    rows: usize,
}

impl IvfIndex {
    /// Builds the index over `embedding`'s rows with spherical k-means.
    /// See the module docs for the determinism contract.
    ///
    /// # Errors
    /// `InvalidArgument` when `cells` is not in `[1, rows]`, `iters` or
    /// `threads` is zero; `NonFinite` when the embedding contains a
    /// non-finite value (a corrupt matrix must fail at build, not skew
    /// centroids silently).
    pub fn build(embedding: &Matrix, params: &IvfBuildParams) -> Result<Self, LinalgError> {
        let rows = embedding.rows();
        if params.cells == 0 || params.cells > rows {
            return Err(LinalgError::InvalidArgument {
                what: "ivf cells must be in [1, rows]",
            });
        }
        if params.iters == 0 {
            return Err(LinalgError::InvalidArgument {
                what: "ivf iters must be >= 1",
            });
        }
        if params.threads == 0 {
            return Err(LinalgError::InvalidArgument {
                what: "ivf threads must be >= 1",
            });
        }
        if !embedding.all_finite() {
            return Err(LinalgError::NonFinite { op: "ivf build" });
        }
        let dim = embedding.cols();
        let cells = params.cells;

        // Training subset: evenly strided over the row space (ids are not
        // geography — upstream layouts scatter similar rows), clamped so
        // there is at least one training row per cell.
        let train: Vec<usize> = if params.sample == 0 || params.sample >= rows {
            (0..rows).collect()
        } else {
            let want = params.sample.max(cells).min(rows);
            (0..want)
                .map(|i| ((i as u128 * rows as u128) / want as u128) as usize)
                .collect()
        };

        // Initial centroids: `cells` distinct training rows chosen by a
        // counter-mixed hash of the seed (deterministic, no RNG state).
        let mut centroids = Matrix::zeros(cells, dim);
        {
            let mut taken = vec![false; train.len()];
            for c in 0..cells {
                let mut at = (mix64(params.seed ^ c as u64) % train.len() as u64) as usize;
                while taken[at] {
                    at = (at + 1) % train.len();
                }
                taken[at] = true;
                centroids
                    .row_mut(c)
                    .copy_from_slice(embedding.row(train[at]));
                ops::normalize(centroids.row_mut(c));
            }
        }

        // Lloyd iterations: threaded assignment (each row independent),
        // sequential centroid update in ascending row order.
        let mut assign = vec![0u32; train.len()];
        let mut sums = Matrix::zeros(cells, dim);
        for _ in 0..params.iters {
            assign_rows(embedding, &centroids, &train, &mut assign, params.threads);
            sums.fill(0.0);
            let mut counts = vec![0u64; cells];
            for (slot, &row_id) in train.iter().enumerate() {
                let c = assign[slot] as usize;
                ops::axpy_unchecked(1.0, embedding.row(row_id), sums.row_mut(c));
                counts[c] += 1;
            }
            for (c, &count) in counts.iter().enumerate() {
                // Empty cells keep their previous centroid rather than
                // collapsing to zero and swallowing every later tie.
                if count > 0 {
                    centroids.row_mut(c).copy_from_slice(sums.row(c));
                    ops::normalize(centroids.row_mut(c));
                }
            }
        }

        // Final assignment covers every row; lists stay ascending because
        // rows are appended in index order.
        let all: Vec<usize> = (0..rows).collect();
        let mut final_assign = vec![0u32; rows];
        assign_rows(
            embedding,
            &centroids,
            &all,
            &mut final_assign,
            params.threads,
        );
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); cells];
        for (row_id, &c) in final_assign.iter().enumerate() {
            lists[c as usize].push(row_id as u32);
        }

        Ok(IvfIndex {
            centroids,
            lists,
            rows,
        })
    }

    /// Number of coarse cells.
    pub fn cells(&self) -> usize {
        self.centroids.rows()
    }

    /// Embedding dimension the index was built for.
    pub fn dim(&self) -> usize {
        self.centroids.cols()
    }

    /// Row count of the matrix the index was built over.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Member row ids of cell `c`, ascending.
    ///
    /// # Panics
    /// Panics if `c >= cells` (cell ids come from this index).
    pub fn list(&self, c: usize) -> &[u32] {
        &self.lists[c]
    }

    /// Approximate top-`k`: probes the `nprobe` cells whose centroids best
    /// match `profile`, re-scores every member row exactly, masks excluded
    /// rows `NaN` (the shared exclusion sentinel) and selects through the
    /// shared top-k heap. `out` receives `(row, score)` pairs, best first;
    /// scores are bit-identical to what the exhaustive scan computes for
    /// those rows. With `nprobe >= cells` the result equals the exhaustive
    /// scan exactly.
    ///
    /// # Errors
    /// `ShapeMismatch` when `embedding` does not match the build shape or
    /// `profile` is not `dim` long; `InvalidArgument` when `nprobe` is 0.
    #[allow(clippy::too_many_arguments)]
    pub fn search_into(
        &self,
        embedding: &Matrix,
        profile: &[f64],
        k: usize,
        nprobe: usize,
        exclude: &[usize],
        scratch: &mut IvfScratch,
        out: &mut Vec<(usize, f64)>,
    ) -> Result<(), LinalgError> {
        if embedding.rows() != self.rows || embedding.cols() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "ivf search embedding",
                left: embedding.rows(),
                right: self.rows,
            });
        }
        if profile.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "ivf search profile",
                left: profile.len(),
                right: self.dim(),
            });
        }
        self.probe_cells(profile, nprobe, scratch)?;
        self.rerank_probed(embedding, profile, k, exclude, scratch, out);
        Ok(())
    }

    /// [`IvfIndex::search_into`] through the int8 coarse pass: probe, then
    /// [`IvfIndex::rerank_probed_quantized`]. Returns the shortlist stats.
    /// For any `nprobe` the output is bit-identical to the unquantized
    /// search over the same probed cells; at `nprobe >= cells` it equals
    /// the exhaustive scan exactly.
    ///
    /// # Errors
    /// Same conditions as [`IvfIndex::search_into`], plus `ShapeMismatch`
    /// when `quant` was built over a different index or embedding shape.
    #[allow(clippy::too_many_arguments)]
    pub fn search_quantized_into(
        &self,
        quant: &IvfQuant,
        embedding: &Matrix,
        profile: &[f64],
        k: usize,
        nprobe: usize,
        overfetch: usize,
        exclude: &[usize],
        scratch: &mut IvfScratch,
        out: &mut Vec<(usize, f64)>,
    ) -> Result<QuantRerankStats, LinalgError> {
        self.probe_cells(profile, nprobe, scratch)?;
        self.rerank_probed_quantized(
            quant, embedding, profile, k, overfetch, exclude, scratch, out,
        )
    }

    /// Stage 1 of [`IvfIndex::search_into`]: ranks centroids against
    /// `profile` and selects the top-`nprobe` cells into the scratch
    /// probe list (ties by lower cell id, like every selection in this
    /// workspace). Split out so callers can time the probe and re-rank
    /// stages separately; the composition is byte-for-byte the old
    /// monolithic search.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if `profile` is not `dim`-long,
    /// [`LinalgError::InvalidArgument`] if `nprobe == 0`.
    pub fn probe_cells(
        &self,
        profile: &[f64],
        nprobe: usize,
        scratch: &mut IvfScratch,
    ) -> Result<(), LinalgError> {
        if profile.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "ivf search profile",
                left: profile.len(),
                right: self.dim(),
            });
        }
        if nprobe == 0 {
            return Err(LinalgError::InvalidArgument {
                what: "ivf nprobe must be >= 1",
            });
        }
        let nprobe = nprobe.min(self.cells());
        scratch.centroid_scores.resize(self.cells(), 0.0);
        for (c, score) in scratch.centroid_scores.iter_mut().enumerate() {
            *score = ops::dot_unchecked(profile, self.centroids.row(c));
        }
        top_k_with_scores_into(
            &scratch.centroid_scores,
            nprobe,
            &mut scratch.topk,
            &mut scratch.probes,
        );
        Ok(())
    }

    /// Stage 2 of [`IvfIndex::search_into`]: gathers the members of the
    /// cells selected by [`IvfIndex::probe_cells`] and exactly re-ranks
    /// them with the fixed-reduction-order dot kernel. Excluded rows
    /// keep the NaN sentinel so the selection's exclusion contract is
    /// untouched. Requires a prior `probe_cells` on the same scratch.
    pub fn rerank_probed(
        &self,
        embedding: &Matrix,
        profile: &[f64],
        k: usize,
        exclude: &[usize],
        scratch: &mut IvfScratch,
        out: &mut Vec<(usize, f64)>,
    ) {
        scratch.exclude_sorted.clear();
        scratch.exclude_sorted.extend_from_slice(exclude);
        scratch.exclude_sorted.sort_unstable();
        scratch.exclude_sorted.dedup();
        scratch.candidate_ids.clear();
        scratch.candidate_scores.clear();
        for &(cell, _) in &scratch.probes {
            for &row_id in &self.lists[cell] {
                let row_id = row_id as usize;
                let score = if scratch.exclude_sorted.binary_search(&row_id).is_ok() {
                    f64::NAN
                } else {
                    ops::dot_unchecked(profile, embedding.row(row_id))
                };
                scratch.candidate_ids.push(row_id);
                scratch.candidate_scores.push(score);
            }
        }
        top_k_indexed_into(
            &scratch.candidate_ids,
            &scratch.candidate_scores,
            k,
            &mut scratch.topk,
            out,
        );
    }

    /// Quantized variant of [`IvfIndex::rerank_probed`]: an int8 coarse
    /// pass over the probed cells' packed rows (see [`IvfQuant`]) selects a
    /// shortlist, and only the shortlist is re-scored with the exact f64
    /// kernel and ranked through the shared top-k heap. `overfetch` floors
    /// the shortlist at `overfetch · k` rows by approximate score (clamped
    /// to ≥ 1×); independent of the floor, every row whose error-bound
    /// interval overlaps the k-th best lower bound is kept, which is what
    /// guarantees the shortlist contains the exact top-k — so at
    /// `nprobe == cells` the result is bit-identical to the dense scan.
    ///
    /// Requires a prior [`IvfIndex::probe_cells`] on the same scratch.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `quant` or `embedding` does not
    /// match this index's build shape.
    #[allow(clippy::too_many_arguments)]
    pub fn rerank_probed_quantized(
        &self,
        quant: &IvfQuant,
        embedding: &Matrix,
        profile: &[f64],
        k: usize,
        overfetch: usize,
        exclude: &[usize],
        scratch: &mut IvfScratch,
        out: &mut Vec<(usize, f64)>,
    ) -> Result<QuantRerankStats, LinalgError> {
        if quant.dim != self.dim()
            || quant.offsets.len() != self.cells() + 1
            || quant.scales.len() != self.rows
        {
            return Err(LinalgError::ShapeMismatch {
                op: "ivf quantized rerank",
                left: quant.scales.len(),
                right: self.rows,
            });
        }
        if embedding.rows() != self.rows || embedding.cols() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "ivf search embedding",
                left: embedding.rows(),
                right: self.rows,
            });
        }
        if k == 0 {
            out.clear();
            return Ok(QuantRerankStats::default());
        }

        scratch.exclude_sorted.clear();
        scratch.exclude_sorted.extend_from_slice(exclude);
        scratch.exclude_sorted.sort_unstable();
        scratch.exclude_sorted.dedup();

        // Coarse pass: integer dots against the packed i8 rows, plus the
        // per-candidate error interval [approx − bound, approx + bound]
        // from the Cauchy–Schwarz split (see [`IvfQuant`]): the query-side
        // residual `‖x − x̂‖₂` is measured against the just-quantized
        // profile, not worst-cased. `1e-9` relative inflation swallows the
        // handful of f64 roundings in evaluating the bound itself; the
        // bound is ~1e-2 of the score scale, so the slack is irrelevant
        // for the shortlist size.
        let dim = quant.dim;
        let s_query = quantize_query(profile, &mut scratch.q_profile);
        let mut l2q_sq = 0.0_f64;
        let mut residq_sq = 0.0_f64;
        for (&x, &qv) in profile.iter().zip(&scratch.q_profile) {
            l2q_sq += x * x;
            let e = x - s_query * f64::from(qv);
            residq_sq += e * e;
        }
        let l2_query = l2q_sq.sqrt() * (1.0 + 1e-12);
        let resid_query = residq_sq.sqrt() * (1.0 + 1e-12);
        scratch.coarse_ids.clear();
        scratch.coarse_approx.clear();
        scratch.coarse_lb.clear();
        scratch.coarse_ub.clear();
        for &(cell, _) in &scratch.probes {
            let base = quant.offsets[cell];
            for (member, &row_id) in self.lists[cell].iter().enumerate() {
                let row_id = row_id as usize;
                if scratch.exclude_sorted.binary_search(&row_id).is_ok() {
                    continue;
                }
                let at = base + member;
                let qrow = &quant.qdata[at * dim..(at + 1) * dim];
                let qdot = dot_i8(&scratch.q_profile, qrow);
                let s_row = quant.scales[at];
                let approx = (s_query * s_row) * f64::from(qdot);
                let bound = (l2_query * quant.resid_l2[at]
                    + resid_query * quant.row_l2[at]
                    + 1e-15 * approx.abs())
                    * (1.0 + 1e-9);
                scratch.coarse_ids.push(row_id);
                scratch.coarse_approx.push(approx);
                scratch.coarse_lb.push(approx - bound);
                scratch.coarse_ub.push(approx + bound);
            }
        }

        // k-th best lower bound: any candidate whose upper bound cannot
        // reach it is provably outside the exact top-k.
        top_k_with_scores_into(
            &scratch.coarse_lb,
            k,
            &mut scratch.topk,
            &mut scratch.quant_sel,
        );
        let t_bound = scratch
            .quant_sel
            .last()
            .map_or(f64::NEG_INFINITY, |&(_, s)| s);
        // Over-fetch floor: the (overfetch · k)-th best approximate score.
        let want = overfetch.max(1).saturating_mul(k);
        let t_fetch = if want >= scratch.coarse_ids.len() {
            f64::NEG_INFINITY
        } else {
            top_k_with_scores_into(
                &scratch.coarse_approx,
                want,
                &mut scratch.topk,
                &mut scratch.quant_sel,
            );
            scratch
                .quant_sel
                .last()
                .map_or(f64::NEG_INFINITY, |&(_, s)| s)
        };

        // Exact re-rank of the shortlist with the same fixed-order kernel
        // and heap as the unquantized path.
        scratch.candidate_ids.clear();
        scratch.candidate_scores.clear();
        for i in 0..scratch.coarse_ids.len() {
            if scratch.coarse_ub[i] >= t_bound || scratch.coarse_approx[i] >= t_fetch {
                let row_id = scratch.coarse_ids[i];
                scratch.candidate_ids.push(row_id);
                scratch
                    .candidate_scores
                    .push(ops::dot_unchecked(profile, embedding.row(row_id)));
            }
        }
        top_k_indexed_into(
            &scratch.candidate_ids,
            &scratch.candidate_scores,
            k,
            &mut scratch.topk,
            out,
        );
        Ok(QuantRerankStats {
            candidates: scratch.coarse_ids.len(),
            shortlisted: scratch.candidate_ids.len(),
        })
    }
}

/// Size of the shortlist the quantized coarse pass handed to the exact
/// re-rank, for bench reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantRerankStats {
    /// Candidate rows gathered from the probed cells (after exclusions).
    pub candidates: usize,
    /// Rows that survived the int8 coarse filter into the exact re-rank.
    pub shortlisted: usize,
}

/// Int8-quantized mirror of an [`IvfIndex`]'s posting lists: every member
/// row is stored as `dim` signed bytes under a per-row symmetric scale
/// (`value ≈ q · scale`, `scale = max|row| / 127`), packed cell-major in
/// posting-list order so the coarse scan streams contiguously.
///
/// The coarse pass scores candidates with an i32-accumulated integer dot
/// product — an 8× smaller memory walk than the f64 rows — and keeps every
/// row whose score *could* reach the top-k under a per-row error bound.
/// With `x` the query, `x̂`/`ŷ` the dequantized query/row, splitting the
/// error as `x·y − x̂·ŷ = x·(y − ŷ) + (x − x̂)·ŷ` and applying
/// Cauchy–Schwarz to each term gives
///
/// ```text
/// |x·y − x̂·ŷ| ≤ ‖x‖₂·‖y − ŷ‖₂ + ‖x − x̂‖₂·‖ŷ‖₂
/// ```
///
/// where the row-side residual `‖y − ŷ‖₂` is *measured* at build time
/// (typically ~0.6× of the worst-case ℓ1 bound) and the query-side
/// residual is measured per search, so the interval tracks the real
/// quantization error instead of its worst case. A candidate whose upper
/// bound falls below the k-th best lower bound provably cannot belong to
/// the exact top-k. The survivors (at least the requested over-fetch,
/// `overfetch · k` by approximate score) are handed to the *same* exact
/// f64 re-rank the unquantized path uses, which makes the final ranking
/// bit-identical to the dense scan whenever every cell is probed — the
/// shortlist is a superset of the true top-k by the bound above, and exact
/// re-scoring of a superset selects identically.
#[derive(Debug, Clone, PartialEq)]
pub struct IvfQuant {
    /// Quantized rows, `dim` bytes per member, packed cell-major in
    /// posting-list order.
    qdata: Vec<i8>,
    /// Per-member dequantization scale, same packing as `qdata`.
    scales: Vec<f64>,
    /// Per-member `‖ŷ‖₂` (ℓ2 norm of the dequantized row), inflated by
    /// `1 + 1e-12` to dominate the accumulation rounding.
    row_l2: Vec<f64>,
    /// Per-member `‖y − ŷ‖₂` (measured quantization residual), inflated
    /// by `1 + 1e-12`.
    resid_l2: Vec<f64>,
    /// Start offset (in members) of each cell's packed block.
    offsets: Vec<usize>,
    /// Embedding dimension.
    dim: usize,
}

impl IvfQuant {
    /// Quantizes every posting-list member of `index` from `embedding`.
    ///
    /// # Errors
    /// `ShapeMismatch` when `embedding` does not match the index's build
    /// shape; `NonFinite` when the embedding contains a non-finite value.
    pub fn build(embedding: &Matrix, index: &IvfIndex) -> Result<Self, LinalgError> {
        if embedding.rows() != index.rows() || embedding.cols() != index.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "ivf quantize embedding",
                left: embedding.rows(),
                right: index.rows(),
            });
        }
        if !embedding.all_finite() {
            return Err(LinalgError::NonFinite { op: "ivf quantize" });
        }
        let dim = index.dim();
        let members: usize = (0..index.cells()).map(|c| index.list(c).len()).sum();
        let mut q = IvfQuant {
            qdata: Vec::with_capacity(members * dim),
            scales: Vec::with_capacity(members),
            row_l2: Vec::with_capacity(members),
            resid_l2: Vec::with_capacity(members),
            offsets: Vec::with_capacity(index.cells() + 1),
            dim,
        };
        for c in 0..index.cells() {
            q.offsets.push(q.scales.len());
            for &row_id in index.list(c) {
                let row = embedding.row(row_id as usize);
                let max_abs = row.iter().fold(0.0_f64, |m, x| m.max(x.abs()));
                let scale = max_abs / 127.0;
                let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
                let mut deq_sq = 0.0_f64;
                let mut resid_sq = 0.0_f64;
                for &x in row {
                    let v = (x * inv).round().clamp(-127.0, 127.0) as i8;
                    q.qdata.push(v);
                    let deq = f64::from(v) * scale;
                    deq_sq += deq * deq;
                    let e = x - deq;
                    resid_sq += e * e;
                }
                q.scales.push(scale);
                q.row_l2.push(deq_sq.sqrt() * (1.0 + 1e-12));
                q.resid_l2.push(resid_sq.sqrt() * (1.0 + 1e-12));
            }
        }
        q.offsets.push(q.scales.len());
        Ok(q)
    }

    /// Embedding dimension the quantized rows were built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bytes of quantized row payload (for bench reporting: the coarse
    /// scan walks this instead of `members · dim · 8` bytes of f64).
    pub fn payload_bytes(&self) -> usize {
        self.qdata.len()
    }
}

/// Quantizes a query profile to i8 under its own symmetric scale.
/// Returns the scale (0.0 for an all-zero profile, making every
/// approximate score and bound collapse to 0 — matching the exact scores).
fn quantize_query(profile: &[f64], out: &mut Vec<i8>) -> f64 {
    let max_abs = profile.iter().fold(0.0_f64, |m, x| m.max(x.abs()));
    let scale = max_abs / 127.0;
    let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
    out.clear();
    out.extend(
        profile
            .iter()
            .map(|&x| (x * inv).round().clamp(-127.0, 127.0) as i8),
    );
    scale
}

/// i32-accumulated integer dot product of two `dim`-length i8 rows. With
/// |q| ≤ 127 the per-element product is ≤ 16129 (fits i16, which lets the
/// compiler use widening-multiply vector forms), so dimensions into the
/// hundreds of thousands stay far from i32 overflow. Eight independent
/// lanes keep the loop free of a serial accumulator chain; integer
/// addition is associative, so the lane split cannot change the result.
#[inline]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0i32; 8];
    let ac = a.chunks_exact(8);
    let bc = b.chunks_exact(8);
    let (ar, br) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        for (lane, (&x, &y)) in lanes.iter_mut().zip(ca.iter().zip(cb)) {
            *lane += i32::from(i16::from(x) * i16::from(y));
        }
    }
    let mut s: i32 = lanes.iter().sum();
    for (&x, &y) in ar.iter().zip(br) {
        s += i32::from(x) * i32::from(y);
    }
    s
}

/// Writes each row's nearest-centroid cell (maximal dot product, ties to
/// the lower cell id) into `out`, split across `threads` contiguous
/// chunks. Every row's answer is a pure function of `(row, centroids)`
/// computed with the fixed-reduction-order dot kernel, so the partition
/// cannot change any assignment — `threads` affects latency only.
fn assign_rows(
    embedding: &Matrix,
    centroids: &Matrix,
    ids: &[usize],
    out: &mut [u32],
    threads: usize,
) {
    debug_assert_eq!(ids.len(), out.len());
    let threads = threads.min(ids.len()).max(1);
    if threads == 1 {
        for (slot, &row_id) in ids.iter().enumerate() {
            out[slot] = nearest_cell(embedding.row(row_id), centroids);
        }
        return;
    }
    let chunk = ids.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ids_chunk, out_chunk) in ids.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, &row_id) in ids_chunk.iter().enumerate() {
                    out_chunk[slot] = nearest_cell(embedding.row(row_id), centroids);
                }
            });
        }
    });
}

fn nearest_cell(row: &[f64], centroids: &Matrix) -> u32 {
    let mut best = 0u32;
    let mut best_score = f64::NEG_INFINITY;
    for c in 0..centroids.rows() {
        let score = ops::dot_unchecked(row, centroids.row(c));
        if score > best_score {
            best_score = score;
            best = c as u32;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Random unit-normalised embedding, the shape every caller feeds in.
    fn random_embedding(rows: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::from_fn(rows, dim, |_, _| rng.random::<f64>() * 2.0 - 1.0);
        m.normalize_rows();
        m
    }

    /// Two tight clusters along +x and +y so cell structure is predictable.
    fn clustered_embedding(per_cluster: usize) -> Matrix {
        let mut m = Matrix::zeros(2 * per_cluster, 2);
        for i in 0..per_cluster {
            m.set(i, 0, 1.0);
            m.set(i, 1, 0.01 * i as f64);
            m.set(per_cluster + i, 1, 1.0);
            m.set(per_cluster + i, 0, 0.01 * i as f64);
        }
        m.normalize_rows();
        m
    }

    fn exhaustive(
        embedding: &Matrix,
        profile: &[f64],
        k: usize,
        exclude: &[usize],
    ) -> Vec<(usize, f64)> {
        let mut scores = embedding.matvec(profile).unwrap();
        for &e in exclude {
            if e < scores.len() {
                scores[e] = f64::NAN;
            }
        }
        crate::topk::top_k_with_scores(&scores, k)
    }

    #[test]
    fn build_validates_params() {
        let emb = random_embedding(10, 3, 1);
        let bad = |p: IvfBuildParams| IvfIndex::build(&emb, &p).is_err();
        assert!(bad(IvfBuildParams {
            cells: 0,
            ..Default::default()
        }));
        assert!(bad(IvfBuildParams {
            cells: 11,
            ..Default::default()
        }));
        assert!(bad(IvfBuildParams {
            cells: 4,
            iters: 0,
            ..Default::default()
        }));
        assert!(bad(IvfBuildParams {
            cells: 4,
            threads: 0,
            ..Default::default()
        }));
        let mut poisoned = emb.clone();
        poisoned.set(3, 1, f64::NAN);
        assert!(matches!(
            IvfIndex::build(
                &poisoned,
                &IvfBuildParams {
                    cells: 4,
                    ..Default::default()
                }
            ),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn every_row_lands_in_exactly_one_cell() {
        let emb = random_embedding(57, 4, 2);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 7,
                ..Default::default()
            },
        )
        .unwrap();
        let mut seen = vec![0u32; 57];
        for c in 0..idx.cells() {
            let list = idx.list(c);
            assert!(list.windows(2).all(|w| w[0] < w[1]), "lists ascending");
            for &r in list {
                seen[r as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "partition of the rows");
        assert_eq!(idx.rows(), 57);
        assert_eq!(idx.dim(), 4);
    }

    #[test]
    fn build_is_bit_identical_across_thread_counts() {
        let emb = random_embedding(83, 5, 3);
        let reference = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 9,
                iters: 5,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for threads in [2, 3, 4, 8] {
            let idx = IvfIndex::build(
                &emb,
                &IvfBuildParams {
                    cells: 9,
                    iters: 5,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                idx, reference,
                "threads={threads} must not change the index"
            );
        }
    }

    #[test]
    fn sampled_training_still_partitions_all_rows() {
        let emb = random_embedding(120, 4, 4);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 8,
                sample: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let total: usize = (0..idx.cells()).map(|c| idx.list(c).len()).sum();
        assert_eq!(total, 120, "final assignment covers every row");
    }

    #[test]
    fn full_probe_matches_exhaustive_scan_bitwise() {
        let emb = random_embedding(71, 6, 5);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 6,
                ..Default::default()
            },
        )
        .unwrap();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let profile: Vec<f64> = (0..6).map(|_| rng.random::<f64>() - 0.5).collect();
            let k = rng.random_range(0usize..12);
            let exclude: Vec<usize> = (0..rng.random_range(0usize..5))
                .map(|_| rng.random_range(0..80))
                .collect();
            idx.search_into(
                &emb,
                &profile,
                k,
                idx.cells(),
                &exclude,
                &mut scratch,
                &mut out,
            )
            .unwrap();
            let expected = exhaustive(&emb, &profile, k, &exclude);
            assert_eq!(out.len(), expected.len());
            for (got, want) in out.iter().zip(&expected) {
                assert_eq!(got.0, want.0);
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "scores bit-identical");
            }
        }
    }

    #[test]
    fn probing_a_cluster_finds_its_members() {
        let emb = clustered_embedding(20);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        // A query along +x with one probe must return only x-cluster rows.
        idx.search_into(&emb, &[1.0, 0.0], 5, 1, &[], &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|&(r, _)| r < 20), "{out:?}");
        // Exclusion inside the shortlist is honoured.
        let banned: Vec<usize> = out.iter().map(|&(r, _)| r).collect();
        idx.search_into(&emb, &[1.0, 0.0], 5, 1, &banned, &mut scratch, &mut out)
            .unwrap();
        assert!(out.iter().all(|&(r, _)| !banned.contains(&r)));
    }

    #[test]
    fn duplicate_scores_straddling_the_cell_cutoff_keep_index_ties() {
        // Rows 0 and 21 are exact duplicates placed in different clusters'
        // index ranges; with both cells probed the tie must break to the
        // lower row id, exactly as the dense scan does.
        let mut emb = clustered_embedding(20);
        let dup: Vec<f64> = emb.row(0).to_vec();
        emb.row_mut(21).copy_from_slice(&dup);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        idx.search_into(&emb, &dup, 2, idx.cells(), &[], &mut scratch, &mut out)
            .unwrap();
        let expected = exhaustive(&emb, &dup, 2, &[]);
        assert_eq!(out, expected);
        assert_eq!(out[0].0, 0, "tie breaks to the lower row id");
        assert_eq!(out[1].0, 21);
    }

    #[test]
    fn search_validates_shapes_and_nprobe() {
        let emb = random_embedding(12, 3, 7);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        let wrong_rows = random_embedding(13, 3, 8);
        assert!(idx
            .search_into(&wrong_rows, &[0.0; 3], 2, 1, &[], &mut scratch, &mut out)
            .is_err());
        assert!(idx
            .search_into(&emb, &[0.0; 4], 2, 1, &[], &mut scratch, &mut out)
            .is_err());
        assert!(idx
            .search_into(&emb, &[0.0; 3], 2, 0, &[], &mut scratch, &mut out)
            .is_err());
        // nprobe beyond cells clamps instead of failing.
        idx.search_into(&emb, &[0.0; 3], 2, 99, &[], &mut scratch, &mut out)
            .unwrap();
    }

    #[test]
    fn quantized_round_trip_error_is_within_half_scale_per_row() {
        let emb = random_embedding(40, 8, 9);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let quant = IvfQuant::build(&emb, &idx).unwrap();
        assert_eq!(quant.dim(), 8);
        assert!(quant.payload_bytes() >= 40 * 8);
        let mut at = 0usize;
        for c in 0..idx.cells() {
            for &row_id in idx.list(c) {
                let row = emb.row(row_id as usize);
                let scale = quant.scales[at];
                let max_abs = row.iter().fold(0.0f64, |m, x| m.max(x.abs()));
                assert_eq!(scale.to_bits(), (max_abs / 127.0).to_bits());
                let q = &quant.qdata[at * 8..(at + 1) * 8];
                let mut deq_sq = 0.0f64;
                let mut resid_sq = 0.0f64;
                for (x, &qv) in row.iter().zip(q) {
                    // Symmetric rounding: each coordinate lands within
                    // half a quantisation step of its f64 value.
                    let deq = f64::from(qv) * scale;
                    assert!((x - deq).abs() <= 0.5 * scale + 1e-12);
                    deq_sq += deq * deq;
                    let e = x - deq;
                    resid_sq += e * e;
                }
                // Stored norms replay the build's accumulation order, so
                // they are pinned bit-for-bit, inflation included.
                assert_eq!(
                    quant.row_l2[at].to_bits(),
                    (deq_sq.sqrt() * (1.0 + 1e-12)).to_bits()
                );
                assert_eq!(
                    quant.resid_l2[at].to_bits(),
                    (resid_sq.sqrt() * (1.0 + 1e-12)).to_bits()
                );
                at += 1;
            }
        }
        assert_eq!(at, 40, "every row is packed exactly once");
    }

    #[test]
    fn quant_build_validates_embedding_shape() {
        let emb = random_embedding(20, 4, 10);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(IvfQuant::build(&random_embedding(21, 4, 11), &idx).is_err());
        assert!(IvfQuant::build(&random_embedding(20, 5, 11), &idx).is_err());
        let mut poisoned = emb.clone();
        poisoned.set(2, 1, f64::INFINITY);
        assert!(IvfQuant::build(&poisoned, &idx).is_err());
        let other = IvfIndex::build(
            &random_embedding(20, 4, 12),
            &IvfBuildParams {
                cells: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let quant = IvfQuant::build(&emb, &idx).unwrap();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        assert!(other
            .search_quantized_into(
                &quant,
                &emb,
                &[0.0; 4],
                2,
                1,
                4,
                &[],
                &mut scratch,
                &mut out
            )
            .is_err());
    }

    #[test]
    fn quantized_search_matches_exact_rerank_at_any_probe_width() {
        // The error-bound shortlist provably contains the exact top-k of
        // the probed candidate set, so the quantized search must be
        // bit-identical to the unquantized one at *every* nprobe, not
        // just at full probe.
        let emb = random_embedding(71, 6, 5);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 6,
                ..Default::default()
            },
        )
        .unwrap();
        let quant = IvfQuant::build(&emb, &idx).unwrap();
        let mut scratch = IvfScratch::new();
        let (mut exact, mut quantized) = (Vec::new(), Vec::new());
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..30 {
            let profile: Vec<f64> = (0..6).map(|_| rng.random::<f64>() - 0.5).collect();
            let k = rng.random_range(0usize..12);
            let nprobe = rng.random_range(1usize..=6);
            let overfetch = rng.random_range(1usize..5);
            let exclude: Vec<usize> = (0..rng.random_range(0usize..5))
                .map(|_| rng.random_range(0..80))
                .collect();
            idx.search_into(
                &emb,
                &profile,
                k,
                nprobe,
                &exclude,
                &mut scratch,
                &mut exact,
            )
            .unwrap();
            let stats = idx
                .search_quantized_into(
                    &quant,
                    &emb,
                    &profile,
                    k,
                    nprobe,
                    overfetch,
                    &exclude,
                    &mut scratch,
                    &mut quantized,
                )
                .unwrap();
            assert_eq!(quantized.len(), exact.len());
            for (got, want) in quantized.iter().zip(&exact) {
                assert_eq!(got.0, want.0);
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "scores bit-identical");
            }
            assert!(stats.shortlisted <= stats.candidates);
            if k > 0 {
                assert!(stats.shortlisted >= exact.len());
            }
        }
    }

    #[test]
    fn quantized_recall_at_10_on_city_profiles_is_high() {
        // City-like geometry: two dense districts of near-duplicate
        // locations. Quantized shortlist + exact re-rank must keep
        // recall@10 vs the dense scan at >= 0.99 even with narrow probes.
        let emb = clustered_embedding(60);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let quant = IvfQuant::build(&emb, &idx).unwrap();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(17);
        let (mut hits, mut total) = (0usize, 0usize);
        for _ in 0..50 {
            let angle = rng.random::<f64>() * std::f64::consts::FRAC_PI_2;
            let profile = [angle.cos(), angle.sin()];
            idx.search_quantized_into(
                &quant,
                &emb,
                &profile,
                10,
                idx.cells(),
                3,
                &[],
                &mut scratch,
                &mut out,
            )
            .unwrap();
            let expected = exhaustive(&emb, &profile, 10, &[]);
            let want: Vec<usize> = expected.iter().map(|&(r, _)| r).collect();
            hits += out.iter().filter(|&&(r, _)| want.contains(&r)).count();
            total += want.len();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.99, "recall@10 {recall} below floor");
    }

    #[test]
    fn quantized_shortlist_is_a_strict_subset_on_easy_queries() {
        // The speedup claim rests on the coarse pass actually pruning:
        // on well-separated clusters with a decisive query, the exact
        // re-rank must touch far fewer rows than the probed candidates.
        let emb = clustered_embedding(200);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let quant = IvfQuant::build(&emb, &idx).unwrap();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        let stats = idx
            .search_quantized_into(
                &quant,
                &emb,
                &[1.0, 0.0],
                10,
                idx.cells(),
                2,
                &[],
                &mut scratch,
                &mut out,
            )
            .unwrap();
        assert_eq!(stats.candidates, 400);
        assert!(
            stats.shortlisted < stats.candidates / 2,
            "coarse pass pruned only {} of {} candidates",
            stats.candidates - stats.shortlisted,
            stats.candidates
        );
        assert_eq!(out, exhaustive(&emb, &[1.0, 0.0], 10, &[]));
    }
}

#[cfg(test)]
mod determinism_props {
    //! Property tests pinning the module's two contracts: thread-count
    //! invariance of the build and exhaustive equivalence at full probe.

    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    fn embedding_from(values: &[f64], rows: usize, dim: usize) -> Matrix {
        let mut m = Matrix::from_fn(rows, dim, |r, c| values[(r * dim + c) % values.len()]);
        m.normalize_rows();
        m
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn build_is_thread_invariant(
            values in vec(-1.0f64..1.0, 8..64),
            rows in 4usize..40,
            dim in 1usize..6,
            cells in 1usize..5,
            seed in 0u64..1000,
            threads in 2usize..8,
        ) {
            let cells = cells.min(rows);
            let emb = embedding_from(&values, rows, dim);
            let base = IvfBuildParams { cells, iters: 3, sample: 0, seed, threads: 1 };
            let sequential = IvfIndex::build(&emb, &base).unwrap();
            let threaded = IvfIndex::build(&emb, &IvfBuildParams { threads, ..base }).unwrap();
            prop_assert_eq!(&threaded, &sequential);
            // And rebuilding with the same seed reproduces the index.
            let again = IvfIndex::build(&emb, &base).unwrap();
            prop_assert_eq!(&again, &sequential);
        }

        #[test]
        fn full_probe_equals_dense_topk(
            values in vec(-1.0f64..1.0, 8..64),
            rows in 4usize..40,
            dim in 1usize..6,
            cells in 1usize..5,
            k in 0usize..12,
            exclude in vec(0usize..48, 0..6),
            pseed in 0u64..1000,
        ) {
            let cells = cells.min(rows);
            let emb = embedding_from(&values, rows, dim);
            let idx = IvfIndex::build(&emb, &IvfBuildParams {
                cells, iters: 2, sample: 0, seed: 7, threads: 2,
            }).unwrap();
            let profile: Vec<f64> = (0..dim)
                .map(|i| (mix64(pseed ^ i as u64) % 2000) as f64 / 1000.0 - 1.0)
                .collect();
            let mut scratch = IvfScratch::new();
            let mut out = Vec::new();
            idx.search_into(&emb, &profile, k, cells, &exclude, &mut scratch, &mut out)
                .unwrap();
            let mut scores = emb.matvec(&profile).unwrap();
            for &e in &exclude {
                if e < scores.len() {
                    scores[e] = f64::NAN;
                }
            }
            let expected = crate::topk::top_k_with_scores(&scores, k);
            prop_assert_eq!(out.len(), expected.len());
            for (got, want) in out.iter().zip(&expected) {
                prop_assert_eq!(got.0, want.0);
                prop_assert_eq!(got.1.to_bits(), want.1.to_bits());
            }
        }

        #[test]
        fn quantized_full_probe_equals_dense_topk(
            values in vec(-1.0f64..1.0, 8..64),
            rows in 4usize..40,
            dim in 1usize..6,
            cells in 1usize..5,
            k in 0usize..12,
            overfetch in 1usize..5,
            exclude in vec(0usize..48, 0..6),
            pseed in 0u64..1000,
        ) {
            // The int8 coarse pass must never change the answer when every
            // cell is probed: the error-bound shortlist contains the exact
            // top-k, and the re-rank reuses the dense kernel and heap.
            let cells = cells.min(rows);
            let emb = embedding_from(&values, rows, dim);
            let idx = IvfIndex::build(&emb, &IvfBuildParams {
                cells, iters: 2, sample: 0, seed: 7, threads: 2,
            }).unwrap();
            let quant = IvfQuant::build(&emb, &idx).unwrap();
            let profile: Vec<f64> = (0..dim)
                .map(|i| (mix64(pseed ^ i as u64) % 2000) as f64 / 1000.0 - 1.0)
                .collect();
            let mut scratch = IvfScratch::new();
            let mut out = Vec::new();
            idx.search_quantized_into(
                &quant, &emb, &profile, k, cells, overfetch, &exclude, &mut scratch, &mut out,
            ).unwrap();
            let mut scores = emb.matvec(&profile).unwrap();
            for &e in &exclude {
                if e < scores.len() {
                    scores[e] = f64::NAN;
                }
            }
            let expected = crate::topk::top_k_with_scores(&scores, k);
            prop_assert_eq!(out.len(), expected.len());
            for (got, want) in out.iter().zip(&expected) {
                prop_assert_eq!(got.0, want.0);
                prop_assert_eq!(got.1.to_bits(), want.1.to_bits());
            }
        }

        #[test]
        fn search_results_are_identical_across_build_threads(
            values in vec(-1.0f64..1.0, 8..64),
            rows in 6usize..40,
            dim in 2usize..6,
            nprobe in 1usize..4,
        ) {
            let emb = embedding_from(&values, rows, dim);
            let cells = 4.min(rows);
            let params = IvfBuildParams { cells, iters: 3, sample: 0, seed: 11, threads: 1 };
            let a = IvfIndex::build(&emb, &params).unwrap();
            let b = IvfIndex::build(&emb, &IvfBuildParams { threads: 4, ..params }).unwrap();
            let profile: Vec<f64> = (0..dim).map(|i| 0.3 * (i as f64 + 1.0)).collect();
            let mut scratch = IvfScratch::new();
            let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
            a.search_into(&emb, &profile, 5, nprobe, &[], &mut scratch, &mut out_a).unwrap();
            b.search_into(&emb, &profile, 5, nprobe, &[], &mut scratch, &mut out_b).unwrap();
            prop_assert_eq!(out_a, out_b);
        }
    }
}
