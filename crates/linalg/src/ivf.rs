//! Deterministic IVF (inverted-file) index for sublinear cosine top-k.
//!
//! The recommender's model-utilisation step ranks every location by the
//! dot product of a query profile against the unit-normalised embedding
//! rows (paper §3.3). That exhaustive scan is O(L·dim) per query — fine at
//! the paper's L ≈ 5k, a wall at a production vocabulary of 10⁵–10⁷. This
//! module trades it for a two-stage search:
//!
//! 1. **coarse quantiser** — the rows are partitioned into `cells` by a
//!    seeded *spherical k-means* (assignment by maximal dot product,
//!    centroids renormalised each iteration, so the geometry matches the
//!    cosine scoring it serves);
//! 2. **exact re-rank** — a query scores the `cells` centroids, probes the
//!    `nprobe` best, and re-scores every row of the probed cells with the
//!    *same* [`ops::dot_unchecked`] kernel the exhaustive path uses, then
//!    selects through the same top-k heap ([`topk::top_k_indexed_into`]).
//!
//! Shortlisted rows therefore carry their real cosine scores and inherit
//! the NaN-exclusion contract unchanged; the approximation is only in
//! *which* rows are considered, never in how a considered row is scored or
//! ranked.
//!
//! # Determinism contract
//!
//! Like the PR 4/5 kernels, everything here is bit-identical across thread
//! counts:
//!
//! * **build** — each row's cell assignment is a pure function of the row
//!   and the centroids (computed with the fixed-reduction-order dot
//!   kernel), so the assignment pass can be split across any number of
//!   threads; centroid updates then accumulate sequentially in ascending
//!   row order. Initial centroids come from [`sample::mix64`] counters on
//!   the build seed. Same `(embedding, params)` → same index, bit for bit,
//!   at any `threads`.
//! * **search** — candidate scores are exact dot products, and the final
//!   selection's "(score desc, index asc)" order is strict over distinct
//!   rows, so the result depends only on the candidate *set*. With
//!   `nprobe == cells` the candidate set is every row and the search is
//!   bit-identical to the exhaustive scan.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::ops;
use crate::sample::mix64;
use crate::topk::{top_k_indexed_into, top_k_with_scores_into, TopKScratch};

/// Build-time knobs of an [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfBuildParams {
    /// Number of coarse-quantiser cells (k-means clusters). Must be in
    /// `[1, rows]`.
    pub cells: usize,
    /// Lloyd iterations of the spherical k-means.
    pub iters: usize,
    /// Rows used to *train* the centroids: `0` trains on every row, any
    /// other value trains on an evenly-strided sample of (at least) that
    /// many rows. The final assignment always covers every row.
    pub sample: usize,
    /// Seed for the initial centroid choice (mixed through [`mix64`]).
    pub seed: u64,
    /// Threads for the assignment passes. Any value produces the same
    /// index bit-for-bit; this only changes build latency.
    pub threads: usize,
}

impl Default for IvfBuildParams {
    fn default() -> Self {
        IvfBuildParams {
            cells: 256,
            iters: 4,
            sample: 0,
            seed: 0xA55_C0DE,
            threads: 1,
        }
    }
}

/// Reusable buffers for [`IvfIndex::search_into`], so serving workers run
/// the probe + re-rank without allocating in steady state.
#[derive(Debug, Default)]
pub struct IvfScratch {
    centroid_scores: Vec<f64>,
    probes: Vec<(usize, f64)>,
    topk: TopKScratch,
    candidate_ids: Vec<usize>,
    candidate_scores: Vec<f64>,
    exclude_sorted: Vec<usize>,
}

impl IvfScratch {
    /// Empty scratch; buffers grow on first use and are retained.
    pub fn new() -> Self {
        IvfScratch::default()
    }
}

/// A coarse-quantiser index over the rows of an embedding matrix: unit
/// centroids plus, per cell, the ascending list of member row ids. The
/// index does not own the embedding — searches take it as an argument and
/// validate its shape, so one frozen matrix can back both the exhaustive
/// and the indexed path.
#[derive(Debug, Clone, PartialEq)]
pub struct IvfIndex {
    /// `cells × dim` unit-normalised centroids.
    centroids: Matrix,
    /// Member row ids per cell, each list ascending.
    lists: Vec<Vec<u32>>,
    /// Row count of the matrix the index was built over.
    rows: usize,
}

impl IvfIndex {
    /// Builds the index over `embedding`'s rows with spherical k-means.
    /// See the module docs for the determinism contract.
    ///
    /// # Errors
    /// `InvalidArgument` when `cells` is not in `[1, rows]`, `iters` or
    /// `threads` is zero; `NonFinite` when the embedding contains a
    /// non-finite value (a corrupt matrix must fail at build, not skew
    /// centroids silently).
    pub fn build(embedding: &Matrix, params: &IvfBuildParams) -> Result<Self, LinalgError> {
        let rows = embedding.rows();
        if params.cells == 0 || params.cells > rows {
            return Err(LinalgError::InvalidArgument {
                what: "ivf cells must be in [1, rows]",
            });
        }
        if params.iters == 0 {
            return Err(LinalgError::InvalidArgument {
                what: "ivf iters must be >= 1",
            });
        }
        if params.threads == 0 {
            return Err(LinalgError::InvalidArgument {
                what: "ivf threads must be >= 1",
            });
        }
        if !embedding.all_finite() {
            return Err(LinalgError::NonFinite { op: "ivf build" });
        }
        let dim = embedding.cols();
        let cells = params.cells;

        // Training subset: evenly strided over the row space (ids are not
        // geography — upstream layouts scatter similar rows), clamped so
        // there is at least one training row per cell.
        let train: Vec<usize> = if params.sample == 0 || params.sample >= rows {
            (0..rows).collect()
        } else {
            let want = params.sample.max(cells).min(rows);
            (0..want)
                .map(|i| ((i as u128 * rows as u128) / want as u128) as usize)
                .collect()
        };

        // Initial centroids: `cells` distinct training rows chosen by a
        // counter-mixed hash of the seed (deterministic, no RNG state).
        let mut centroids = Matrix::zeros(cells, dim);
        {
            let mut taken = vec![false; train.len()];
            for c in 0..cells {
                let mut at = (mix64(params.seed ^ c as u64) % train.len() as u64) as usize;
                while taken[at] {
                    at = (at + 1) % train.len();
                }
                taken[at] = true;
                centroids
                    .row_mut(c)
                    .copy_from_slice(embedding.row(train[at]));
                ops::normalize(centroids.row_mut(c));
            }
        }

        // Lloyd iterations: threaded assignment (each row independent),
        // sequential centroid update in ascending row order.
        let mut assign = vec![0u32; train.len()];
        let mut sums = Matrix::zeros(cells, dim);
        for _ in 0..params.iters {
            assign_rows(embedding, &centroids, &train, &mut assign, params.threads);
            sums.fill(0.0);
            let mut counts = vec![0u64; cells];
            for (slot, &row_id) in train.iter().enumerate() {
                let c = assign[slot] as usize;
                ops::axpy_unchecked(1.0, embedding.row(row_id), sums.row_mut(c));
                counts[c] += 1;
            }
            for (c, &count) in counts.iter().enumerate() {
                // Empty cells keep their previous centroid rather than
                // collapsing to zero and swallowing every later tie.
                if count > 0 {
                    centroids.row_mut(c).copy_from_slice(sums.row(c));
                    ops::normalize(centroids.row_mut(c));
                }
            }
        }

        // Final assignment covers every row; lists stay ascending because
        // rows are appended in index order.
        let all: Vec<usize> = (0..rows).collect();
        let mut final_assign = vec![0u32; rows];
        assign_rows(
            embedding,
            &centroids,
            &all,
            &mut final_assign,
            params.threads,
        );
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); cells];
        for (row_id, &c) in final_assign.iter().enumerate() {
            lists[c as usize].push(row_id as u32);
        }

        Ok(IvfIndex {
            centroids,
            lists,
            rows,
        })
    }

    /// Number of coarse cells.
    pub fn cells(&self) -> usize {
        self.centroids.rows()
    }

    /// Embedding dimension the index was built for.
    pub fn dim(&self) -> usize {
        self.centroids.cols()
    }

    /// Row count of the matrix the index was built over.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Member row ids of cell `c`, ascending.
    ///
    /// # Panics
    /// Panics if `c >= cells` (cell ids come from this index).
    pub fn list(&self, c: usize) -> &[u32] {
        &self.lists[c]
    }

    /// Approximate top-`k`: probes the `nprobe` cells whose centroids best
    /// match `profile`, re-scores every member row exactly, masks excluded
    /// rows `NaN` (the shared exclusion sentinel) and selects through the
    /// shared top-k heap. `out` receives `(row, score)` pairs, best first;
    /// scores are bit-identical to what the exhaustive scan computes for
    /// those rows. With `nprobe >= cells` the result equals the exhaustive
    /// scan exactly.
    ///
    /// # Errors
    /// `ShapeMismatch` when `embedding` does not match the build shape or
    /// `profile` is not `dim` long; `InvalidArgument` when `nprobe` is 0.
    #[allow(clippy::too_many_arguments)]
    pub fn search_into(
        &self,
        embedding: &Matrix,
        profile: &[f64],
        k: usize,
        nprobe: usize,
        exclude: &[usize],
        scratch: &mut IvfScratch,
        out: &mut Vec<(usize, f64)>,
    ) -> Result<(), LinalgError> {
        if embedding.rows() != self.rows || embedding.cols() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "ivf search embedding",
                left: embedding.rows(),
                right: self.rows,
            });
        }
        if profile.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "ivf search profile",
                left: profile.len(),
                right: self.dim(),
            });
        }
        self.probe_cells(profile, nprobe, scratch)?;
        self.rerank_probed(embedding, profile, k, exclude, scratch, out);
        Ok(())
    }

    /// Stage 1 of [`IvfIndex::search_into`]: ranks centroids against
    /// `profile` and selects the top-`nprobe` cells into the scratch
    /// probe list (ties by lower cell id, like every selection in this
    /// workspace). Split out so callers can time the probe and re-rank
    /// stages separately; the composition is byte-for-byte the old
    /// monolithic search.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if `profile` is not `dim`-long,
    /// [`LinalgError::InvalidArgument`] if `nprobe == 0`.
    pub fn probe_cells(
        &self,
        profile: &[f64],
        nprobe: usize,
        scratch: &mut IvfScratch,
    ) -> Result<(), LinalgError> {
        if profile.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "ivf search profile",
                left: profile.len(),
                right: self.dim(),
            });
        }
        if nprobe == 0 {
            return Err(LinalgError::InvalidArgument {
                what: "ivf nprobe must be >= 1",
            });
        }
        let nprobe = nprobe.min(self.cells());
        scratch.centroid_scores.resize(self.cells(), 0.0);
        for (c, score) in scratch.centroid_scores.iter_mut().enumerate() {
            *score = ops::dot_unchecked(profile, self.centroids.row(c));
        }
        top_k_with_scores_into(
            &scratch.centroid_scores,
            nprobe,
            &mut scratch.topk,
            &mut scratch.probes,
        );
        Ok(())
    }

    /// Stage 2 of [`IvfIndex::search_into`]: gathers the members of the
    /// cells selected by [`IvfIndex::probe_cells`] and exactly re-ranks
    /// them with the fixed-reduction-order dot kernel. Excluded rows
    /// keep the NaN sentinel so the selection's exclusion contract is
    /// untouched. Requires a prior `probe_cells` on the same scratch.
    pub fn rerank_probed(
        &self,
        embedding: &Matrix,
        profile: &[f64],
        k: usize,
        exclude: &[usize],
        scratch: &mut IvfScratch,
        out: &mut Vec<(usize, f64)>,
    ) {
        scratch.exclude_sorted.clear();
        scratch.exclude_sorted.extend_from_slice(exclude);
        scratch.exclude_sorted.sort_unstable();
        scratch.exclude_sorted.dedup();
        scratch.candidate_ids.clear();
        scratch.candidate_scores.clear();
        for &(cell, _) in &scratch.probes {
            for &row_id in &self.lists[cell] {
                let row_id = row_id as usize;
                let score = if scratch.exclude_sorted.binary_search(&row_id).is_ok() {
                    f64::NAN
                } else {
                    ops::dot_unchecked(profile, embedding.row(row_id))
                };
                scratch.candidate_ids.push(row_id);
                scratch.candidate_scores.push(score);
            }
        }
        top_k_indexed_into(
            &scratch.candidate_ids,
            &scratch.candidate_scores,
            k,
            &mut scratch.topk,
            out,
        );
    }
}

/// Writes each row's nearest-centroid cell (maximal dot product, ties to
/// the lower cell id) into `out`, split across `threads` contiguous
/// chunks. Every row's answer is a pure function of `(row, centroids)`
/// computed with the fixed-reduction-order dot kernel, so the partition
/// cannot change any assignment — `threads` affects latency only.
fn assign_rows(
    embedding: &Matrix,
    centroids: &Matrix,
    ids: &[usize],
    out: &mut [u32],
    threads: usize,
) {
    debug_assert_eq!(ids.len(), out.len());
    let threads = threads.min(ids.len()).max(1);
    if threads == 1 {
        for (slot, &row_id) in ids.iter().enumerate() {
            out[slot] = nearest_cell(embedding.row(row_id), centroids);
        }
        return;
    }
    let chunk = ids.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ids_chunk, out_chunk) in ids.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, &row_id) in ids_chunk.iter().enumerate() {
                    out_chunk[slot] = nearest_cell(embedding.row(row_id), centroids);
                }
            });
        }
    });
}

fn nearest_cell(row: &[f64], centroids: &Matrix) -> u32 {
    let mut best = 0u32;
    let mut best_score = f64::NEG_INFINITY;
    for c in 0..centroids.rows() {
        let score = ops::dot_unchecked(row, centroids.row(c));
        if score > best_score {
            best_score = score;
            best = c as u32;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Random unit-normalised embedding, the shape every caller feeds in.
    fn random_embedding(rows: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::from_fn(rows, dim, |_, _| rng.random::<f64>() * 2.0 - 1.0);
        m.normalize_rows();
        m
    }

    /// Two tight clusters along +x and +y so cell structure is predictable.
    fn clustered_embedding(per_cluster: usize) -> Matrix {
        let mut m = Matrix::zeros(2 * per_cluster, 2);
        for i in 0..per_cluster {
            m.set(i, 0, 1.0);
            m.set(i, 1, 0.01 * i as f64);
            m.set(per_cluster + i, 1, 1.0);
            m.set(per_cluster + i, 0, 0.01 * i as f64);
        }
        m.normalize_rows();
        m
    }

    fn exhaustive(
        embedding: &Matrix,
        profile: &[f64],
        k: usize,
        exclude: &[usize],
    ) -> Vec<(usize, f64)> {
        let mut scores = embedding.matvec(profile).unwrap();
        for &e in exclude {
            if e < scores.len() {
                scores[e] = f64::NAN;
            }
        }
        crate::topk::top_k_with_scores(&scores, k)
    }

    #[test]
    fn build_validates_params() {
        let emb = random_embedding(10, 3, 1);
        let bad = |p: IvfBuildParams| IvfIndex::build(&emb, &p).is_err();
        assert!(bad(IvfBuildParams {
            cells: 0,
            ..Default::default()
        }));
        assert!(bad(IvfBuildParams {
            cells: 11,
            ..Default::default()
        }));
        assert!(bad(IvfBuildParams {
            cells: 4,
            iters: 0,
            ..Default::default()
        }));
        assert!(bad(IvfBuildParams {
            cells: 4,
            threads: 0,
            ..Default::default()
        }));
        let mut poisoned = emb.clone();
        poisoned.set(3, 1, f64::NAN);
        assert!(matches!(
            IvfIndex::build(
                &poisoned,
                &IvfBuildParams {
                    cells: 4,
                    ..Default::default()
                }
            ),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn every_row_lands_in_exactly_one_cell() {
        let emb = random_embedding(57, 4, 2);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 7,
                ..Default::default()
            },
        )
        .unwrap();
        let mut seen = vec![0u32; 57];
        for c in 0..idx.cells() {
            let list = idx.list(c);
            assert!(list.windows(2).all(|w| w[0] < w[1]), "lists ascending");
            for &r in list {
                seen[r as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "partition of the rows");
        assert_eq!(idx.rows(), 57);
        assert_eq!(idx.dim(), 4);
    }

    #[test]
    fn build_is_bit_identical_across_thread_counts() {
        let emb = random_embedding(83, 5, 3);
        let reference = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 9,
                iters: 5,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for threads in [2, 3, 4, 8] {
            let idx = IvfIndex::build(
                &emb,
                &IvfBuildParams {
                    cells: 9,
                    iters: 5,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                idx, reference,
                "threads={threads} must not change the index"
            );
        }
    }

    #[test]
    fn sampled_training_still_partitions_all_rows() {
        let emb = random_embedding(120, 4, 4);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 8,
                sample: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let total: usize = (0..idx.cells()).map(|c| idx.list(c).len()).sum();
        assert_eq!(total, 120, "final assignment covers every row");
    }

    #[test]
    fn full_probe_matches_exhaustive_scan_bitwise() {
        let emb = random_embedding(71, 6, 5);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 6,
                ..Default::default()
            },
        )
        .unwrap();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let profile: Vec<f64> = (0..6).map(|_| rng.random::<f64>() - 0.5).collect();
            let k = rng.random_range(0usize..12);
            let exclude: Vec<usize> = (0..rng.random_range(0usize..5))
                .map(|_| rng.random_range(0..80))
                .collect();
            idx.search_into(
                &emb,
                &profile,
                k,
                idx.cells(),
                &exclude,
                &mut scratch,
                &mut out,
            )
            .unwrap();
            let expected = exhaustive(&emb, &profile, k, &exclude);
            assert_eq!(out.len(), expected.len());
            for (got, want) in out.iter().zip(&expected) {
                assert_eq!(got.0, want.0);
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "scores bit-identical");
            }
        }
    }

    #[test]
    fn probing_a_cluster_finds_its_members() {
        let emb = clustered_embedding(20);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        // A query along +x with one probe must return only x-cluster rows.
        idx.search_into(&emb, &[1.0, 0.0], 5, 1, &[], &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|&(r, _)| r < 20), "{out:?}");
        // Exclusion inside the shortlist is honoured.
        let banned: Vec<usize> = out.iter().map(|&(r, _)| r).collect();
        idx.search_into(&emb, &[1.0, 0.0], 5, 1, &banned, &mut scratch, &mut out)
            .unwrap();
        assert!(out.iter().all(|&(r, _)| !banned.contains(&r)));
    }

    #[test]
    fn duplicate_scores_straddling_the_cell_cutoff_keep_index_ties() {
        // Rows 0 and 21 are exact duplicates placed in different clusters'
        // index ranges; with both cells probed the tie must break to the
        // lower row id, exactly as the dense scan does.
        let mut emb = clustered_embedding(20);
        let dup: Vec<f64> = emb.row(0).to_vec();
        emb.row_mut(21).copy_from_slice(&dup);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        idx.search_into(&emb, &dup, 2, idx.cells(), &[], &mut scratch, &mut out)
            .unwrap();
        let expected = exhaustive(&emb, &dup, 2, &[]);
        assert_eq!(out, expected);
        assert_eq!(out[0].0, 0, "tie breaks to the lower row id");
        assert_eq!(out[1].0, 21);
    }

    #[test]
    fn search_validates_shapes_and_nprobe() {
        let emb = random_embedding(12, 3, 7);
        let idx = IvfIndex::build(
            &emb,
            &IvfBuildParams {
                cells: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let mut scratch = IvfScratch::new();
        let mut out = Vec::new();
        let wrong_rows = random_embedding(13, 3, 8);
        assert!(idx
            .search_into(&wrong_rows, &[0.0; 3], 2, 1, &[], &mut scratch, &mut out)
            .is_err());
        assert!(idx
            .search_into(&emb, &[0.0; 4], 2, 1, &[], &mut scratch, &mut out)
            .is_err());
        assert!(idx
            .search_into(&emb, &[0.0; 3], 2, 0, &[], &mut scratch, &mut out)
            .is_err());
        // nprobe beyond cells clamps instead of failing.
        idx.search_into(&emb, &[0.0; 3], 2, 99, &[], &mut scratch, &mut out)
            .unwrap();
    }
}

#[cfg(test)]
mod determinism_props {
    //! Property tests pinning the module's two contracts: thread-count
    //! invariance of the build and exhaustive equivalence at full probe.

    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    fn embedding_from(values: &[f64], rows: usize, dim: usize) -> Matrix {
        let mut m = Matrix::from_fn(rows, dim, |r, c| values[(r * dim + c) % values.len()]);
        m.normalize_rows();
        m
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn build_is_thread_invariant(
            values in vec(-1.0f64..1.0, 8..64),
            rows in 4usize..40,
            dim in 1usize..6,
            cells in 1usize..5,
            seed in 0u64..1000,
            threads in 2usize..8,
        ) {
            let cells = cells.min(rows);
            let emb = embedding_from(&values, rows, dim);
            let base = IvfBuildParams { cells, iters: 3, sample: 0, seed, threads: 1 };
            let sequential = IvfIndex::build(&emb, &base).unwrap();
            let threaded = IvfIndex::build(&emb, &IvfBuildParams { threads, ..base }).unwrap();
            prop_assert_eq!(&threaded, &sequential);
            // And rebuilding with the same seed reproduces the index.
            let again = IvfIndex::build(&emb, &base).unwrap();
            prop_assert_eq!(&again, &sequential);
        }

        #[test]
        fn full_probe_equals_dense_topk(
            values in vec(-1.0f64..1.0, 8..64),
            rows in 4usize..40,
            dim in 1usize..6,
            cells in 1usize..5,
            k in 0usize..12,
            exclude in vec(0usize..48, 0..6),
            pseed in 0u64..1000,
        ) {
            let cells = cells.min(rows);
            let emb = embedding_from(&values, rows, dim);
            let idx = IvfIndex::build(&emb, &IvfBuildParams {
                cells, iters: 2, sample: 0, seed: 7, threads: 2,
            }).unwrap();
            let profile: Vec<f64> = (0..dim)
                .map(|i| (mix64(pseed ^ i as u64) % 2000) as f64 / 1000.0 - 1.0)
                .collect();
            let mut scratch = IvfScratch::new();
            let mut out = Vec::new();
            idx.search_into(&emb, &profile, k, cells, &exclude, &mut scratch, &mut out)
                .unwrap();
            let mut scores = emb.matvec(&profile).unwrap();
            for &e in &exclude {
                if e < scores.len() {
                    scores[e] = f64::NAN;
                }
            }
            let expected = crate::topk::top_k_with_scores(&scores, k);
            prop_assert_eq!(out.len(), expected.len());
            for (got, want) in out.iter().zip(&expected) {
                prop_assert_eq!(got.0, want.0);
                prop_assert_eq!(got.1.to_bits(), want.1.to_bits());
            }
        }

        #[test]
        fn search_results_are_identical_across_build_threads(
            values in vec(-1.0f64..1.0, 8..64),
            rows in 6usize..40,
            dim in 2usize..6,
            nprobe in 1usize..4,
        ) {
            let emb = embedding_from(&values, rows, dim);
            let cells = 4.min(rows);
            let params = IvfBuildParams { cells, iters: 3, sample: 0, seed: 11, threads: 1 };
            let a = IvfIndex::build(&emb, &params).unwrap();
            let b = IvfIndex::build(&emb, &IvfBuildParams { threads: 4, ..params }).unwrap();
            let profile: Vec<f64> = (0..dim).map(|i| 0.3 * (i as f64 + 1.0)).collect();
            let mut scratch = IvfScratch::new();
            let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
            a.search_into(&emb, &profile, 5, nprobe, &[], &mut scratch, &mut out_a).unwrap();
            b.search_into(&emb, &profile, 5, nprobe, &[], &mut scratch, &mut out_b).unwrap();
            prop_assert_eq!(out_a, out_b);
        }
    }
}
