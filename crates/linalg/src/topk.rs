//! Partial top-k selection.
//!
//! The recommender ranks all `L` locations by cosine score and returns the
//! `k` best (paper §3.3); a bounded min-heap gives O(L log k) instead of a
//! full O(L log L) sort.
//!
//! Only `NaN` scores are unrankable and skipped. Infinite scores are
//! legitimate values: `+∞` ranks first and `-∞` ranks last, but both *can*
//! appear in the result. Callers that want to exclude candidates outright
//! (e.g. already-visited locations) must mark them `NaN`, not `-∞` — the
//! two cases are deliberately distinct.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(score, index)` pair ordered by score descending, with index ascending
/// as the tie-break so results are deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    score: f64,
    index: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the *worst*
        // retained entry on top so it can be evicted.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable heap storage for [`top_k_with_scores_into`], so hot serving
/// loops can run the selection without allocating per call.
#[derive(Debug, Default)]
pub struct TopKScratch {
    heap: BinaryHeap<Entry>,
}

impl TopKScratch {
    /// An empty scratch; its heap grows on first use and is retained
    /// across calls.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The shared single-pass selection core: every top-k entry point routes
/// through this loop, so dense scans and gathered shortlists make byte-for-
/// byte identical heap decisions.
///
/// The retained set is the top `k` under the strict total order
/// "(score descending, index ascending)". As long as all indices in `pairs`
/// are distinct, that order has no ties, so the output depends only on the
/// *set* of pairs — not on their iteration order. This is what lets an
/// IVF shortlist that covers every row reproduce the exhaustive scan
/// bit-for-bit even though its candidates arrive cell by cell.
fn select_top_k(
    pairs: impl Iterator<Item = (usize, f64)>,
    k: usize,
    scratch: &mut TopKScratch,
    out: &mut Vec<(usize, f64)>,
) {
    out.clear();
    let heap = &mut scratch.heap;
    heap.clear();
    if k == 0 {
        return;
    }
    for (index, score) in pairs {
        if score.is_nan() {
            continue;
        }
        if heap.len() < k {
            heap.push(Entry { score, index });
        } else if let Some(worst) = heap.peek() {
            let better = score > worst.score || (score == worst.score && index < worst.index);
            if better {
                heap.pop();
                heap.push(Entry { score, index });
            }
        }
    }
    // Popping yields worst-first (the heap's `Ord` is reversed), so the
    // reversed pop sequence is exactly best-first with index tie-breaks.
    while let Some(e) = heap.pop() {
        out.push((e.index, e.score));
    }
    out.reverse();
}

/// Writes the `(index, score)` pairs of the `k` largest scores into `out`,
/// best first, in a single selection pass (no second indexing pass).
///
/// `NaN` scores are skipped (unrankable); `±∞` are ranked like any other
/// value. Ties break by smaller index first, making the output
/// deterministic. `out` is cleared first; `scratch` is reused and never
/// shrinks, so steady-state calls are allocation-free.
pub fn top_k_with_scores_into(
    scores: &[f64],
    k: usize,
    scratch: &mut TopKScratch,
    out: &mut Vec<(usize, f64)>,
) {
    select_top_k(scores.iter().copied().enumerate(), k, scratch, out);
}

/// [`top_k_with_scores_into`] over a gathered shortlist: `indices[i]` names
/// the candidate whose score is `scores[i]`, and the selection runs the
/// same heap with the same "(score desc, index asc)" total order. Because
/// that order is strict over distinct indices, the result depends only on
/// the candidate *set*: a shortlist covering every index returns exactly
/// what the dense scan returns, bit for bit, regardless of gather order.
///
/// # Panics
/// Panics if `indices` and `scores` differ in length (a shortlist is built
/// by one gather loop; mismatched halves are a programming error).
pub fn top_k_indexed_into(
    indices: &[usize],
    scores: &[f64],
    k: usize,
    scratch: &mut TopKScratch,
    out: &mut Vec<(usize, f64)>,
) {
    assert_eq!(
        indices.len(),
        scores.len(),
        "shortlist indices and scores must pair up"
    );
    select_top_k(
        indices.iter().copied().zip(scores.iter().copied()),
        k,
        scratch,
        out,
    );
}

/// Returns `(index, score)` pairs of the `k` largest scores, best first.
///
/// See [`top_k_with_scores_into`] for ranking semantics; this is the
/// allocating convenience wrapper around the same single-pass selection.
pub fn top_k_with_scores(scores: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut scratch = TopKScratch::new();
    let mut out = Vec::with_capacity(k.min(scores.len()));
    top_k_with_scores_into(scores, k, &mut scratch, &mut out);
    out
}

/// Returns the indices of the `k` largest scores, best first.
///
/// `NaN` scores are skipped; `±∞` are ranked (see the module docs). Ties
/// are broken by smaller index first, making the output deterministic.
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    top_k_with_scores(scores, k)
        .into_iter()
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest_in_order() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&scores, 4), vec![1, 3, 2, 0]);
    }

    #[test]
    fn k_larger_than_len_returns_all_sorted() {
        let scores = [2.0, 1.0];
        assert_eq!(top_k_indices(&scores, 10), vec![0, 1]);
    }

    #[test]
    fn k_zero_and_empty_input() {
        assert!(top_k_indices(&[1.0], 0).is_empty());
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn ties_break_by_smaller_index() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(top_k_indices(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn nan_scores_are_skipped() {
        let scores = [f64::NAN, 1.0, 0.5, f64::NAN];
        assert_eq!(top_k_indices(&scores, 4), vec![1, 2]);
    }

    #[test]
    fn positive_infinity_ranks_first() {
        // Regression: +∞ is a legitimate (maximal) score, not an
        // unrankable one; it must enter the result and lead it.
        let scores = [f64::NAN, 1.0, f64::INFINITY, 0.5];
        assert_eq!(top_k_indices(&scores, 3), vec![2, 1, 3]);
        assert_eq!(
            top_k_with_scores(&scores, 2),
            vec![(2, f64::INFINITY), (1, 1.0)]
        );
    }

    #[test]
    fn negative_infinity_ranks_last_but_is_rankable() {
        // Regression: -∞ sorts below every finite score yet is still a
        // score — exclusion is the caller's job, via NaN.
        let scores = [1.0, f64::NEG_INFINITY, 0.5];
        assert_eq!(top_k_indices(&scores, 3), vec![0, 2, 1]);
        assert_eq!(top_k_indices(&scores, 2), vec![0, 2]);
    }

    #[test]
    fn infinite_ties_break_by_index() {
        let scores = [f64::INFINITY, f64::INFINITY, 0.0];
        assert_eq!(top_k_indices(&scores, 2), vec![0, 1]);
        let lows = [f64::NEG_INFINITY, f64::NEG_INFINITY];
        assert_eq!(top_k_indices(&lows, 2), vec![0, 1]);
    }

    #[test]
    fn with_scores_pairs_match() {
        let scores = [0.2, 0.8, 0.4];
        assert_eq!(top_k_with_scores(&scores, 2), vec![(1, 0.8), (2, 0.4)]);
    }

    #[test]
    fn into_variant_reuses_scratch_and_clears_out() {
        let mut scratch = TopKScratch::new();
        let mut out = vec![(99, 9.9)];
        top_k_with_scores_into(&[0.1, 0.7], 1, &mut scratch, &mut out);
        assert_eq!(out, vec![(1, 0.7)]);
        top_k_with_scores_into(&[0.3, 0.2, 0.9], 2, &mut scratch, &mut out);
        assert_eq!(out, vec![(2, 0.9), (0, 0.3)]);
        top_k_with_scores_into(&[], 2, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn indexed_variant_matches_dense_on_full_cover() {
        let scores = [0.3, f64::NAN, 0.9, 0.9, -0.2];
        let mut scratch = TopKScratch::new();
        let mut dense = Vec::new();
        top_k_with_scores_into(&scores, 3, &mut scratch, &mut dense);
        // Same candidates, gathered out of order: result must not change.
        let indices = [3usize, 0, 4, 2, 1];
        let gathered: Vec<f64> = indices.iter().map(|&i| scores[i]).collect();
        let mut out = Vec::new();
        top_k_indexed_into(&indices, &gathered, 3, &mut scratch, &mut out);
        assert_eq!(out, dense, "gather order must not change the selection");
    }

    #[test]
    fn indexed_variant_selects_subset() {
        let indices = [10usize, 4, 7];
        let scores = [0.5, 0.9, f64::NAN];
        let mut scratch = TopKScratch::new();
        let mut out = Vec::new();
        top_k_indexed_into(&indices, &scores, 5, &mut scratch, &mut out);
        assert_eq!(out, vec![(4, 0.9), (10, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "must pair up")]
    fn indexed_variant_rejects_mismatched_halves() {
        let mut scratch = TopKScratch::new();
        let mut out = Vec::new();
        top_k_indexed_into(&[1, 2], &[0.5], 1, &mut scratch, &mut out);
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let n = rng.random_range(1..200);
            let scores: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
            let k = rng.random_range(0..n + 5);
            let got = top_k_indices(&scores, k);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
            idx.truncate(k);
            assert_eq!(got, idx);
        }
    }
}
