//! Partial top-k selection.
//!
//! The recommender ranks all `L` locations by cosine score and returns the
//! `k` best (paper §3.3); a bounded min-heap gives O(L log k) instead of a
//! full O(L log L) sort.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(score, index)` pair ordered by score descending, with index ascending
/// as the tie-break so results are deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    score: f64,
    index: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the *worst*
        // retained entry on top so it can be evicted.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Returns the indices of the `k` largest scores, best first.
///
/// Non-finite scores are skipped (they never enter the result). Ties are
/// broken by smaller index first, making the output deterministic.
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    if k == 0 || scores.is_empty() {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (index, &score) in scores.iter().enumerate() {
        if !score.is_finite() {
            continue;
        }
        if heap.len() < k {
            heap.push(Entry { score, index });
        } else if let Some(worst) = heap.peek() {
            let better = score > worst.score || (score == worst.score && index < worst.index);
            if better {
                heap.pop();
                heap.push(Entry { score, index });
            }
        }
    }
    let mut out: Vec<Entry> = heap.into_vec();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.index.cmp(&b.index))
    });
    out.into_iter().map(|e| e.index).collect()
}

/// Returns `(index, score)` pairs of the `k` largest scores, best first.
pub fn top_k_with_scores(scores: &[f64], k: usize) -> Vec<(usize, f64)> {
    top_k_indices(scores, k)
        .into_iter()
        .map(|i| (i, scores[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest_in_order() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&scores, 4), vec![1, 3, 2, 0]);
    }

    #[test]
    fn k_larger_than_len_returns_all_sorted() {
        let scores = [2.0, 1.0];
        assert_eq!(top_k_indices(&scores, 10), vec![0, 1]);
    }

    #[test]
    fn k_zero_and_empty_input() {
        assert!(top_k_indices(&[1.0], 0).is_empty());
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn ties_break_by_smaller_index() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(top_k_indices(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn nan_scores_are_skipped() {
        let scores = [f64::NAN, 1.0, f64::INFINITY, 0.5];
        // +inf is not finite either: skipped by design.
        assert_eq!(top_k_indices(&scores, 3), vec![1, 3]);
    }

    #[test]
    fn with_scores_pairs_match() {
        let scores = [0.2, 0.8, 0.4];
        assert_eq!(top_k_with_scores(&scores, 2), vec![(1, 0.8), (2, 0.4)]);
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let n = rng.random_range(1..200);
            let scores: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
            let k = rng.random_range(0..n + 5);
            let got = top_k_indices(&scores, k);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
            idx.truncate(k);
            assert_eq!(got, idx);
        }
    }
}
