//! Row-major dense matrix used for the model tensors.
//!
//! The skip-gram model stores `W` (embedding) and `W'` (context) as
//! `L × dim` matrices whose *rows* are the per-location vectors; almost all
//! access is row-wise, which is why the layout is row-major and the API is
//! row-centric.

use serde::{Deserialize, Serialize};

use crate::error::LinalgError;
use crate::ops;

/// A dense, row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    /// Returns [`LinalgError::BadBuffer`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::BadBuffer {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows` (row indices are internal, validated at the
    /// vocabulary layer; an out-of-range row here is a programming error).
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Checked row access.
    ///
    /// # Errors
    /// Returns [`LinalgError::IndexOutOfRange`] if `r >= rows`.
    pub fn try_row(&self, r: usize) -> Result<&[f64], LinalgError> {
        if r >= self.rows {
            return Err(LinalgError::IndexOutOfRange {
                index: r,
                len: self.rows,
            });
        }
        Ok(self.row(r))
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access `(r, c)`; panics when out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment `(r, c)`; panics when out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Frobenius norm (the ℓ2 norm of the flattened matrix).
    pub fn frobenius_norm(&self) -> f64 {
        ops::l2_norm(&self.data)
    }

    /// `self += alpha * other`, element-wise.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<(), LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matrix axpy",
                left: self.len(),
                right: other.len(),
            });
        }
        ops::axpy(alpha, &other.data, &mut self.data)
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: self.cols,
                right: x.len(),
            });
        }
        Ok((0..self.rows)
            .map(|r| ops::dot_unchecked(self.row(r), x))
            .collect())
    }

    /// Normalises every row to unit ℓ2 length (zero rows are left as-is).
    ///
    /// The paper normalises the embedding matrix before deployment so that
    /// cosine similarity equals the dot product (§3.2).
    pub fn normalize_rows(&mut self) {
        for r in 0..self.rows {
            ops::normalize(self.row_mut(r));
        }
    }

    /// Returns a copy with all rows normalised to unit length.
    pub fn normalized_rows(&self) -> Matrix {
        let mut m = self.clone();
        m.normalize_rows();
        m
    }

    /// `true` iff every element is finite.
    pub fn all_finite(&self) -> bool {
        ops::all_finite(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn from_vec_validates_buffer() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(LinalgError::BadBuffer { .. })
        ));
    }

    #[test]
    fn row_access_is_row_major() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(1, 2), 6.0);
        assert!(m.try_row(2).is_err());
    }

    #[test]
    fn from_fn_evaluates_positions() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]).unwrap();
        let y = m.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, -1.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn axpy_and_frobenius() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]).unwrap();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.get(0, 0), 6.0);
        assert_eq!(a.frobenius_norm(), 10.0);
        let wrong = Matrix::zeros(1, 2);
        assert!(a.axpy(1.0, &wrong).is_err());
    }

    #[test]
    fn normalize_rows_gives_unit_rows_and_keeps_zero_rows() {
        let mut m = Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]).unwrap();
        m.normalize_rows();
        assert!((crate::ops::l2_norm(m.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_fn(3, 2, |r, c| r as f64 - c as f64);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn map_inplace_and_fill() {
        let mut m = Matrix::zeros(2, 2);
        m.fill(2.0);
        m.map_inplace(|x| x * x);
        assert!(m.as_slice().iter().all(|&x| x == 4.0));
        assert!(m.all_finite());
        m.set(0, 0, f64::NAN);
        assert!(!m.all_finite());
    }
}
