//! Row-major dense matrix used for the model tensors.
//!
//! The skip-gram model stores `W` (embedding) and `W'` (context) as
//! `L × dim` matrices whose *rows* are the per-location vectors; almost all
//! access is row-wise, which is why the layout is row-major and the API is
//! row-centric.
//!
//! A matrix is backed either by an owned `Vec<f64>` (training, decoding) or
//! by a read-only [`MappedSlice`] view into an mmapped PLPS snapshot
//! (zero-copy serving). Read access is uniform through [`Matrix::as_slice`];
//! any mutation promotes a mapped matrix to owned storage first
//! (copy-on-write), so the mutable API is unchanged and mapped pages are
//! never written through.

use plp_mmap::MappedSlice;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::error::LinalgError;
use crate::ops;

/// Backing storage for the row-major element buffer.
#[derive(Clone)]
enum Data {
    /// Heap-owned, mutable buffer.
    Owned(Vec<f64>),
    /// Read-only window into a shared memory-mapped snapshot.
    Mapped(MappedSlice),
}

impl Data {
    #[inline]
    fn as_slice(&self) -> &[f64] {
        match self {
            Data::Owned(v) => v,
            Data::Mapped(m) => m.as_slice(),
        }
    }
}

/// A dense, row-major `rows × cols` matrix of `f64`.
#[derive(Clone)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Data,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: Data::Owned(vec![0.0; rows * cols]),
        }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    /// Returns [`LinalgError::BadBuffer`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::BadBuffer {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: Data::Owned(data),
        })
    }

    /// Wraps a read-only mapped view as a matrix **without copying**: the
    /// elements stay in the mmapped snapshot pages and every kernel works
    /// off the `&[f64]` view. Mutating methods transparently promote to an
    /// owned copy first.
    ///
    /// # Errors
    /// Returns [`LinalgError::BadBuffer`] if `view.len() != rows * cols`.
    pub fn from_mapped(rows: usize, cols: usize, view: MappedSlice) -> Result<Self, LinalgError> {
        if view.len() != rows * cols {
            return Err(LinalgError::BadBuffer {
                rows,
                cols,
                len: view.len(),
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: Data::Mapped(view),
        })
    }

    /// `true` when the matrix is still backed by a mapped snapshot view
    /// (no mutation has promoted it to owned storage).
    pub fn is_mapped(&self) -> bool {
        matches!(self.data, Data::Mapped(_))
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix {
            rows,
            cols,
            data: Data::Owned(data),
        }
    }

    /// Mutable access to the owned buffer, promoting a mapped matrix to an
    /// owned copy first (copy-on-write).
    fn data_mut(&mut self) -> &mut Vec<f64> {
        if let Data::Mapped(view) = &self.data {
            self.data = Data::Owned(view.as_slice().to_vec());
        }
        match &mut self.data {
            Data::Owned(v) => v,
            Data::Mapped(_) => unreachable!("mapped backing promoted above"),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` iff the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows` (row indices are internal, validated at the
    /// vocabulary layer; an out-of-range row here is a programming error).
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data.as_slice()[start..start + self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        let cols = self.cols;
        &mut self.data_mut()[start..start + cols]
    }

    /// Checked row access.
    ///
    /// # Errors
    /// Returns [`LinalgError::IndexOutOfRange`] if `r >= rows`.
    pub fn try_row(&self, r: usize) -> Result<&[f64], LinalgError> {
        if r >= self.rows {
            return Err(LinalgError::IndexOutOfRange {
                index: r,
                len: self.rows,
            });
        }
        Ok(self.row(r))
    }

    /// The underlying row-major buffer (owned or mapped — the read path is
    /// uniform).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        self.data.as_slice()
    }

    /// Mutable access to the underlying row-major buffer; promotes a mapped
    /// matrix to an owned copy.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data_mut()
    }

    /// Element access `(r, c)`; panics when out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data.as_slice()[r * self.cols + c]
    }

    /// Element assignment `(r, c)`; panics when out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        let idx = r * self.cols + c;
        self.data_mut()[idx] = v;
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data_mut().fill(v);
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Frobenius norm (the ℓ2 norm of the flattened matrix).
    pub fn frobenius_norm(&self) -> f64 {
        ops::l2_norm(self.as_slice())
    }

    /// `self += alpha * other`, element-wise.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<(), LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matrix axpy",
                left: self.len(),
                right: other.len(),
            });
        }
        ops::axpy(alpha, other.as_slice(), self.data_mut())
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: self.cols,
                right: x.len(),
            });
        }
        Ok((0..self.rows)
            .map(|r| ops::dot_unchecked(self.row(r), x))
            .collect())
    }

    /// Blocked matrix product against a transposed right-hand side:
    /// `out[i][j] = self.row(i) · rhs.row(j)`, i.e. `self · rhsᵀ`.
    ///
    /// Both operands are row-major with rows as the per-item vectors (the
    /// layout of every tensor in this workspace), so `A · Bᵀ` is the
    /// natural batched form of [`Matrix::matvec`]: scoring a batch of
    /// query profiles against every embedding row is one call instead of
    /// one `matvec` per query. Iteration is tiled over the rows of both
    /// operands for cache locality, while each inner product runs over the
    /// shared dimension in the same sequential order as `matvec` — so
    /// every output element is **bit-identical** to the per-query path.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols != rhs.cols`.
    pub fn matmul_block(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        matmul_block_into(
            self.as_slice(),
            self.rows,
            self.cols,
            rhs,
            out.as_mut_slice(),
        )?;
        Ok(out)
    }

    /// Normalises every row to unit ℓ2 length (zero rows are left as-is).
    ///
    /// The paper normalises the embedding matrix before deployment so that
    /// cosine similarity equals the dot product (§3.2).
    pub fn normalize_rows(&mut self) {
        for r in 0..self.rows {
            ops::normalize(self.row_mut(r));
        }
    }

    /// Returns a copy with all rows normalised to unit length.
    pub fn normalized_rows(&self) -> Matrix {
        let mut m = self.clone();
        m.normalize_rows();
        m
    }

    /// `true` iff every element is finite.
    pub fn all_finite(&self) -> bool {
        ops::all_finite(self.as_slice())
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Matrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("mapped", &self.is_mapped())
            .field("data", &self.as_slice())
            .finish()
    }
}

impl PartialEq for Matrix {
    /// Shape plus element equality; a mapped matrix equals an owned one
    /// with the same contents (backing is a storage detail).
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.as_slice() == other.as_slice()
    }
}

impl Serialize for Matrix {
    /// Serializes as `{rows, cols, data}` regardless of backing, matching
    /// the representation the derived impl produced for the owned-only
    /// struct (so existing PLPC checkpoints and JSON stay compatible).
    fn to_value(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert("rows".to_string(), self.rows.to_value());
        m.insert("cols".to_string(), self.cols.to_value());
        m.insert("data".to_string(), self.as_slice().to_value());
        Value::Object(m)
    }
}

impl Deserialize for Matrix {
    /// Deserialized matrices are always owned (a serialized tree has no
    /// mapping to point back into).
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::new("expected Matrix object"))?;
        let field = |name: &str| {
            obj.get(name)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
        };
        let rows = usize::from_value(field("rows")?)?;
        let cols = usize::from_value(field("cols")?)?;
        let data = Vec::<f64>::from_value(field("data")?)?;
        Matrix::from_vec(rows, cols, data)
            .map_err(|_| DeError::new("matrix data length does not match rows * cols"))
    }
}

/// Row-block tile over the left operand of [`matmul_block_into`].
const MATMUL_BLOCK_ROWS: usize = 16;
/// Row-block tile over the right operand of [`matmul_block_into`].
const MATMUL_BLOCK_COLS: usize = 64;

/// The raw-buffer form of [`Matrix::matmul_block`], for callers that reuse
/// scratch storage: `a` holds `a_rows` row-major rows of `a_cols` elements
/// (a prefix of a larger buffer is fine as long as the lengths check out),
/// and `out` receives `a_rows × rhs.rows()` scores.
///
/// Tiling reorders only *which* output element is computed when; each
/// element's inner product runs [`ops::dot_unchecked`]'s eight-lane
/// micro-kernel with its fixed reduction order over the shared dimension,
/// so results are bit-identical to a per-row [`Matrix::matvec`] (which uses
/// the same kernel) regardless of tile shape or thread count.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if `a_cols != rhs.cols()`, and
/// [`LinalgError::BadBuffer`] if `a` is shorter than `a_rows * a_cols` or
/// `out` shorter than `a_rows * rhs.rows()`.
pub fn matmul_block_into(
    a: &[f64],
    a_rows: usize,
    a_cols: usize,
    rhs: &Matrix,
    out: &mut [f64],
) -> Result<(), LinalgError> {
    if a_cols != rhs.cols {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_block",
            left: a_cols,
            right: rhs.cols,
        });
    }
    if a.len() < a_rows * a_cols {
        return Err(LinalgError::BadBuffer {
            rows: a_rows,
            cols: a_cols,
            len: a.len(),
        });
    }
    let b_rows = rhs.rows;
    if out.len() < a_rows * b_rows {
        return Err(LinalgError::BadBuffer {
            rows: a_rows,
            cols: b_rows,
            len: out.len(),
        });
    }
    for ib in (0..a_rows).step_by(MATMUL_BLOCK_ROWS) {
        let i_end = (ib + MATMUL_BLOCK_ROWS).min(a_rows);
        for jb in (0..b_rows).step_by(MATMUL_BLOCK_COLS) {
            let j_end = (jb + MATMUL_BLOCK_COLS).min(b_rows);
            for i in ib..i_end {
                let a_row = &a[i * a_cols..(i + 1) * a_cols];
                let out_row = &mut out[i * b_rows..(i + 1) * b_rows];
                for (j, out_cell) in out_row.iter_mut().enumerate().take(j_end).skip(jb) {
                    *out_cell = ops::dot_unchecked(a_row, rhs.row(j));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn from_vec_validates_buffer() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(LinalgError::BadBuffer { .. })
        ));
    }

    #[test]
    fn row_access_is_row_major() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(1, 2), 6.0);
        assert!(m.try_row(2).is_err());
    }

    #[test]
    fn from_fn_evaluates_positions() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]).unwrap();
        let y = m.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, -1.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn axpy_and_frobenius() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]).unwrap();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.get(0, 0), 6.0);
        assert_eq!(a.frobenius_norm(), 10.0);
        let wrong = Matrix::zeros(1, 2);
        assert!(a.axpy(1.0, &wrong).is_err());
    }

    #[test]
    fn normalize_rows_gives_unit_rows_and_keeps_zero_rows() {
        let mut m = Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]).unwrap();
        m.normalize_rows();
        assert!((crate::ops::l2_norm(m.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn matmul_block_is_bitwise_matvec_per_row() {
        // Sizes straddle both tile boundaries (16 and 64).
        for (b, l, d) in [(1, 3, 2), (5, 70, 7), (17, 64, 3), (33, 130, 5)] {
            let queries = Matrix::from_fn(b, d, |r, c| ((r * 31 + c * 17) % 13) as f64 - 6.0);
            let emb = Matrix::from_fn(l, d, |r, c| ((r * 7 + c * 5) % 11) as f64 * 0.25 - 1.0);
            let out = queries.matmul_block(&emb).unwrap();
            assert_eq!(out.rows(), b);
            assert_eq!(out.cols(), l);
            for r in 0..b {
                let reference = emb.matvec(queries.row(r)).unwrap();
                for (j, expected) in reference.iter().enumerate() {
                    assert_eq!(
                        out.get(r, j).to_bits(),
                        expected.to_bits(),
                        "row {r} col {j} must be bit-identical to matvec"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_block_validates_shapes_and_buffers() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(
            a.matmul_block(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let rhs = Matrix::zeros(4, 3);
        let mut out = vec![0.0; 7]; // needs 2 * 4 = 8
        assert!(matches!(
            matmul_block_into(a.as_slice(), 2, 3, &rhs, &mut out),
            Err(LinalgError::BadBuffer { .. })
        ));
        let mut full = vec![0.0; 8];
        assert!(matches!(
            matmul_block_into(&a.as_slice()[..5], 2, 3, &rhs, &mut full),
            Err(LinalgError::BadBuffer { .. })
        ));
    }

    #[test]
    fn matmul_block_into_accepts_prefix_of_larger_scratch() {
        // A serving worker sizes scratch for max_batch and scores smaller
        // final batches through the same buffers.
        let emb = Matrix::from_fn(5, 2, |r, c| (r + c) as f64);
        let profiles = vec![1.0, 2.0, 0.5, -1.0, 9.0, 9.0]; // 2 used rows + slack
        let mut scores = vec![f64::NAN; 3 * 5]; // oversized on purpose
        matmul_block_into(&profiles, 2, 2, &emb, &mut scores).unwrap();
        let r0 = emb.matvec(&[1.0, 2.0]).unwrap();
        let r1 = emb.matvec(&[0.5, -1.0]).unwrap();
        assert_eq!(&scores[..5], r0.as_slice());
        assert_eq!(&scores[5..10], r1.as_slice());
        assert!(scores[10..].iter().all(|x| x.is_nan()), "slack untouched");
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_fn(3, 2, |r, c| r as f64 - c as f64);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    /// Writes `values` to a temp file and maps them back as a view.
    fn mapped_view(name: &str, values: &[f64]) -> (std::path::PathBuf, MappedSlice) {
        use std::io::Write;
        let path =
            std::env::temp_dir().join(format!("plp_linalg_test_{}_{name}", std::process::id()));
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&bytes)
            .unwrap();
        let map = std::sync::Arc::new(plp_mmap::Mmap::map(&path).unwrap());
        let view = MappedSlice::new(map, 0, values.len()).unwrap();
        (path, view)
    }

    #[test]
    fn mapped_matrix_reads_bit_identical_to_owned() {
        let values = [1.0, -2.5, 3.25, 0.5, 1e-12, -9.75];
        let (path, view) = mapped_view("read", &values);
        let mapped = Matrix::from_mapped(2, 3, view).unwrap();
        let owned = Matrix::from_vec(2, 3, values.to_vec()).unwrap();
        assert!(mapped.is_mapped());
        assert!(!owned.is_mapped());
        assert_eq!(mapped, owned);
        for (a, b) in mapped.as_slice().iter().zip(owned.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Kernels run straight off the view.
        let x = [1.0, 2.0, 3.0];
        let ym = mapped.matvec(&x).unwrap();
        let yo = owned.matvec(&x).unwrap();
        assert_eq!(ym, yo);
        let pm = mapped.matmul_block(&owned).unwrap();
        let po = owned.matmul_block(&owned).unwrap();
        assert_eq!(pm, po);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mutation_promotes_mapped_to_owned_copy() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let (path, view) = mapped_view("cow", &values);
        let mut m = Matrix::from_mapped(2, 2, view.clone()).unwrap();
        assert!(m.is_mapped());
        m.set(0, 0, 42.0);
        assert!(!m.is_mapped(), "mutation must promote to owned");
        assert_eq!(m.get(0, 0), 42.0);
        // The mapping itself is untouched.
        assert_eq!(view.as_slice()[0], 1.0);
        // Other mutators promote too.
        let mut n = Matrix::from_mapped(2, 2, view.clone()).unwrap();
        n.normalize_rows();
        assert!(!n.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_matrix_serde_round_trips_to_owned() {
        let values = [0.5, -1.5, 2.5, -3.5];
        let (path, view) = mapped_view("serde", &values);
        let mapped = Matrix::from_mapped(2, 2, view).unwrap();
        let json = serde_json::to_string(&mapped).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert!(!back.is_mapped());
        assert_eq!(back, mapped);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_mapped_validates_length() {
        let (path, view) = mapped_view("len", &[1.0, 2.0, 3.0]);
        assert!(matches!(
            Matrix::from_mapped(2, 2, view),
            Err(LinalgError::BadBuffer { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn map_inplace_and_fill() {
        let mut m = Matrix::zeros(2, 2);
        m.fill(2.0);
        m.map_inplace(|x| x * x);
        assert!(m.as_slice().iter().all(|&x| x == 4.0));
        assert!(m.all_finite());
        m.set(0, 0, f64::NAN);
        assert!(!m.all_finite());
    }
}
