//! Dense linear algebra, random sampling and numeric kernels for the PLP
//! (Private Location Prediction) workspace.
//!
//! This crate is the numeric foundation of the EDBT 2020 reproduction. It
//! deliberately implements only what the skip-gram / DP-SGD stack needs, in
//! plain safe Rust over `f64` slices:
//!
//! * [`ops`] — vector kernels (dot, axpy, norms, cosine, norm clipping),
//! * [`matrix`] — a row-major dense [`Matrix`](matrix::Matrix) used for the
//!   embedding and context tensors,
//! * [`topk`] — partial selection of the `k` best-scoring indices,
//! * [`ivf`] — a deterministic IVF coarse-quantiser index for sublinear
//!   top-k over the embedding rows (exact re-rank of probed cells),
//! * [`sample`] — hand-written samplers (standard normal via Box–Muller,
//!   bounded Zipf, Poisson subsampling) so that no distribution crate beyond
//!   `rand` is required,
//! * [`stats`] — running moments, percentiles and the paired *t*-test used by
//!   the paper's significance claim (§5.2).
//!
//! Everything is deterministic given a seeded RNG, which the higher layers
//! rely on for reproducible experiments.

pub mod error;
pub mod ivf;
pub mod matrix;
pub mod ops;
pub mod sample;
pub mod stats;
pub mod topk;

pub use error::LinalgError;
pub use matrix::Matrix;
