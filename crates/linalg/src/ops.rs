//! Vector kernels over `f64` slices.
//!
//! These are the hot-path primitives of skip-gram training: dot products
//! between embedding rows, `axpy` accumulation of gradients, ℓ2 norms and the
//! norm clipping at the heart of DP-SGD (Abadi et al. 2016, eq. in §3.1 of
//! the paper's Algorithm 1, line 21).
//!
//! # Determinism contract
//!
//! The reduction kernels ([`dot_unchecked`], [`l2_norm_sq`]) run eight
//! independent accumulator lanes over `chunks_exact(8)` — two 4-wide vector
//! registers' worth, so the loop-carried add latency chain splits in two —
//! and combine them in the *fixed* order
//! `(((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail`, where
//! `tail` sums the `len % 8` remainder sequentially. Element-wise kernels
//! ([`axpy`], [`scale`], [`sub_into`]) have no cross-element reduction at
//! all. The result therefore depends only on the input values — never on
//! thread count, batch shape, or call site — which is what keeps the
//! bit-identical checkpoint/resume and serve-vs-sequential invariants
//! holding while still letting the compiler auto-vectorise the eight-lane
//! main loop into f64 vector pairs.
//!
//! The lane count (and thus the reduction order) is versioned on disk:
//! `plp-core`'s `KERNEL_SCHEME_VERSION` is folded into the checkpoint config
//! fingerprint, so checkpoints trained under the old four-lane order are
//! rejected with a restart-from-scratch error instead of silently resuming
//! onto a different bit stream.

use crate::error::LinalgError;

/// Unroll width of the multi-accumulator kernels. Changing this changes the
/// floating-point reduction order and thus the bit pattern of every trained
/// model; treat it as part of the on-disk format (see `KERNEL_SCHEME_VERSION`
/// in `plp-core`, which must be bumped in lock-step).
const LANES: usize = 8;

/// Dot product of two equal-length slices.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64, LinalgError> {
    if a.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "dot",
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(dot_unchecked(a, b))
}

/// Dot product without a shape check; panics in debug builds on mismatch.
///
/// Eight-lane multi-accumulator loop with the fixed reduction order
/// `(((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail` (see the
/// module docs): deterministic, and independent of everything but the input
/// values. Eight lanes are two 4-wide f64 vectors, which halves the
/// loop-carried dependency on the accumulator adds.
#[inline]
pub fn dot_unchecked(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let main = n - n % LANES;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0_f64, 0.0_f64, 0.0_f64, 0.0_f64);
    let (mut s4, mut s5, mut s6, mut s7) = (0.0_f64, 0.0_f64, 0.0_f64, 0.0_f64);
    for (ca, cb) in a[..main]
        .chunks_exact(LANES)
        .zip(b[..main].chunks_exact(LANES))
    {
        s0 += ca[0] * cb[0];
        s1 += ca[1] * cb[1];
        s2 += ca[2] * cb[2];
        s3 += ca[3] * cb[3];
        s4 += ca[4] * cb[4];
        s5 += ca[5] * cb[5];
        s6 += ca[6] * cb[6];
        s7 += ca[7] * cb[7];
    }
    let mut tail = 0.0_f64;
    for (x, y) in a[main..n].iter().zip(&b[main..n]) {
        tail += x * y;
    }
    (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail
}

/// `y += alpha * x` without a shape check; panics in debug builds on
/// mismatch. Element-wise (no reduction), unrolled eight wide (two f64
/// vector pairs) for auto-vectorisation; each `y[i]` sees exactly
/// `y[i] + alpha * x[i]`.
#[inline]
pub fn axpy_unchecked(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let main = n - n % LANES;
    for (cy, cx) in y[..main]
        .chunks_exact_mut(LANES)
        .zip(x[..main].chunks_exact(LANES))
    {
        cy[0] += alpha * cx[0];
        cy[1] += alpha * cx[1];
        cy[2] += alpha * cx[2];
        cy[3] += alpha * cx[3];
        cy[4] += alpha * cx[4];
        cy[5] += alpha * cx[5];
        cy[6] += alpha * cx[6];
        cy[7] += alpha * cx[7];
    }
    for (yi, xi) in y[main..n].iter_mut().zip(&x[main..n]) {
        *yi += alpha * xi;
    }
}

/// `y += alpha * x` (the BLAS `axpy` kernel).
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
    if x.len() != y.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "axpy",
            left: x.len(),
            right: y.len(),
        });
    }
    axpy_unchecked(alpha, x, y);
    Ok(())
}

/// `y *= alpha` in place. Element-wise, unrolled eight wide.
pub fn scale(alpha: f64, y: &mut [f64]) {
    let n = y.len();
    let main = n - n % LANES;
    for cy in y[..main].chunks_exact_mut(LANES) {
        cy[0] *= alpha;
        cy[1] *= alpha;
        cy[2] *= alpha;
        cy[3] *= alpha;
        cy[4] *= alpha;
        cy[5] *= alpha;
        cy[6] *= alpha;
        cy[7] *= alpha;
    }
    for yi in &mut y[main..] {
        *yi *= alpha;
    }
}

/// Element-wise `out = a - b` into a caller-provided buffer, so hot delta
/// paths can reuse scratch rows instead of allocating per call.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if any of the lengths differ.
pub fn sub_into(a: &[f64], b: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
    if a.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "sub",
            left: a.len(),
            right: b.len(),
        });
    }
    if out.len() != a.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "sub",
            left: a.len(),
            right: out.len(),
        });
    }
    let n = a.len();
    let main = n - n % LANES;
    for ((co, ca), cb) in out[..main]
        .chunks_exact_mut(LANES)
        .zip(a[..main].chunks_exact(LANES))
        .zip(b[..main].chunks_exact(LANES))
    {
        co[0] = ca[0] - cb[0];
        co[1] = ca[1] - cb[1];
        co[2] = ca[2] - cb[2];
        co[3] = ca[3] - cb[3];
        co[4] = ca[4] - cb[4];
        co[5] = ca[5] - cb[5];
        co[6] = ca[6] - cb[6];
        co[7] = ca[7] - cb[7];
    }
    for ((o, x), y) in out[main..].iter_mut().zip(&a[main..]).zip(&b[main..]) {
        *o = x - y;
    }
    Ok(())
}

/// Element-wise `a - b` into a fresh vector (thin wrapper over [`sub_into`]).
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let mut out = vec![0.0; a.len().min(b.len())];
    sub_into(a, b, &mut out)?;
    Ok(out)
}

/// Squared ℓ2 norm.
///
/// Same eight-lane accumulator structure and fixed reduction order as
/// [`dot_unchecked`] (see the module docs).
#[inline]
pub fn l2_norm_sq(v: &[f64]) -> f64 {
    let n = v.len();
    let main = n - n % LANES;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0_f64, 0.0_f64, 0.0_f64, 0.0_f64);
    let (mut s4, mut s5, mut s6, mut s7) = (0.0_f64, 0.0_f64, 0.0_f64, 0.0_f64);
    for c in v[..main].chunks_exact(LANES) {
        s0 += c[0] * c[0];
        s1 += c[1] * c[1];
        s2 += c[2] * c[2];
        s3 += c[3] * c[3];
        s4 += c[4] * c[4];
        s5 += c[5] * c[5];
        s6 += c[6] * c[6];
        s7 += c[7] * c[7];
    }
    let mut tail = 0.0_f64;
    for x in &v[main..] {
        tail += x * x;
    }
    (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail
}

/// ℓ2 (Euclidean) norm.
#[inline]
pub fn l2_norm(v: &[f64]) -> f64 {
    l2_norm_sq(v).sqrt()
}

/// ℓ1 norm (sum of absolute values).
#[inline]
pub fn l1_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// ℓ∞ norm (maximum absolute value); `0.0` for the empty slice.
#[inline]
pub fn linf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Scales `v` in place to unit ℓ2 length.
///
/// Vectors with norm below `f64::EPSILON` are left untouched (normalising a
/// zero embedding row is a no-op rather than a NaN factory).
pub fn normalize(v: &mut [f64]) {
    let n = l2_norm(v);
    if n > f64::EPSILON {
        scale(1.0 / n, v);
    }
}

/// Clips `v` in place so that its ℓ2 norm is at most `max_norm`, i.e. the
/// DP-SGD projection `v ← v / max(1, ‖v‖₂ / C)`.
///
/// Returns the norm *before* clipping so callers can log clipping rates.
///
/// # Errors
/// Returns [`LinalgError::InvalidArgument`] if `max_norm` is not a positive
/// finite number, and [`LinalgError::NonFinite`] if `v` contains a
/// non-finite entry (a poisoned gradient must not silently enter the
/// Gaussian sum query).
pub fn clip_to_norm(v: &mut [f64], max_norm: f64) -> Result<f64, LinalgError> {
    if !(max_norm.is_finite() && max_norm > 0.0) {
        return Err(LinalgError::InvalidArgument {
            what: "max_norm must be finite and > 0",
        });
    }
    let n = l2_norm(v);
    if !n.is_finite() {
        return Err(LinalgError::NonFinite { op: "clip_to_norm" });
    }
    if n > max_norm {
        scale(max_norm / n, v);
    }
    Ok(n)
}

/// Cosine similarity between two vectors; `0.0` if either has zero norm.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if the lengths differ.
pub fn cosine(a: &[f64], b: &[f64]) -> Result<f64, LinalgError> {
    let d = dot(a, b)?;
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        return Ok(0.0);
    }
    Ok(d / (na * nb))
}

/// Arithmetic mean of the slice; `0.0` for the empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Numerically-stable softmax over `logits`, written into `out`.
///
/// Uses the max-shift trick so that large logits do not overflow `exp`.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if lengths differ and
/// [`LinalgError::InvalidArgument`] for empty input.
pub fn softmax_into(logits: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
    if logits.is_empty() {
        return Err(LinalgError::InvalidArgument {
            what: "softmax of empty slice",
        });
    }
    if logits.len() != out.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "softmax_into",
            left: logits.len(),
            right: out.len(),
        });
    }
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for (o, &l) in out.iter_mut().zip(logits) {
        let e = (l - max).exp();
        *o = e;
        sum += e;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
    Ok(())
}

/// Numerically-stable `log(sum(exp(xs)))`.
///
/// Returns `f64::NEG_INFINITY` for an empty slice (the log of an empty sum).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|x| (x - max).exp()).sum();
    max + s.ln()
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, saturating cleanly at the tails.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Fused `(σ(x), log σ(x))` sharing one exponential.
///
/// Both quantities reduce to `z = e^{-|x|}`; computing them together halves
/// the transcendental count of the SGNS positive-example step. The returned
/// values are bit-identical to evaluating `sigmoid(x)` and the stable
/// `log σ(x) = −log(1 + e^{−x})` separately, since the per-branch
/// expressions are the same.
#[inline]
pub fn sigmoid_and_ln_sigmoid(x: f64) -> (f64, f64) {
    if x >= 0.0 {
        let z = (-x).exp();
        (1.0 / (1.0 + z), -z.ln_1p())
    } else {
        let z = x.exp();
        (z / (1.0 + z), x - z.ln_1p())
    }
}

/// Fused `(σ(x), log σ(−x))` sharing one exponential.
///
/// The SGNS negative-example step needs the gradient coefficient `σ(x)` and
/// the loss term `log σ(−x)`; both reduce to `z = e^{-|x|}`. Bit-identical
/// to the unfused pair: at `x = 0` the `−x − ln_1p(z)` form evaluates to
/// `−0.0 − ln 2 = −ln 2`, matching `−ln_1p(e^{0})` exactly.
#[inline]
pub fn sigmoid_and_ln_sigmoid_neg(x: f64) -> (f64, f64) {
    if x >= 0.0 {
        let z = (-x).exp();
        (1.0 / (1.0 + z), -x - z.ln_1p())
    } else {
        let z = x.exp();
        (z / (1.0 + z), -z.ln_1p())
    }
}

/// Returns `true` iff every element of `v` is finite.
pub fn all_finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap(), 32.0);
    }

    #[test]
    fn dot_rejects_mismatched_lengths() {
        assert!(matches!(
            dot(&[1.0], &[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch { op: "dot", .. })
        ));
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y).unwrap();
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norms_match_known_values() {
        let v = [3.0, 4.0];
        assert_eq!(l2_norm(&v), 5.0);
        assert_eq!(l2_norm_sq(&v), 25.0);
        assert_eq!(l1_norm(&[-1.0, 2.0]), 3.0);
        assert_eq!(linf_norm(&[-7.0, 2.0]), 7.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn normalize_makes_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn clip_shrinks_large_vectors_only() {
        let mut v = vec![3.0, 4.0];
        let before = clip_to_norm(&mut v, 1.0).unwrap();
        assert_eq!(before, 5.0);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-12);

        let mut small = vec![0.1, 0.1];
        let n = l2_norm(&small);
        clip_to_norm(&mut small, 1.0).unwrap();
        assert!(
            (l2_norm(&small) - n).abs() < 1e-12,
            "small vectors untouched"
        );
    }

    #[test]
    fn clip_rejects_bad_bound_and_nan() {
        let mut v = vec![1.0];
        assert!(clip_to_norm(&mut v, 0.0).is_err());
        assert!(clip_to_norm(&mut v, f64::NAN).is_err());
        let mut bad = vec![f64::NAN];
        assert!(matches!(
            clip_to_norm(&mut bad, 1.0),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 3.0]).unwrap().abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn softmax_is_a_distribution_and_order_preserving() {
        let logits = [1.0, 2.0, 3.0];
        let mut p = [0.0; 3];
        softmax_into(&logits, &mut p).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn softmax_survives_huge_logits() {
        let logits = [1000.0, 1000.0];
        let mut p = [0.0; 2];
        softmax_into(&logits, &mut p).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small_inputs() {
        let xs = [0.1, 0.2, 0.3];
        let naive: f64 = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn sigmoid_symmetry_and_saturation() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(800.0) <= 1.0 && sigmoid(800.0) > 0.999);
        assert!(sigmoid(-800.0) >= 0.0 && sigmoid(-800.0) < 1e-3);
    }

    #[test]
    fn fused_sigmoid_pairs_are_bit_identical_to_unfused() {
        // Reference stable log-sigmoid, matching the historical unfused form.
        fn ln_sig(x: f64) -> f64 {
            if x >= 0.0 {
                -(-x).exp().ln_1p()
            } else {
                x - x.exp().ln_1p()
            }
        }
        let xs = [
            0.0, -0.0, 1e-12, -1e-12, 0.3, -0.3, 1.0, -1.0, 7.5, -7.5, 40.0, -40.0, 800.0, -800.0,
        ];
        for &x in &xs {
            let (s, l) = sigmoid_and_ln_sigmoid(x);
            assert_eq!(s.to_bits(), sigmoid(x).to_bits(), "sigmoid at {x}");
            assert_eq!(l.to_bits(), ln_sig(x).to_bits(), "ln_sigmoid at {x}");
            let (sn, ln) = sigmoid_and_ln_sigmoid_neg(x);
            assert_eq!(
                sn.to_bits(),
                sigmoid(x).to_bits(),
                "neg-fused sigmoid at {x}"
            );
            assert_eq!(ln.to_bits(), ln_sig(-x).to_bits(), "ln_sigmoid(-x) at {x}");
        }
    }

    #[test]
    fn mean_and_finiteness() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::INFINITY]));
    }

    #[test]
    fn sub_into_matches_sub_and_validates() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [0.5, 0.25, 0.125, 4.0, -1.0];
        let mut out = vec![9.0; 5];
        sub_into(&a, &b, &mut out).unwrap();
        assert_eq!(out, sub(&a, &b).unwrap());
        assert_eq!(out, vec![0.5, 1.75, 2.875, 0.0, 6.0]);
        let mut short = vec![0.0; 4];
        assert!(sub_into(&a, &b, &mut short).is_err());
        assert!(sub_into(&a, &b[..4], &mut out).is_err());
        assert!(sub(&[1.0], &[1.0, 2.0]).is_err());
    }
}

/// Property tests pinning the unrolled kernels, bit for bit, to naive
/// reference implementations that spell out the same fixed lane structure
/// and reduction order. If a refactor ever changes the order (and thus the
/// result bits of every trained model), these fail rather than letting the
/// change slip through as "just float noise".
#[cfg(test)]
mod reduction_order_props {
    use super::*;
    use proptest::prelude::*;

    /// Reference dot product: eight scalar lanes filled round-robin over the
    /// unrolled prefix, a sequential tail, combined as
    /// `(((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail`.
    fn dot_reference(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let main = n - n % 8;
        let mut lanes = [0.0_f64; 8];
        for i in 0..main {
            lanes[i % 8] += a[i] * b[i];
        }
        let mut tail = 0.0_f64;
        for (x, y) in a[main..].iter().zip(&b[main..]) {
            tail += x * y;
        }
        (((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7])))
            + tail
    }

    fn l2_reference(v: &[f64]) -> f64 {
        let n = v.len();
        let main = n - n % 8;
        let mut lanes = [0.0_f64; 8];
        for (i, &x) in v[..main].iter().enumerate() {
            lanes[i % 8] += x * x;
        }
        let mut tail = 0.0_f64;
        for &x in &v[main..] {
            tail += x * x;
        }
        (((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7])))
            + tail
    }

    /// Deterministic pseudo-random values spanning magnitudes and signs,
    /// derived from a seed so every length in 0..128 gets distinct data.
    fn values(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
                let mag = 10f64.powi((state % 7) as i32 - 3);
                (unit - 0.5) * mag
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn dot_unchecked_is_bitwise_reference(seed in 0u64..1_000_000) {
            for len in 0..128usize {
                let a = values(seed, len);
                let b = values(seed ^ 0xDEAD_BEEF, len);
                let got = dot_unchecked(&a, &b);
                let want = dot_reference(&a, &b);
                prop_assert!(got.to_bits() == want.to_bits(), "dot len={}", len);
            }
        }

        #[test]
        fn l2_norm_sq_is_bitwise_reference(seed in 0u64..1_000_000) {
            for len in 0..128usize {
                let v = values(seed, len);
                prop_assert!(
                    l2_norm_sq(&v).to_bits() == l2_reference(&v).to_bits(),
                    "l2 len={}", len
                );
            }
        }

        #[test]
        fn axpy_is_bitwise_elementwise(seed in 0u64..1_000_000, alpha in -4.0f64..4.0) {
            for len in 0..128usize {
                let x = values(seed, len);
                let mut y = values(seed ^ 0x5A5A, len);
                let want: Vec<f64> = y.iter().zip(&x).map(|(yi, xi)| yi + alpha * xi).collect();
                axpy_unchecked(alpha, &x, &mut y);
                for (g, w) in y.iter().zip(&want) {
                    prop_assert!(g.to_bits() == w.to_bits(), "axpy len={}", len);
                }
            }
        }

        #[test]
        fn scale_and_sub_are_bitwise_elementwise(seed in 0u64..1_000_000, alpha in -4.0f64..4.0) {
            for len in 0..128usize {
                let a = values(seed, len);
                let b = values(seed ^ 0xC0FFEE, len);

                let mut scaled = a.clone();
                scale(alpha, &mut scaled);
                for (g, x) in scaled.iter().zip(&a) {
                    prop_assert!(g.to_bits() == (x * alpha).to_bits(), "scale len={}", len);
                }

                let mut diff = vec![0.0; len];
                sub_into(&a, &b, &mut diff).unwrap();
                for ((g, x), y) in diff.iter().zip(&a).zip(&b) {
                    prop_assert!(g.to_bits() == (x - y).to_bits(), "sub len={}", len);
                }
            }
        }
    }
}
