//! Vector kernels over `f64` slices.
//!
//! These are the hot-path primitives of skip-gram training: dot products
//! between embedding rows, `axpy` accumulation of gradients, ℓ2 norms and the
//! norm clipping at the heart of DP-SGD (Abadi et al. 2016, eq. in §3.1 of
//! the paper's Algorithm 1, line 21).

use crate::error::LinalgError;

/// Dot product of two equal-length slices.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64, LinalgError> {
    if a.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "dot",
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(dot_unchecked(a, b))
}

/// Dot product without a shape check; panics in debug builds on mismatch.
#[inline]
pub fn dot_unchecked(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (the BLAS `axpy` kernel).
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
    if x.len() != y.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "axpy",
            left: x.len(),
            right: y.len(),
        });
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
    Ok(())
}

/// `y *= alpha` in place.
pub fn scale(alpha: f64, y: &mut [f64]) {
    for yi in y {
        *yi *= alpha;
    }
}

/// Element-wise `a - b` into a fresh vector.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "sub",
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x - y).collect())
}

/// Squared ℓ2 norm.
#[inline]
pub fn l2_norm_sq(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

/// ℓ2 (Euclidean) norm.
#[inline]
pub fn l2_norm(v: &[f64]) -> f64 {
    l2_norm_sq(v).sqrt()
}

/// ℓ1 norm (sum of absolute values).
#[inline]
pub fn l1_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// ℓ∞ norm (maximum absolute value); `0.0` for the empty slice.
#[inline]
pub fn linf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Scales `v` in place to unit ℓ2 length.
///
/// Vectors with norm below `f64::EPSILON` are left untouched (normalising a
/// zero embedding row is a no-op rather than a NaN factory).
pub fn normalize(v: &mut [f64]) {
    let n = l2_norm(v);
    if n > f64::EPSILON {
        scale(1.0 / n, v);
    }
}

/// Clips `v` in place so that its ℓ2 norm is at most `max_norm`, i.e. the
/// DP-SGD projection `v ← v / max(1, ‖v‖₂ / C)`.
///
/// Returns the norm *before* clipping so callers can log clipping rates.
///
/// # Errors
/// Returns [`LinalgError::InvalidArgument`] if `max_norm` is not a positive
/// finite number, and [`LinalgError::NonFinite`] if `v` contains a
/// non-finite entry (a poisoned gradient must not silently enter the
/// Gaussian sum query).
pub fn clip_to_norm(v: &mut [f64], max_norm: f64) -> Result<f64, LinalgError> {
    if !(max_norm.is_finite() && max_norm > 0.0) {
        return Err(LinalgError::InvalidArgument {
            what: "max_norm must be finite and > 0",
        });
    }
    let n = l2_norm(v);
    if !n.is_finite() {
        return Err(LinalgError::NonFinite { op: "clip_to_norm" });
    }
    if n > max_norm {
        scale(max_norm / n, v);
    }
    Ok(n)
}

/// Cosine similarity between two vectors; `0.0` if either has zero norm.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if the lengths differ.
pub fn cosine(a: &[f64], b: &[f64]) -> Result<f64, LinalgError> {
    let d = dot(a, b)?;
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        return Ok(0.0);
    }
    Ok(d / (na * nb))
}

/// Arithmetic mean of the slice; `0.0` for the empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Numerically-stable softmax over `logits`, written into `out`.
///
/// Uses the max-shift trick so that large logits do not overflow `exp`.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if lengths differ and
/// [`LinalgError::InvalidArgument`] for empty input.
pub fn softmax_into(logits: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
    if logits.is_empty() {
        return Err(LinalgError::InvalidArgument {
            what: "softmax of empty slice",
        });
    }
    if logits.len() != out.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "softmax_into",
            left: logits.len(),
            right: out.len(),
        });
    }
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for (o, &l) in out.iter_mut().zip(logits) {
        let e = (l - max).exp();
        *o = e;
        sum += e;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
    Ok(())
}

/// Numerically-stable `log(sum(exp(xs)))`.
///
/// Returns `f64::NEG_INFINITY` for an empty slice (the log of an empty sum).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|x| (x - max).exp()).sum();
    max + s.ln()
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, saturating cleanly at the tails.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Returns `true` iff every element of `v` is finite.
pub fn all_finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap(), 32.0);
    }

    #[test]
    fn dot_rejects_mismatched_lengths() {
        assert!(matches!(
            dot(&[1.0], &[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch { op: "dot", .. })
        ));
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y).unwrap();
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norms_match_known_values() {
        let v = [3.0, 4.0];
        assert_eq!(l2_norm(&v), 5.0);
        assert_eq!(l2_norm_sq(&v), 25.0);
        assert_eq!(l1_norm(&[-1.0, 2.0]), 3.0);
        assert_eq!(linf_norm(&[-7.0, 2.0]), 7.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn normalize_makes_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn clip_shrinks_large_vectors_only() {
        let mut v = vec![3.0, 4.0];
        let before = clip_to_norm(&mut v, 1.0).unwrap();
        assert_eq!(before, 5.0);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-12);

        let mut small = vec![0.1, 0.1];
        let n = l2_norm(&small);
        clip_to_norm(&mut small, 1.0).unwrap();
        assert!(
            (l2_norm(&small) - n).abs() < 1e-12,
            "small vectors untouched"
        );
    }

    #[test]
    fn clip_rejects_bad_bound_and_nan() {
        let mut v = vec![1.0];
        assert!(clip_to_norm(&mut v, 0.0).is_err());
        assert!(clip_to_norm(&mut v, f64::NAN).is_err());
        let mut bad = vec![f64::NAN];
        assert!(matches!(
            clip_to_norm(&mut bad, 1.0),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 3.0]).unwrap().abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn softmax_is_a_distribution_and_order_preserving() {
        let logits = [1.0, 2.0, 3.0];
        let mut p = [0.0; 3];
        softmax_into(&logits, &mut p).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn softmax_survives_huge_logits() {
        let logits = [1000.0, 1000.0];
        let mut p = [0.0; 2];
        softmax_into(&logits, &mut p).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small_inputs() {
        let xs = [0.1, 0.2, 0.3];
        let naive: f64 = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn sigmoid_symmetry_and_saturation() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(800.0) <= 1.0 && sigmoid(800.0) > 0.999);
        assert!(sigmoid(-800.0) >= 0.0 && sigmoid(-800.0) < 1e-3);
    }

    #[test]
    fn mean_and_finiteness() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::INFINITY]));
    }
}
