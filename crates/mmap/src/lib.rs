//! Read-only memory-mapped files for zero-copy model snapshot loading.
//!
//! This crate is deliberately tiny and is the **only** crate in the
//! workspace that contains `unsafe` code (everything else forbids it at the
//! workspace level). It exposes two types:
//!
//! - [`Mmap`]: a read-only, private mapping of a whole file, created through
//!   a two-symbol `extern "C"` shim (`mmap`/`munmap`) so no external crate
//!   is needed. On non-Unix targets [`Mmap::map`] returns an error and
//!   callers fall back to reading the file into an owned buffer — the PLPS
//!   reader asserts the two paths bit-identical.
//! - [`MappedSlice`]: a checked `&[f64]` view into an `Arc<Mmap>`. The
//!   constructor validates bounds, 8-byte alignment, and that the target is
//!   little-endian (PLPS bodies are little-endian f64, so on a big-endian
//!   host a mapped view would reinterpret bytes incorrectly; such hosts must
//!   use the owned decode path instead).
//!
//! Safety argument, concentrated here so dependents stay `forbid(unsafe)`:
//! the mapping is `PROT_READ` + `MAP_PRIVATE`, so the kernel guarantees the
//! pages are immutable through this mapping; `MappedSlice` holds an
//! `Arc<Mmap>` so the mapping outlives every view; alignment and bounds are
//! validated eagerly at construction. A file truncated by another process
//! after mapping could still fault — the snapshot publishing protocol never
//! truncates live generation files (writers publish via `rename(2)`), which
//! is documented as part of the PLPS contract in DESIGN.md §17.

use std::fmt;
use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::Arc;

#[cfg(unix)]
mod sys {
    //! The two-symbol libc shim. Constants match Linux and the BSDs for the
    //! flags we use (`PROT_READ = 1`, `MAP_PRIVATE = 2`).
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    /// `MAP_FAILED` is `(void *)-1`.
    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-only, privately mapped view of an entire file.
///
/// Dereferences to `&[u8]`. Unmapped on drop. Cheap to share through an
/// [`Arc`]; [`MappedSlice`] does exactly that.
pub struct Mmap {
    /// Base address of the mapping; dangling (and never passed to
    /// `munmap`) when `len == 0`.
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime, so
// shared references to it are valid from any thread, and the raw pointer is
// only freed in `Drop` when the last owner goes away.
unsafe impl Send for Mmap {}
// SAFETY: see above — no interior mutability, the pages never change.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only in its entirety.
    ///
    /// # Errors
    /// Any I/O error opening or stat-ing the file, a failed `mmap(2)`, or —
    /// on non-Unix targets — an `Unsupported` error so callers can fall back
    /// to an owned read (`std::fs::read`).
    pub fn map(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        Self::map_file(&file, len)
    }

    #[cfg(unix)]
    fn map_file(file: &File, len: usize) -> io::Result<Self> {
        use std::os::fd::AsRawFd;

        if len == 0 {
            // mmap(2) rejects zero-length mappings; model an empty file as
            // an empty slice with a dangling, never-unmapped base pointer.
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        // SAFETY: fd is a valid open file descriptor for the duration of
        // the call, `len` is the file's current size, and we request a
        // read-only private mapping at a kernel-chosen address.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    #[cfg(not(unix))]
    fn map_file(_file: &File, _len: usize) -> io::Result<Self> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap is only available on unix targets; use the owned read fallback",
        ))
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: `ptr` points at `len` readable, immutable bytes for the
        // lifetime of `self` (empty case uses a dangling-but-aligned pointer
        // with len 0, which `from_raw_parts` permits).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            // SAFETY: `ptr`/`len` came from a successful mmap with exactly
            // this length and have not been unmapped before.
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

/// Why a `&[f64]` view could not be built over a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// The requested byte range does not lie within the mapping.
    OutOfBounds,
    /// The view's base address is not 8-byte aligned.
    Misaligned,
    /// The target is big-endian; little-endian f64 bodies cannot be
    /// reinterpreted in place there.
    BigEndianHost,
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::OutOfBounds => f.write_str("mapped view out of bounds"),
            ViewError::Misaligned => f.write_str("mapped view not 8-byte aligned"),
            ViewError::BigEndianHost => {
                f.write_str("little-endian mapped view unsupported on big-endian host")
            }
        }
    }
}

impl std::error::Error for ViewError {}

/// A validated, cheaply clonable `&[f64]` window into a shared [`Mmap`].
///
/// Holding the `Arc<Mmap>` keeps the mapping alive for as long as any view
/// exists, so [`MappedSlice::as_slice`] can safely hand out `&[f64]` tied to
/// `&self`.
#[derive(Clone)]
pub struct MappedSlice {
    map: Arc<Mmap>,
    /// Byte offset of the first element inside the mapping.
    byte_offset: usize,
    /// Number of `f64` elements.
    len: usize,
}

impl MappedSlice {
    /// Builds a view of `len` f64 values starting `byte_offset` bytes into
    /// the mapping.
    ///
    /// # Errors
    /// [`ViewError::OutOfBounds`] if the byte range exceeds the mapping,
    /// [`ViewError::Misaligned`] if the base address is not 8-byte aligned
    /// (mmap bases are page-aligned, so any offset that is a multiple of 8
    /// is fine), and [`ViewError::BigEndianHost`] on big-endian targets.
    pub fn new(map: Arc<Mmap>, byte_offset: usize, len: usize) -> Result<Self, ViewError> {
        if cfg!(target_endian = "big") {
            return Err(ViewError::BigEndianHost);
        }
        let byte_len = len
            .checked_mul(std::mem::size_of::<f64>())
            .ok_or(ViewError::OutOfBounds)?;
        let end = byte_offset
            .checked_add(byte_len)
            .ok_or(ViewError::OutOfBounds)?;
        if end > map.len() {
            return Err(ViewError::OutOfBounds);
        }
        let base = map.as_bytes().as_ptr() as usize + byte_offset;
        if !base.is_multiple_of(std::mem::align_of::<f64>()) {
            return Err(ViewError::Misaligned);
        }
        Ok(MappedSlice {
            map,
            byte_offset,
            len,
        })
    }

    /// The elements, reinterpreted in place — no copy.
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: the constructor proved the byte range is in bounds and
        // 8-byte aligned on a little-endian host; the mapping is immutable
        // and outlives `self` via the Arc. Every f64 bit pattern is a valid
        // value (NaNs included), so reinterpretation cannot produce UB.
        unsafe {
            std::slice::from_raw_parts(
                self.map.as_bytes().as_ptr().add(self.byte_offset) as *const f64,
                self.len,
            )
        }
    }

    /// Number of `f64` elements in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Debug for MappedSlice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedSlice")
            .field("byte_offset", &self.byte_offset)
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("plp_mmap_test_{}_{name}", std::process::id()))
    }

    #[test]
    fn map_matches_owned_read() {
        let path = temp_path("roundtrip");
        let payload: Vec<u8> = (0..=255u8).cycle().take(12345).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();

        let map = Mmap::map(&path).expect("mmap should succeed on unix CI");
        assert_eq!(map.as_bytes(), payload.as_slice());
        assert_eq!(&map[..4], &payload[..4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_slice_reads_f64_bit_identical() {
        let path = temp_path("f64s");
        let values = [1.5f64, -2.25, f64::MIN_POSITIVE, 1e300, -0.0];
        let mut bytes = vec![0u8; 16]; // an aligned 16-byte prefix
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&bytes)
            .unwrap();

        let map = Arc::new(Mmap::map(&path).unwrap());
        let view = MappedSlice::new(map, 16, values.len()).unwrap();
        let got = view.as_slice();
        assert_eq!(got.len(), values.len());
        for (a, b) in got.iter().zip(values.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn view_bounds_and_alignment_are_enforced() {
        let path = temp_path("bounds");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[0u8; 64])
            .unwrap();
        let map = Arc::new(Mmap::map(&path).unwrap());

        assert_eq!(
            MappedSlice::new(map.clone(), 0, 9).unwrap_err(),
            ViewError::OutOfBounds
        );
        assert_eq!(
            MappedSlice::new(map.clone(), 4, 1).unwrap_err(),
            ViewError::Misaligned
        );
        assert!(MappedSlice::new(map.clone(), 56, 1).is_ok());
        assert_eq!(
            MappedSlice::new(map, 64, 1).unwrap_err(),
            ViewError::OutOfBounds
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clones_share_the_mapping() {
        let path = temp_path("clone");
        let bytes: Vec<u8> = 7f64.to_le_bytes().to_vec();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&bytes)
            .unwrap();
        let view = MappedSlice::new(Arc::new(Mmap::map(&path).unwrap()), 0, 1).unwrap();
        let clone = view.clone();
        drop(view);
        assert_eq!(clone.as_slice(), &[7.0]);
        std::fs::remove_file(&path).ok();
    }
}
