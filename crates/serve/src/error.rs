//! Error types for the serving layer.

use std::fmt;

use plp_linalg::LinalgError;
use plp_model::ModelError;

/// Errors produced by engine construction or query serving.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// An engine configuration knob was out of domain.
    BadConfig {
        /// Name of the knob.
        name: &'static str,
        /// Description of the legal domain.
        expected: &'static str,
    },
    /// A query in the submitted batch was invalid (empty history or a
    /// token outside the vocabulary). The whole call is rejected before
    /// any scoring so partial results never escape.
    BadQuery {
        /// Position of the offending query in the submitted slice.
        index: usize,
        /// The underlying validation error.
        source: ModelError,
    },
    /// An underlying model error (a scoring bug, not a bad query).
    Model(ModelError),
    /// An underlying linear-algebra error.
    Linalg(LinalgError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadConfig { name, expected } => {
                write!(f, "bad serve config: {name} must be {expected}")
            }
            ServeError::BadQuery { index, source } => {
                write!(f, "bad query at index {index}: {source}")
            }
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Linalg(e) => write!(f, "linalg error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}

impl From<LinalgError> for ServeError {
    fn from(e: LinalgError) -> Self {
        ServeError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ServeError::BadConfig {
            name: "max_batch",
            expected: ">= 1",
        };
        assert!(e.to_string().contains("max_batch"));
        let q = ServeError::BadQuery {
            index: 3,
            source: ModelError::BadConfig {
                name: "recent",
                expected: "non-empty",
            },
        };
        assert!(q.to_string().contains("index 3"));
        let m: ServeError = ModelError::ShapeMismatch { what: "x" }.into();
        assert!(m.to_string().contains("shape"));
        let l: ServeError = LinalgError::NonFinite { op: "dot" }.into();
        assert!(l.to_string().contains("dot"));
    }
}
