//! Zero-downtime hot-swap serving over PLPS model generations.
//!
//! A training/publishing process drops `gen-<id>.plps` deployment bundles
//! ([`plp_model::plps::write_deployable`]) into a directory and atomically
//! renames a one-line `CURRENT` pointer file at it ([`publish_generation`]).
//! On the serving side a [`GenerationWatcher`] polls the pointer, and for
//! every new generation it:
//!
//! 1. opens the bundle zero-copy ([`plp_model::plps::PlpsSnapshot::open`] —
//!    mmap with an owned-read fallback),
//! 2. validates it off the query path (header + body CRCs + finiteness
//!    sweep) — a corrupt or torn candidate is *rejected* with a typed
//!    reason and the old generation keeps serving,
//! 3. builds the next generation's full serving state (IVF index, int8
//!    quantisation, fresh generation-keyed cache) in the watcher thread,
//! 4. swaps an `Arc<ModelGeneration>` into the [`HotSwapServer`] under a
//!    write lock held for the duration of one pointer store.
//!
//! Queries pin their generation: [`HotSwapServer::serve_pinned`] clones the
//! current `Arc` *before* scoring, so in-flight batches complete on the
//! generation they started on — a swap never drops or tears a batch, it
//! only changes which generation the *next* batch pins. Cached results
//! cannot leak across generations because every cache key carries the
//! generation id ([`crate::query::Query::key_for_generation`]) and each
//! generation owns a fresh cache.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use plp_linalg::Matrix;
use plp_model::plps::{self, PlpsSnapshot};
use plp_model::ModelError;
use plp_obs::Observer;

use crate::engine::{BatchEngine, ServeConfig};
use crate::error::ServeError;
use crate::query::Query;

/// Name of the pointer file naming the live generation inside a publish
/// directory.
pub const CURRENT_POINTER: &str = "CURRENT";

/// Canonical file name of a generation bundle: zero-padded so that
/// lexicographic order is generation order.
pub fn generation_file_name(generation: u64) -> String {
    format!("gen-{generation:020}.plps")
}

/// Publishes a deployment bundle: writes `gen-<id>.plps` (atomic tmp +
/// rename inside [`plps::write_deployable`]) and *then* atomically renames
/// the `CURRENT` pointer at it. Readers therefore always observe either
/// the old complete generation or the new complete one — never a torn
/// file, because a pointed-to bundle is complete before the pointer moves
/// and is never rewritten in place.
///
/// Pass the already-normalised serving embedding
/// ([`plp_model::Recommender::embedding`]); its bytes are written verbatim
/// so mapped readers are bit-identical to the publisher.
///
/// # Errors
/// [`ServeError::Model`] wrapping an I/O failure.
pub fn publish_generation(
    dir: &Path,
    embedding: &Matrix,
    generation: u64,
) -> Result<PathBuf, ServeError> {
    let io_err = |what: &Path, e: std::io::Error| {
        ServeError::Model(ModelError::Io {
            message: format!("{}: {e}", what.display()),
        })
    };
    let name = generation_file_name(generation);
    let bundle = dir.join(&name);
    plps::write_deployable(&bundle, embedding, generation)?;
    let tmp = dir.join(format!("{CURRENT_POINTER}.tmp"));
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(name.as_bytes()).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    let pointer = dir.join(CURRENT_POINTER);
    fs::rename(&tmp, &pointer).map_err(|e| io_err(&pointer, e))?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(bundle)
}

/// Reads the `CURRENT` pointer of a publish directory.
///
/// Returns `Ok(None)` when no pointer has been published yet.
///
/// # Errors
/// [`ServeError::Model`] wrapping an I/O failure other than the pointer
/// being absent.
pub fn read_current(dir: &Path) -> Result<Option<PathBuf>, ServeError> {
    let pointer = dir.join(CURRENT_POINTER);
    match fs::read_to_string(&pointer) {
        Ok(name) => {
            let name = name.trim();
            if name.is_empty() {
                Ok(None)
            } else {
                Ok(Some(dir.join(name)))
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(ServeError::Model(ModelError::Io {
            message: format!("{}: {e}", pointer.display()),
        })),
    }
}

/// One fully-built serving generation: the engine (recommender + IVF/quant
/// index + generation-keyed cache) plus provenance.
pub struct ModelGeneration {
    engine: BatchEngine,
    mapped: bool,
    path: PathBuf,
}

impl ModelGeneration {
    /// Loads and fully validates the bundle at `path`, then builds the
    /// serving engine for it (index construction happens here, off the
    /// query path). The snapshot is `validate()`d — body CRCs and a
    /// finiteness sweep — before any of its bytes reach an engine.
    ///
    /// # Errors
    /// [`ServeError::Model`] on open/validation failure (typed
    /// [`plp_model::SnapshotError`] inside for corrupt files), or any
    /// engine-construction error for this config.
    pub fn load(path: &Path, cfg: ServeConfig) -> Result<Self, ServeError> {
        Self::load_with_observer(path, cfg, Observer::disabled())
    }

    /// As [`Self::load`], recording the generation engine's metrics into
    /// `obs`.
    ///
    /// # Errors
    /// As [`Self::load`].
    pub fn load_with_observer(
        path: &Path,
        cfg: ServeConfig,
        obs: Observer,
    ) -> Result<Self, ServeError> {
        let snap = PlpsSnapshot::open(path)?;
        snap.validate()?;
        let mapped = snap.is_mapped();
        let rec = snap.recommender()?;
        let engine = BatchEngine::with_observer_for_generation(rec, cfg, obs, snap.generation())?;
        Ok(ModelGeneration {
            engine,
            mapped,
            path: path.to_path_buf(),
        })
    }

    /// Wraps an already-built engine (tests / non-PLPS bootstrap).
    pub fn from_engine(engine: BatchEngine) -> Self {
        ModelGeneration {
            engine,
            mapped: false,
            path: PathBuf::new(),
        }
    }

    /// The generation id (stamped from the bundle header).
    pub fn id(&self) -> u64 {
        self.engine.generation()
    }

    /// `true` when the generation's embedding is served straight off a
    /// memory mapping (zero-copy).
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// The bundle file this generation was loaded from (empty for
    /// [`Self::from_engine`]).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The serving engine of this generation.
    pub fn engine(&self) -> &BatchEngine {
        &self.engine
    }
}

/// The live-traffic face of hot-swap serving: holds the current
/// [`ModelGeneration`] behind an `RwLock<Arc<_>>`. Queries clone the `Arc`
/// (one read-lock acquisition, no allocation) and score outside the lock,
/// so a concurrent swap neither blocks in-flight batches nor is blocked by
/// them beyond the pointer store itself.
pub struct HotSwapServer {
    current: RwLock<Arc<ModelGeneration>>,
}

impl HotSwapServer {
    /// Starts serving on `initial`.
    pub fn new(initial: ModelGeneration) -> Self {
        HotSwapServer {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current generation, pinned: the returned `Arc` keeps the whole
    /// generation (mapping included) alive even if a swap retires it.
    pub fn current(&self) -> Arc<ModelGeneration> {
        Arc::clone(&self.current.read().expect("generation lock poisoned"))
    }

    /// The id of the currently-serving generation.
    pub fn generation(&self) -> u64 {
        self.current().id()
    }

    /// Answers a batch on the current generation, returning the id of the
    /// generation that actually answered alongside the results. The
    /// generation is pinned before scoring, so every result in the batch
    /// comes from that one generation even if a swap lands mid-batch.
    ///
    /// # Errors
    /// As [`BatchEngine::serve`].
    pub fn serve_pinned(&self, queries: &[Query]) -> Result<(u64, Vec<Vec<usize>>), ServeError> {
        let generation = self.current();
        let results = generation.engine().serve(queries)?;
        Ok((generation.id(), results))
    }

    /// Atomically replaces the serving generation, returning the id of the
    /// one it retired. In-flight batches holding the old `Arc` finish on
    /// it; its resources (cache, index, mapping) free once the last pin
    /// drops.
    pub fn swap(&self, next: ModelGeneration) -> u64 {
        let next = Arc::new(next);
        let mut slot = self.current.write().expect("generation lock poisoned");
        let old = slot.id();
        *slot = next;
        old
    }
}

/// The outcome of one watcher poll.
#[derive(Debug, Clone, PartialEq)]
pub enum SwapOutcome {
    /// No `CURRENT` pointer exists yet.
    NoPointer,
    /// The pointer names the generation already being served.
    Unchanged,
    /// A new generation was validated, built and swapped in.
    Swapped {
        /// Retired generation id.
        from: u64,
        /// Now-serving generation id.
        to: u64,
        /// Whether the new generation serves off a memory mapping.
        mapped: bool,
        /// Wall-clock milliseconds spent validating the candidate and
        /// building its engine (off the query path).
        build_ms: f64,
    },
    /// The candidate failed validation or loading; the previous generation
    /// keeps serving.
    Rejected {
        /// File the candidate was read from (as named by the pointer).
        file: String,
        /// Machine-readable reason class (e.g. `bad_crc`, `truncated_body`,
        /// `io`, `non_finite` — [`plp_model::SnapshotError::kind`] for
        /// snapshot damage).
        kind: String,
        /// Human-readable reason.
        reason: String,
    },
}

/// Classifies a candidate-load failure into the machine-readable reason
/// reported on [`SwapOutcome::Rejected`].
fn reject_kind(err: &ServeError) -> &'static str {
    match err {
        ServeError::Model(ModelError::Snapshot(e)) => e.kind(),
        ServeError::Model(ModelError::Io { .. }) => "io",
        ServeError::Model(ModelError::NonFinite { .. }) => "non_finite",
        ServeError::Model(_) => "model",
        _ => "other",
    }
}

/// Polls a publish directory's `CURRENT` pointer and hot-swaps a
/// [`HotSwapServer`] onto each new generation after validating and
/// building it off the query path. Corrupt, torn or truncated candidates
/// are rejected (typed) and the old generation keeps serving.
pub struct GenerationWatcher {
    dir: PathBuf,
    cfg: ServeConfig,
    server: Arc<HotSwapServer>,
    obs: Observer,
}

impl GenerationWatcher {
    /// A watcher over `dir` building generations with `cfg`, swapping
    /// `server`, reporting swap/reject events and counters into `obs`.
    pub fn new(dir: &Path, cfg: ServeConfig, server: Arc<HotSwapServer>, obs: Observer) -> Self {
        GenerationWatcher {
            dir: dir.to_path_buf(),
            cfg,
            server,
            obs,
        }
    }

    /// One poll: read the pointer, and if it names a generation other than
    /// the serving one, validate + build + swap. Never panics on damaged
    /// input; every failure becomes [`SwapOutcome::Rejected`].
    pub fn poll_once(&self) -> SwapOutcome {
        let candidate = match read_current(&self.dir) {
            Ok(Some(path)) => path,
            Ok(None) => return SwapOutcome::NoPointer,
            Err(e) => {
                return self.reject(CURRENT_POINTER.to_string(), &e);
            }
        };
        let file = candidate
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| candidate.display().to_string());
        // Cheap pre-check: an O(header) open is enough to read the id and
        // skip rebuilding the generation we already serve.
        let start = Instant::now();
        match PlpsSnapshot::open(&candidate) {
            Ok(snap) if snap.generation() == self.server.generation() => {
                return SwapOutcome::Unchanged;
            }
            Ok(_) => {}
            Err(e) => return self.reject(file, &ServeError::Model(e)),
        }
        match ModelGeneration::load(&candidate, self.cfg) {
            Ok(next) => {
                let build_ms = start.elapsed().as_secs_f64() * 1e3;
                let to = next.id();
                let mapped = next.is_mapped();
                let from = self.server.swap(next);
                self.obs.counter("plp_serve_swaps_total").inc();
                self.obs.gauge("plp_serve_generation").set(to as f64);
                self.obs.emit(
                    "serve_generation_swapped",
                    serde_json::json!({
                        "from": from,
                        "to": to,
                        "file": file,
                        "mapped": mapped,
                        "build_ms": build_ms,
                    }),
                );
                SwapOutcome::Swapped {
                    from,
                    to,
                    mapped,
                    build_ms,
                }
            }
            Err(e) => self.reject(file, &e),
        }
    }

    fn reject(&self, file: String, err: &ServeError) -> SwapOutcome {
        let kind = reject_kind(err).to_string();
        let reason = err.to_string();
        self.obs.counter("plp_serve_rejects_total").inc();
        self.obs.emit(
            "serve_generation_rejected",
            serde_json::json!({
                "file": file,
                "kind": kind,
                "reason": reason,
            }),
        );
        SwapOutcome::Rejected { file, kind, reason }
    }

    /// Moves the watcher onto a background thread polling every
    /// `interval`. Stop (and get the watcher back) via
    /// [`WatcherHandle::stop`].
    pub fn spawn(self, interval: Duration) -> WatcherHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("plp-gen-watcher".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    self.poll_once();
                    std::thread::sleep(interval);
                }
                self
            })
            .expect("spawn generation watcher");
        WatcherHandle { stop, join }
    }
}

/// Handle to a spawned [`GenerationWatcher`] thread.
pub struct WatcherHandle {
    stop: Arc<AtomicBool>,
    join: JoinHandle<GenerationWatcher>,
}

impl WatcherHandle {
    /// Signals the watcher thread to exit and joins it, returning the
    /// watcher for further synchronous polls.
    pub fn stop(self) -> GenerationWatcher {
        self.stop.store(true, Ordering::Relaxed);
        self.join.join().expect("generation watcher panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_model::{ModelParams, Recommender};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plp_swap_test_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn recommender(vocab: usize, dim: usize, seed: u64) -> Recommender {
        let mut rng = StdRng::seed_from_u64(seed);
        Recommender::new(&ModelParams::init(&mut rng, vocab, dim).unwrap())
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            max_batch: 8,
            workers: 2,
            cache_capacity: 64,
            ann: None,
        }
    }

    #[test]
    fn publish_then_watch_swaps_and_pins() {
        let dir = tmp_dir("swap");
        let rec0 = recommender(12, 4, 1);
        let rec1 = recommender(12, 4, 2);
        publish_generation(&dir, rec0.embedding(), 1).unwrap();

        let initial = ModelGeneration::load(&read_current(&dir).unwrap().unwrap(), cfg()).unwrap();
        assert_eq!(initial.id(), 1);
        let server = Arc::new(HotSwapServer::new(initial));
        let watcher =
            GenerationWatcher::new(&dir, cfg(), Arc::clone(&server), Observer::disabled());
        assert_eq!(watcher.poll_once(), SwapOutcome::Unchanged);

        let queries = vec![Query::new(vec![0, 3], 4), Query::new(vec![5], 3)];
        let (gen, before) = server.serve_pinned(&queries).unwrap();
        assert_eq!(gen, 1);
        assert_eq!(before[0], rec0.recommend(&[0, 3], 4).unwrap());

        publish_generation(&dir, rec1.embedding(), 2).unwrap();
        match watcher.poll_once() {
            SwapOutcome::Swapped {
                from, to, build_ms, ..
            } => {
                assert_eq!((from, to), (1, 2));
                assert!(build_ms >= 0.0);
            }
            other => panic!("expected swap, got {other:?}"),
        }
        let (gen, after) = server.serve_pinned(&queries).unwrap();
        assert_eq!(gen, 2);
        assert_eq!(after[0], rec1.recommend(&[0, 3], 4).unwrap());
        assert_eq!(after[1], rec1.recommend(&[5], 3).unwrap());
    }

    #[test]
    fn in_flight_pin_survives_swap() {
        let dir = tmp_dir("pin");
        let rec0 = recommender(10, 3, 3);
        let rec1 = recommender(10, 3, 4);
        publish_generation(&dir, rec0.embedding(), 5).unwrap();
        let server = Arc::new(HotSwapServer::new(
            ModelGeneration::load(&dir.join(generation_file_name(5)), cfg()).unwrap(),
        ));
        // Pin generation 5, then swap to 6 "mid-batch".
        let pinned = server.current();
        publish_generation(&dir, rec1.embedding(), 6).unwrap();
        let watcher =
            GenerationWatcher::new(&dir, cfg(), Arc::clone(&server), Observer::disabled());
        assert!(matches!(watcher.poll_once(), SwapOutcome::Swapped { .. }));
        // The pinned engine still answers with the old generation's model.
        let q = vec![Query::new(vec![2, 7], 3)];
        let old = pinned.engine().serve(&q).unwrap();
        assert_eq!(old[0], rec0.recommend(&[2, 7], 3).unwrap());
        assert_eq!(pinned.id(), 5);
        assert_eq!(server.generation(), 6);
    }

    #[test]
    fn missing_pointer_and_missing_target_are_safe() {
        let dir = tmp_dir("missing");
        let rec = recommender(8, 3, 5);
        let server = Arc::new(HotSwapServer::new(ModelGeneration::from_engine(
            BatchEngine::new(rec, cfg()).unwrap(),
        )));
        let watcher =
            GenerationWatcher::new(&dir, cfg(), Arc::clone(&server), Observer::disabled());
        assert_eq!(watcher.poll_once(), SwapOutcome::NoPointer);
        // Pointer names a file that does not exist (torn publish).
        fs::write(dir.join(CURRENT_POINTER), "gen-nope.plps").unwrap();
        match watcher.poll_once() {
            SwapOutcome::Rejected { kind, .. } => assert_eq!(kind, "io"),
            other => panic!("expected reject, got {other:?}"),
        }
        assert_eq!(server.generation(), 0);
    }

    #[test]
    fn corrupt_candidate_is_rejected_with_typed_kind_and_old_gen_serves() {
        let dir = tmp_dir("corrupt");
        let rec0 = recommender(9, 4, 6);
        let rec1 = recommender(9, 4, 7);
        publish_generation(&dir, rec0.embedding(), 1).unwrap();
        let server = Arc::new(HotSwapServer::new(
            ModelGeneration::load(&dir.join(generation_file_name(1)), cfg()).unwrap(),
        ));
        let obs = Observer::new("swap-test");
        let watcher = GenerationWatcher::new(&dir, cfg(), Arc::clone(&server), obs.clone());

        // Publish gen 2, then flip a body bit (the pointer already moved,
        // simulating corruption of the published file itself).
        let path = publish_generation(&dir, rec1.embedding(), 2).unwrap();
        let mut raw = fs::read(&path).unwrap();
        let at = raw.len() - 5;
        raw[at] ^= 0x20;
        fs::write(&path, &raw).unwrap();
        match watcher.poll_once() {
            SwapOutcome::Rejected { kind, file, .. } => {
                assert_eq!(kind, "bad_crc");
                assert_eq!(file, generation_file_name(2));
            }
            other => panic!("expected reject, got {other:?}"),
        }
        // Still serving generation 1, bit-identically.
        let (gen, res) = server.serve_pinned(&[Query::new(vec![1], 3)]).unwrap();
        assert_eq!(gen, 1);
        assert_eq!(res[0], rec0.recommend(&[1], 3).unwrap());

        // Repair the file: the same watcher then swaps onto it.
        plps::write_deployable(&path, rec1.embedding(), 2).unwrap();
        assert!(matches!(watcher.poll_once(), SwapOutcome::Swapped { .. }));
        assert_eq!(server.generation(), 2);
    }

    #[test]
    fn truncated_candidate_is_rejected_typed() {
        let dir = tmp_dir("trunc");
        let rec = recommender(9, 4, 8);
        let server = Arc::new(HotSwapServer::new(ModelGeneration::from_engine(
            BatchEngine::new(recommender(9, 4, 9), cfg()).unwrap(),
        )));
        let watcher =
            GenerationWatcher::new(&dir, cfg(), Arc::clone(&server), Observer::disabled());
        let path = publish_generation(&dir, rec.embedding(), 3).unwrap();
        let raw = fs::read(&path).unwrap();
        // Cut inside the body: the table points past EOF.
        fs::write(&path, &raw[..raw.len() - 16]).unwrap();
        match watcher.poll_once() {
            SwapOutcome::Rejected { kind, .. } => assert_eq!(kind, "truncated_body"),
            other => panic!("expected reject, got {other:?}"),
        }
        // Cut inside the header block itself.
        fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        match watcher.poll_once() {
            SwapOutcome::Rejected { kind, .. } => assert_eq!(kind, "truncated_header"),
            other => panic!("expected reject, got {other:?}"),
        }
    }

    #[test]
    fn spawned_watcher_swaps_in_background() {
        let dir = tmp_dir("spawn");
        let rec0 = recommender(11, 3, 10);
        let rec1 = recommender(11, 3, 11);
        publish_generation(&dir, rec0.embedding(), 1).unwrap();
        let server = Arc::new(HotSwapServer::new(
            ModelGeneration::load(&dir.join(generation_file_name(1)), cfg()).unwrap(),
        ));
        let watcher =
            GenerationWatcher::new(&dir, cfg(), Arc::clone(&server), Observer::disabled());
        let handle = watcher.spawn(Duration::from_millis(2));
        publish_generation(&dir, rec1.embedding(), 2).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.generation() != 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let watcher = handle.stop();
        assert_eq!(server.generation(), 2);
        assert_eq!(watcher.poll_once(), SwapOutcome::Unchanged);
    }

    #[test]
    fn cache_is_generation_scoped() {
        // Same query, two generations with different models: the cache
        // must not replay generation 1's answer after the swap.
        let dir = tmp_dir("cachegen");
        let rec0 = recommender(10, 4, 12);
        let rec1 = recommender(10, 4, 13);
        publish_generation(&dir, rec0.embedding(), 1).unwrap();
        let server = Arc::new(HotSwapServer::new(
            ModelGeneration::load(&dir.join(generation_file_name(1)), cfg()).unwrap(),
        ));
        let q = vec![Query::new(vec![4, 2], 5)];
        // Serve twice so the result is definitely cached on gen 1.
        server.serve_pinned(&q).unwrap();
        let (_, first) = server.serve_pinned(&q).unwrap();
        assert_eq!(first[0], rec0.recommend(&[4, 2], 5).unwrap());
        publish_generation(&dir, rec1.embedding(), 2).unwrap();
        let watcher =
            GenerationWatcher::new(&dir, cfg(), Arc::clone(&server), Observer::disabled());
        assert!(matches!(watcher.poll_once(), SwapOutcome::Swapped { .. }));
        let (gen, second) = server.serve_pinned(&q).unwrap();
        assert_eq!(gen, 2);
        assert_eq!(second[0], rec1.recommend(&[4, 2], 5).unwrap());
    }
}

#[cfg(test)]
mod corruption_props {
    //! Satellite 3: whatever damage a candidate file carries — truncation,
    //! bit flips, torn pointer targets — the watcher must never swap onto
    //! it and must keep serving the old generation bit-identically.

    use super::*;
    use plp_model::{ModelParams, Recommender};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> ServeConfig {
        ServeConfig {
            max_batch: 4,
            workers: 1,
            cache_capacity: 16,
            ann: None,
        }
    }

    fn fixture(tag: &str) -> (PathBuf, Recommender, Arc<HotSwapServer>, GenerationWatcher) {
        let dir = std::env::temp_dir().join(format!("plp_swap_prop_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let rec = Recommender::new(&ModelParams::init(&mut rng, 8, 3).unwrap());
        publish_generation(&dir, rec.embedding(), 1).unwrap();
        let server = Arc::new(HotSwapServer::new(
            ModelGeneration::load(&dir.join(generation_file_name(1)), cfg()).unwrap(),
        ));
        let watcher =
            GenerationWatcher::new(&dir, cfg(), Arc::clone(&server), Observer::disabled());
        (dir, rec, server, watcher)
    }

    fn assert_still_serving_gen1(server: &HotSwapServer, rec: &Recommender) {
        let (gen, res) = server.serve_pinned(&[Query::new(vec![2, 5], 4)]).unwrap();
        assert_eq!(gen, 1);
        assert_eq!(res[0], rec.recommend(&[2, 5], 4).unwrap());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn truncated_candidates_never_swap(cut_frac in 0usize..1000) {
            let (dir, rec, server, watcher) = fixture("trunc");
            let mut rng = StdRng::seed_from_u64(7);
            let next = Recommender::new(&ModelParams::init(&mut rng, 8, 3).unwrap());
            let path = publish_generation(&dir, next.embedding(), 2).unwrap();
            let raw = fs::read(&path).unwrap();
            let cut = cut_frac * raw.len() / 1000;
            prop_assert!(cut < raw.len());
            fs::write(&path, &raw[..cut]).unwrap();
            let outcome = watcher.poll_once();
            prop_assert!(
                matches!(outcome, SwapOutcome::Rejected { .. }),
                "truncation at {cut} must reject, got {outcome:?}"
            );
            prop_assert_eq!(server.generation(), 1);
            assert_still_serving_gen1(&server, &rec);
        }

        #[test]
        fn bit_flipped_candidates_never_swap(at_frac in 0usize..1000, bit in 0usize..8) {
            let (dir, rec, server, watcher) = fixture("flip");
            let mut rng = StdRng::seed_from_u64(8);
            let next = Recommender::new(&ModelParams::init(&mut rng, 8, 3).unwrap());
            let path = publish_generation(&dir, next.embedding(), 2).unwrap();
            let mut raw = fs::read(&path).unwrap();
            let at = at_frac * raw.len() / 1000;
            prop_assert!(at < raw.len());
            raw[at] ^= 1 << bit;
            fs::write(&path, &raw).unwrap();
            let outcome = watcher.poll_once();
            match outcome {
                SwapOutcome::Rejected { .. } => {
                    prop_assert_eq!(server.generation(), 1);
                    assert_still_serving_gen1(&server, &rec);
                }
                // A flip of an unread pad byte inside the header block
                // cannot survive: the header CRC covers all of it. Body
                // flips fail the body CRC. So rejection is the only
                // acceptable outcome.
                other => prop_assert!(false, "bit flip must reject, got {other:?}"),
            }
        }

        #[test]
        fn torn_pointer_targets_never_swap(len_frac in 0usize..1000) {
            // A writer killed mid-publish can leave a pointer at a file
            // that is absent or garbage; the watcher must reject and keep
            // serving.
            let (dir, rec, server, watcher) = fixture("torn");
            let garbage = vec![0xABu8; len_frac * 4096 / 1000];
            fs::write(dir.join("gen-torn.plps"), &garbage).unwrap();
            fs::write(dir.join(CURRENT_POINTER), "gen-torn.plps").unwrap();
            let outcome = watcher.poll_once();
            prop_assert!(
                matches!(outcome, SwapOutcome::Rejected { .. }),
                "torn target must reject, got {outcome:?}"
            );
            prop_assert_eq!(server.generation(), 1);
            assert_still_serving_gen1(&server, &rec);
        }
    }
}
