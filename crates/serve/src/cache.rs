//! A fixed-capacity LRU result cache with hit/miss counters.
//!
//! Implemented as a `HashMap` into a slab of intrusively doubly-linked
//! nodes: `get` and `put` are O(1), eviction removes the least-recently
//! used entry, and slots are recycled so a warmed cache performs no
//! further node allocations.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache of fixed capacity.
///
/// Capacity 0 disables caching entirely: every `get` is a miss and `put`
/// is a no-op, which lets callers keep one code path.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    /// Most recently used node, `NIL` when empty.
    head: usize,
    /// Least recently used node, `NIL` when empty.
    tail: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries. The initial
    /// reservation is capped (like the node slab) so a large configured
    /// capacity does not commit memory it may never use — both the map
    /// and the slab grow on demand up to `capacity`.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            nodes: Vec::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Queries answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up `key`, counting a hit or miss and promoting a hit to
    /// most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.push_front(idx);
                Some(&self.nodes[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → value` as most-recently-used,
    /// evicting the least-recently-used entry when full. Does not touch
    /// the hit/miss counters.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = value;
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        let idx = if self.map.len() < self.capacity {
            let idx = self.nodes.len();
            self.nodes.push(Node {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            idx
        } else {
            // Recycle the LRU slot.
            let idx = self.tail;
            debug_assert_ne!(idx, NIL, "capacity > 0 and full implies a tail");
            self.detach(idx);
            let node = &mut self.nodes[idx];
            self.map.remove(&node.key);
            node.key = key.clone();
            node.value = value;
            idx
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_and_counters() {
        let mut c: LruCache<u32, &'static str> = LruCache::new(2);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        c.put(1, "one");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(c.get(&1), Some(&10));
        c.put(3, 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None, "2 was evicted");
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn refresh_updates_value_and_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11); // refresh: 2 is now LRU
        c.put(3, 30);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.put(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_one_cycles_correctly() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        for i in 0..10 {
            c.put(i, i * 10);
            assert_eq!(c.get(&i), Some(&(i * 10)));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None);
            }
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn slab_slots_are_recycled_not_grown() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..100 {
            c.put(i, i);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.nodes.len(), 3, "nodes recycled, slab never grows");
        // The three newest survive.
        for i in 97..100 {
            assert_eq!(c.get(&i), Some(&i));
        }
    }

    #[test]
    fn interleaved_access_keeps_list_consistent() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for round in 0..5u32 {
            for i in 0..8u32 {
                c.put(i, i + round);
                let _ = c.get(&(i / 2));
            }
        }
        assert_eq!(c.len(), 4);
        // Walk the list from head to tail and back; both directions must
        // agree with the map size.
        let mut forward = 0;
        let mut idx = c.head;
        while idx != NIL {
            forward += 1;
            idx = c.nodes[idx].next;
        }
        let mut backward = 0;
        idx = c.tail;
        while idx != NIL {
            backward += 1;
            idx = c.nodes[idx].prev;
        }
        assert_eq!(forward, c.len());
        assert_eq!(backward, c.len());
    }
}
