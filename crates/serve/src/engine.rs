//! The batch serving engine: micro-batching, worker scratch pooling,
//! result caching and telemetry.
//!
//! A [`BatchEngine`] wraps a frozen [`Recommender`] and answers slices of
//! [`Query`]s. Cache misses are grouped into batches of at most
//! `max_batch` queries; each batch stacks its profiles into one matrix
//! and scores every profile against the whole vocabulary with a single
//! blocked matrix–matrix kernel. Batches are striped across scoped
//! worker threads by `batch_index % workers` and results are reassembled
//! by original query position, so neither the worker count nor the batch
//! size can change what a query returns — only how fast it returns.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use plp_core::telemetry::ServeTelemetry;
use plp_linalg::ivf::{IvfBuildParams, IvfIndex, IvfQuant, IvfScratch};
use plp_linalg::matrix::matmul_block_into;
use plp_linalg::topk::{top_k_with_scores_into, TopKScratch};
use plp_model::recommender::mask_excluded;
use plp_model::{ModelError, Recommender};
use plp_obs::trace::{derive_span_id, derive_trace_id, fnv1a64, Tracer, DOMAIN_SERVE_QUERY};
use plp_obs::{HistogramHandle, Observer};

use crate::cache::LruCache;
use crate::error::ServeError;
use crate::query::{Query, QueryKey};

/// ANN serving knobs: when set on [`ServeConfig::ann`], the engine builds
/// a deterministic IVF index over the embedding rows at construction and
/// batch workers score per-query *shortlists* (the members of the
/// `nprobe` best cells, re-ranked with the exact cosine kernel) instead
/// of all `vocab` rows. With `nprobe >= cells` results are bit-identical
/// to the exhaustive engine; below that, results are approximate but
/// deterministic — fixed by `(embedding, cells, seed, nprobe)`, never by
/// worker count or batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnConfig {
    /// Coarse-quantiser cells (k-means clusters); must be `>= 1` and at
    /// most the vocabulary size.
    pub cells: usize,
    /// Cells probed per query, in `[1, cells]`. Larger probes raise
    /// recall and cost; `nprobe == cells` reproduces the exhaustive scan.
    pub nprobe: usize,
    /// Lloyd iterations of the index build.
    pub kmeans_iters: usize,
    /// Rows used to train the centroids (`0` = all rows); the final
    /// assignment always covers the full vocabulary.
    pub kmeans_sample: usize,
    /// Seed of the k-means initialisation.
    pub seed: u64,
    /// Threads used for the one-off index build (bit-identical at any
    /// value; affects construction latency only).
    pub build_threads: usize,
    /// Score probed members with the int8 coarse pass first and re-rank
    /// only the error-bounded shortlist with the exact f64 kernel. Results
    /// are bit-identical to the unquantized engine at every `nprobe` (the
    /// shortlist provably contains the exact top-k of the probed cells);
    /// only the per-query cost changes.
    pub quantized: bool,
    /// Quantized shortlist floor, as a multiple of each query's `k`
    /// (`shortlist >= overfetch · k` by approximate score). Must be `>= 1`
    /// when `quantized` is set; ignored otherwise. Larger values trade
    /// re-rank work for a safety margin beyond the error-bound keep set.
    pub overfetch: usize,
}

impl Default for AnnConfig {
    fn default() -> Self {
        AnnConfig {
            cells: 256,
            nprobe: 16,
            kmeans_iters: 4,
            kmeans_sample: 0,
            seed: 0xA55_C0DE,
            build_threads: 4,
            quantized: false,
            overfetch: 4,
        }
    }
}

/// Tuning knobs of a [`BatchEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest number of cache-missing queries scored by one kernel call.
    pub max_batch: usize,
    /// Worker threads scoring batches concurrently.
    pub workers: usize,
    /// Result-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Optional IVF approximate-scoring configuration; `None` keeps the
    /// exhaustive dense scan.
    pub ann: Option<AnnConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 64,
            workers: 4,
            cache_capacity: 4096,
            ann: None,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::BadConfig {
                name: "max_batch",
                expected: ">= 1",
            });
        }
        if self.workers == 0 {
            return Err(ServeError::BadConfig {
                name: "workers",
                expected: ">= 1",
            });
        }
        if let Some(ann) = &self.ann {
            if ann.cells == 0 {
                return Err(ServeError::BadConfig {
                    name: "ann.cells",
                    expected: ">= 1",
                });
            }
            if ann.nprobe == 0 || ann.nprobe > ann.cells {
                return Err(ServeError::BadConfig {
                    name: "ann.nprobe",
                    expected: "in [1, cells]",
                });
            }
            if ann.kmeans_iters == 0 {
                return Err(ServeError::BadConfig {
                    name: "ann.kmeans_iters",
                    expected: ">= 1",
                });
            }
            if ann.build_threads == 0 {
                return Err(ServeError::BadConfig {
                    name: "ann.build_threads",
                    expected: ">= 1",
                });
            }
            if ann.quantized && ann.overfetch == 0 {
                return Err(ServeError::BadConfig {
                    name: "ann.overfetch",
                    expected: ">= 1 when quantized",
                });
            }
        }
        Ok(())
    }
}

/// Per-worker reusable buffers: stacked profile rows, dense score rows
/// (exhaustive path) or the IVF shortlist buffers (ANN path), plus the
/// top-k selection heap. All buffers start empty and are sized lazily to
/// what a batch actually scores — at a million-location vocabulary the
/// old eager `max_batch × vocab` reservation was ~512 MB *per worker*
/// before the first query arrived, and the ANN path never needs dense
/// rows at all. Grow-only, pooled across `serve` calls, so the steady
/// state still performs no scoring allocations.
#[derive(Default)]
struct Scratch {
    /// `rows × dim` stacked profile rows of the current batch.
    profiles: Vec<f64>,
    /// `rows × vocab` stacked score rows (exhaustive path only).
    scores: Vec<f64>,
    topk: TopKScratch,
    ranked: Vec<(usize, f64)>,
    ivf: IvfScratch,
}

/// Grows `buf` to at least `len` (grow-only, values overwritten by the
/// caller); never shrinks, so pooled scratch reaches a high-water mark
/// and stays allocation-free from then on.
fn ensure(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// Mutable serving state behind one lock: the result cache and the scalar
/// telemetry accumulators. Per-query latencies live in a bounded
/// log-linear histogram on the engine's [`Observer`], so telemetry memory
/// is O(histogram buckets), not O(queries served).
struct EngineState {
    cache: LruCache<QueryKey, Vec<usize>>,
    queries: u64,
    batches: u64,
    wall_ms: f64,
}

/// The engine's per-phase latency histograms, resolved once at
/// construction so the serve path never does registry lookups. Phases:
/// `queue_wait` (miss enqueued → its batch starts scoring), `cache_lookup`
/// (the hit-check critical section), `batch_matmul` (profile stacking +
/// blocked kernel) and `topk` (mask + selection).
struct ServePhases {
    latency: HistogramHandle,
    queue_wait: HistogramHandle,
    cache_lookup: HistogramHandle,
    batch_matmul: HistogramHandle,
    topk: HistogramHandle,
}

impl ServePhases {
    fn resolve(obs: &Observer) -> Self {
        ServePhases {
            latency: obs.histogram("plp_serve_query_latency_ms"),
            queue_wait: obs.histogram_with("plp_serve_phase_ms", "phase", "queue_wait"),
            cache_lookup: obs.histogram_with("plp_serve_phase_ms", "phase", "cache_lookup"),
            batch_matmul: obs.histogram_with("plp_serve_phase_ms", "phase", "batch_matmul"),
            topk: obs.histogram_with("plp_serve_phase_ms", "phase", "topk"),
        }
    }
}

/// One batch's scored output: the original query positions with their
/// ranked locations, and the batch's wall time.
struct BatchResult {
    ranked: Vec<(usize, Vec<usize>)>,
    elapsed_ms: f64,
}

/// A multi-threaded, cached, micro-batching recommendation engine over a
/// frozen [`Recommender`]. See the crate docs for the architecture.
pub struct BatchEngine {
    rec: Recommender,
    cfg: ServeConfig,
    /// The IVF coarse quantiser, built once at construction when
    /// [`ServeConfig::ann`] is set.
    index: Option<IvfIndex>,
    /// The packed int8 rows of the index's posting lists, built once at
    /// construction when [`AnnConfig::quantized`] is set.
    quant: Option<IvfQuant>,
    /// Lifetime totals of the quantized coarse pass: probed candidates
    /// seen and rows that survived into the exact re-rank.
    quant_candidates: AtomicU64,
    quant_shortlisted: AtomicU64,
    obs: Observer,
    phases: ServePhases,
    /// The observer's tracer, resolved once at construction. `None`
    /// keeps the serve path free of any tracing branches beyond one
    /// `Option` check per call.
    tracer: Option<Arc<Tracer>>,
    /// Root of every per-query trace id: `fnv1a64(run_id)`, mixed with
    /// the query sequence number. Deterministic given the observer.
    trace_root: u64,
    /// Monotone query sequence; each serve call claims a contiguous
    /// range so concurrent calls never share a trace id.
    trace_seq: AtomicU64,
    state: Mutex<EngineState>,
    scratch_pool: Mutex<Vec<Scratch>>,
    /// Model generation stamped into every cache key. Engines outside the
    /// hot-swap path use 0; [`crate::swap::HotSwapServer`] builds one
    /// engine per published generation so cached results can never cross
    /// a swap boundary.
    generation: u64,
}

impl BatchEngine {
    /// Wraps `rec` with the given configuration and a private metrics
    /// registry (run id `"serve"`).
    ///
    /// # Errors
    /// `BadConfig` when `max_batch` or `workers` is zero.
    pub fn new(rec: Recommender, cfg: ServeConfig) -> Result<Self, ServeError> {
        Self::with_observer(rec, cfg, Observer::new("serve"))
    }

    /// Wraps `rec` recording metrics into `obs` — pass a shared observer
    /// to co-locate serving metrics with training metrics in one registry
    /// / JSONL log. A *disabled* observer is replaced by a private enabled
    /// one: the latency histogram doubles as the engine's own telemetry
    /// store, so the engine always keeps one.
    ///
    /// # Errors
    /// `BadConfig` when `max_batch`, `workers` or an ANN knob is out of
    /// domain; a `Linalg` error when the index build rejects the
    /// configuration against this vocabulary (e.g. more cells than
    /// locations).
    pub fn with_observer(
        rec: Recommender,
        cfg: ServeConfig,
        obs: Observer,
    ) -> Result<Self, ServeError> {
        Self::with_observer_for_generation(rec, cfg, obs, 0)
    }

    /// As [`Self::with_observer`], additionally stamping `generation` into
    /// every cache key (see [`crate::query::Query::key_for_generation`]).
    /// The hot-swap server uses this so that results cached under one
    /// model generation are unreachable from the next.
    ///
    /// # Errors
    /// As [`Self::with_observer`].
    pub fn with_observer_for_generation(
        rec: Recommender,
        cfg: ServeConfig,
        obs: Observer,
        generation: u64,
    ) -> Result<Self, ServeError> {
        cfg.validate()?;
        let index = match &cfg.ann {
            Some(ann) => Some(IvfIndex::build(
                rec.embedding(),
                &IvfBuildParams {
                    cells: ann.cells,
                    iters: ann.kmeans_iters,
                    sample: ann.kmeans_sample,
                    seed: ann.seed,
                    threads: ann.build_threads,
                },
            )?),
            None => None,
        };
        let quant = match (&cfg.ann, &index) {
            (Some(ann), Some(index)) if ann.quantized => {
                Some(IvfQuant::build(rec.embedding(), index)?)
            }
            _ => None,
        };
        let obs = if obs.is_enabled() {
            obs
        } else {
            Observer::new("serve")
        };
        let phases = ServePhases::resolve(&obs);
        let tracer = obs.tracer();
        let trace_root = fnv1a64(obs.run_id().unwrap_or("serve"));
        Ok(BatchEngine {
            rec,
            cfg,
            index,
            quant,
            quant_candidates: AtomicU64::new(0),
            quant_shortlisted: AtomicU64::new(0),
            obs,
            phases,
            tracer,
            trace_root,
            trace_seq: AtomicU64::new(0),
            state: Mutex::new(EngineState {
                cache: LruCache::new(cfg.cache_capacity),
                queries: 0,
                batches: 0,
                wall_ms: 0.0,
            }),
            scratch_pool: Mutex::new(Vec::new()),
            generation,
        })
    }

    /// The wrapped recommender.
    pub fn recommender(&self) -> &Recommender {
        &self.rec
    }

    /// The model generation this engine serves (0 outside hot-swap).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The engine configuration.
    pub fn config(&self) -> ServeConfig {
        self.cfg
    }

    /// The IVF index, when the engine was configured with
    /// [`ServeConfig::ann`].
    pub fn ann_index(&self) -> Option<&IvfIndex> {
        self.index.as_ref()
    }

    /// The packed int8 posting-list rows, when [`AnnConfig::quantized`]
    /// is set.
    pub fn ann_quant(&self) -> Option<&IvfQuant> {
        self.quant.as_ref()
    }

    /// Lifetime `(candidates, shortlisted)` totals of the quantized
    /// coarse pass: how many probed rows the int8 scan looked at and how
    /// many survived into the exact re-rank. `(0, 0)` until a quantized
    /// query is served.
    pub fn quant_totals(&self) -> (u64, u64) {
        (
            self.quant_candidates.load(Ordering::Relaxed),
            self.quant_shortlisted.load(Ordering::Relaxed),
        )
    }

    /// The observer this engine records into (always enabled).
    pub fn observer(&self) -> &Observer {
        &self.obs
    }

    /// Answers every query, in order. Each result is the query's top-`k`
    /// locations, identical to what `Recommender::recommend` /
    /// `recommend_excluding` would return for it.
    ///
    /// # Errors
    /// `BadQuery` (with the offending position) when any query has an
    /// empty history or an out-of-vocabulary token; the whole call is
    /// rejected before any scoring.
    pub fn serve(&self, queries: &[Query]) -> Result<Vec<Vec<usize>>, ServeError> {
        let call_start = Instant::now();
        self.validate_queries(queries)?;

        // Claim this call's contiguous query-sequence range. Each query
        // gets trace id `derive_trace_id(fnv1a64(run_id), QUERY, seq)` —
        // deterministic given the arrival order, never the clock.
        let trace_base = self.tracer.as_ref().map(|_| {
            self.trace_seq
                .fetch_add(queries.len() as u64, Ordering::Relaxed)
        });

        // Phase 1: cache lookups (single short critical section).
        let lookup_span = self.phases.cache_lookup.start_span();
        let lookup_start = Instant::now();
        let mut results: Vec<Option<Vec<usize>>> = vec![None; queries.len()];
        let keys: Vec<QueryKey> = queries
            .iter()
            .map(|q| q.key_for_generation(self.generation))
            .collect();
        let mut misses: Vec<usize> = Vec::new();
        {
            let mut state = self.state.lock().expect("serve state poisoned");
            for (i, key) in keys.iter().enumerate() {
                match state.cache.get(key) {
                    Some(hit) => results[i] = Some(hit.clone()),
                    None => misses.push(i),
                }
            }
        }
        let lookup_ms = ms_since(lookup_start);
        lookup_span.finish();
        if let (Some(t), Some(base)) = (&self.tracer, trace_base) {
            let (tid, root) = self.query_trace(base, 0);
            let end = t.now_us();
            t.record_span_at(
                "cache_lookup",
                "serve",
                tid,
                derive_span_id(tid, "cache_lookup", base),
                root,
                end.saturating_sub(elapsed_us(lookup_start)),
                end,
                [
                    ("queries", queries.len() as u64),
                    ("misses", misses.len() as u64),
                ],
            );
        }

        // Phase 2: score the misses in batches, striped across workers.
        let batch_results = self.score_misses(queries, &misses, call_start, trace_base)?;

        // Phase 3: reassemble, fill the cache, record telemetry. Per-query
        // latency is the query's batch wall time (scored) or the lookup
        // time (cache hit), recorded into the bounded histogram.
        let num_batches = batch_results.len() as u64;
        let hits = (queries.len() - misses.len()) as u64;
        let mut state = self.state.lock().expect("serve state poisoned");
        for br in &batch_results {
            self.phases
                .latency
                .record_n(br.elapsed_ms, br.ranked.len() as u64);
        }
        for br in batch_results {
            for (qi, ranked) in br.ranked {
                state.cache.put(keys[qi].clone(), ranked.clone());
                results[qi] = Some(ranked);
            }
        }
        if hits > 0 {
            self.phases.latency.record_n(lookup_ms, hits);
        }
        state.queries += queries.len() as u64;
        state.batches += num_batches;
        state.wall_ms += ms_since(call_start);
        drop(state);
        self.obs
            .counter("plp_serve_queries_total")
            .add(queries.len() as u64);
        self.obs.counter("plp_serve_batches_total").add(num_batches);
        self.obs.counter("plp_serve_cache_hits_total").add(hits);
        self.obs
            .counter("plp_serve_cache_misses_total")
            .add(misses.len() as u64);

        // Per-query root spans, closed at call end. `misses` is sorted
        // ascending (it was built by a forward scan), so a binary search
        // tells hit from miss.
        if let (Some(t), Some(base)) = (&self.tracer, trace_base) {
            let end = t.now_us();
            let start = end.saturating_sub(elapsed_us(call_start));
            for (i, q) in queries.iter().enumerate() {
                let (tid, root) = self.query_trace(base, i);
                t.record_span_at(
                    "serve_query",
                    "serve",
                    tid,
                    root,
                    0,
                    start,
                    end,
                    [
                        ("k", q.k as u64),
                        ("cache_hit", u64::from(misses.binary_search(&i).is_err())),
                    ],
                );
            }
        }

        Ok(results
            .into_iter()
            .map(|r| r.expect("every query answered by cache or a batch"))
            .collect())
    }

    /// Convenience single-query entry point.
    ///
    /// # Errors
    /// As [`BatchEngine::serve`].
    pub fn serve_one(&self, query: &Query) -> Result<Vec<usize>, ServeError> {
        let mut out = self.serve(std::slice::from_ref(query))?;
        Ok(out.pop().expect("one query in, one result out"))
    }

    /// A snapshot of lifetime serving telemetry. Latency percentiles come
    /// from the bounded log-linear histogram (≤ one-bucket-width error),
    /// so this is O(histogram buckets) in time and memory regardless of
    /// how many queries the engine has answered — and needs no sort, so
    /// there is nothing to panic on.
    pub fn telemetry(&self) -> ServeTelemetry {
        let state = self.state.lock().expect("serve state poisoned");
        let latencies = self.phases.latency.snapshot();
        let pct = |q: f64| latencies.quantile(q).unwrap_or(0.0);
        let qps = if state.wall_ms > 0.0 {
            state.queries as f64 / (state.wall_ms / 1000.0)
        } else {
            0.0
        };
        ServeTelemetry {
            queries: state.queries,
            batches: state.batches,
            cache_hits: state.cache.hits(),
            cache_misses: state.cache.misses(),
            qps,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            wall_ms: state.wall_ms,
        }
    }

    /// `(trace id, root span id)` of the query at position `qi` in a
    /// serve call whose sequence range starts at `base`. Pure function of
    /// `(run_id, base + qi)`, so any consumer of the dump can recompute
    /// the ids.
    fn query_trace(&self, base: u64, qi: usize) -> (u64, u64) {
        let idx = base + qi as u64;
        let tid = derive_trace_id(self.trace_root, DOMAIN_SERVE_QUERY, idx);
        (tid, derive_span_id(tid, "serve_query", idx))
    }

    fn validate_queries(&self, queries: &[Query]) -> Result<(), ServeError> {
        let vocab = self.rec.vocab_size();
        for (index, q) in queries.iter().enumerate() {
            if q.recent.is_empty() {
                return Err(ServeError::BadQuery {
                    index,
                    source: ModelError::BadConfig {
                        name: "recent",
                        expected: "non-empty",
                    },
                });
            }
            if let Some(&token) = q.recent.iter().find(|&&t| t >= vocab) {
                return Err(ServeError::BadQuery {
                    index,
                    source: ModelError::TokenOutOfRange { token, vocab },
                });
            }
        }
        Ok(())
    }

    /// Scores `misses` (positions into `queries`) in batches of at most
    /// `max_batch`, batch `b` on worker `b % workers`. `enqueued_at` is
    /// when the serve call admitted these misses; the gap until a batch
    /// actually starts scoring is recorded as its `queue_wait` phase.
    fn score_misses(
        &self,
        queries: &[Query],
        misses: &[usize],
        enqueued_at: Instant,
        trace_base: Option<u64>,
    ) -> Result<Vec<BatchResult>, ServeError> {
        if misses.is_empty() {
            return Ok(Vec::new());
        }
        let batches: Vec<&[usize]> = misses.chunks(self.cfg.max_batch).collect();
        let workers = self.cfg.workers.min(batches.len());
        let outcome: Vec<Result<Vec<BatchResult>, ServeError>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let batches = &batches;
                        scope.spawn(move |_| {
                            let mut scratch = self.take_scratch();
                            let mut produced = Vec::new();
                            for batch in batches.iter().skip(w).step_by(workers) {
                                self.phases.queue_wait.record_ms_since(enqueued_at);
                                match self.score_batch(
                                    queries,
                                    batch,
                                    &mut scratch,
                                    enqueued_at,
                                    trace_base,
                                ) {
                                    Ok(br) => produced.push(br),
                                    Err(e) => {
                                        self.return_scratch(scratch);
                                        return Err(e);
                                    }
                                }
                            }
                            self.return_scratch(scratch);
                            Ok(produced)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("serve worker panicked"))
                    .collect()
            })
            .expect("serve scope panicked");
        let mut out = Vec::with_capacity(batches.len());
        for worker_result in outcome {
            out.extend(worker_result?);
        }
        Ok(out)
    }

    /// Scores one batch. Both paths stack the batch's profiles first;
    /// then the exhaustive path runs the blocked kernel over all `vocab`
    /// rows while the ANN path searches the IVF shortlist per query. The
    /// exhaustive path reuses the sequential path's kernels in the
    /// sequential path's order, keeping it bit-identical to
    /// `Recommender::recommend_excluding`; the ANN path is exact over the
    /// probed cells and equals the exhaustive path when `nprobe = cells`.
    #[allow(clippy::too_many_lines)]
    fn score_batch(
        &self,
        queries: &[Query],
        batch: &[usize],
        scratch: &mut Scratch,
        enqueued_at: Instant,
        trace_base: Option<u64>,
    ) -> Result<BatchResult, ServeError> {
        let start = Instant::now();
        let dim = self.rec.dim();
        let rows = batch.len();

        // Batch-level spans parent under the *first* member query's root
        // span; per-query stage spans (probe/re-rank) are indexed by the
        // query's own sequence number, so every id in the dump is
        // recomputable.
        let trace = self.tracer.as_ref().zip(trace_base).map(|(t, base)| {
            let (tid, root) = self.query_trace(base, batch[0]);
            (t, tid, root, base)
        });
        if let Some((t, tid, root, base)) = &trace {
            let end = t.now_us();
            t.record_span_at(
                "enqueue",
                "serve",
                *tid,
                derive_span_id(*tid, "enqueue", base + batch[0] as u64),
                *root,
                end.saturating_sub(elapsed_us(enqueued_at)),
                end,
                [("rows", rows as u64), ("", 0)],
            );
        }

        let matmul_span = self.phases.batch_matmul.start_span();
        let t_assembly = trace.as_ref().map(|(t, tid, root, base)| {
            t.span(
                "batch_assembly",
                "serve",
                *tid,
                derive_span_id(*tid, "batch_assembly", base + batch[0] as u64),
                *root,
            )
            .arg("rows", rows as u64)
        });
        ensure(&mut scratch.profiles, rows * dim);
        for (slot, &qi) in batch.iter().enumerate() {
            self.rec.profile_into(
                &queries[qi].recent,
                &mut scratch.profiles[slot * dim..(slot + 1) * dim],
            )?;
        }
        drop(t_assembly);
        if let Some(index) = &self.index {
            matmul_span.finish();
            let ann = self.cfg.ann.expect("index implies ann config");
            let nprobe = ann.nprobe;
            let topk_span = self.phases.topk.start_span();
            let mut ranked = Vec::with_capacity(rows);
            let (mut batch_candidates, mut batch_shortlisted) = (0u64, 0u64);
            for (slot, &qi) in batch.iter().enumerate() {
                let q = &queries[qi];
                let profile = &scratch.profiles[slot * dim..(slot + 1) * dim];
                // The probe / re-rank split exists so the two IVF stages
                // are separately attributable; together they are exactly
                // `search_into` (or its quantized twin).
                let t_probe = trace.as_ref().map(|(t, tid, root, base)| {
                    t.span(
                        "ivf_probe",
                        "serve",
                        *tid,
                        derive_span_id(*tid, "ivf_probe", base + qi as u64),
                        *root,
                    )
                    .arg("nprobe", nprobe as u64)
                });
                index.probe_cells(profile, nprobe, &mut scratch.ivf)?;
                drop(t_probe);
                let t_rerank = trace.as_ref().map(|(t, tid, root, base)| {
                    t.span(
                        "re_rank",
                        "serve",
                        *tid,
                        derive_span_id(*tid, "re_rank", base + qi as u64),
                        *root,
                    )
                    .arg("k", q.k as u64)
                    .arg("quant", u64::from(self.quant.is_some()))
                });
                if let Some(quant) = &self.quant {
                    let stats = index.rerank_probed_quantized(
                        quant,
                        self.rec.embedding(),
                        profile,
                        q.k,
                        ann.overfetch,
                        &q.exclude,
                        &mut scratch.ivf,
                        &mut scratch.ranked,
                    )?;
                    batch_candidates += stats.candidates as u64;
                    batch_shortlisted += stats.shortlisted as u64;
                } else {
                    index.rerank_probed(
                        self.rec.embedding(),
                        profile,
                        q.k,
                        &q.exclude,
                        &mut scratch.ivf,
                        &mut scratch.ranked,
                    );
                }
                drop(t_rerank);
                ranked.push((qi, scratch.ranked.iter().map(|&(i, _)| i).collect()));
            }
            if batch_candidates > 0 {
                self.quant_candidates
                    .fetch_add(batch_candidates, Ordering::Relaxed);
                self.quant_shortlisted
                    .fetch_add(batch_shortlisted, Ordering::Relaxed);
            }
            topk_span.finish();
            return Ok(BatchResult {
                ranked,
                elapsed_ms: ms_since(start),
            });
        }
        let vocab = self.rec.vocab_size();
        ensure(&mut scratch.scores, rows * vocab);
        let t_matmul = trace.as_ref().map(|(t, tid, root, base)| {
            t.span(
                "batch_matmul",
                "serve",
                *tid,
                derive_span_id(*tid, "batch_matmul", base + batch[0] as u64),
                *root,
            )
            .arg("rows", rows as u64)
            .arg("vocab", vocab as u64)
        });
        matmul_block_into(
            &scratch.profiles[..rows * dim],
            rows,
            dim,
            self.rec.embedding(),
            &mut scratch.scores[..rows * vocab],
        )?;
        drop(t_matmul);
        matmul_span.finish();
        let topk_span = self.phases.topk.start_span();
        let t_topk = trace.as_ref().map(|(t, tid, root, base)| {
            t.span(
                "top_k",
                "serve",
                *tid,
                derive_span_id(*tid, "top_k", base + batch[0] as u64),
                *root,
            )
            .arg("rows", rows as u64)
        });
        let mut ranked = Vec::with_capacity(rows);
        for (slot, &qi) in batch.iter().enumerate() {
            let q = &queries[qi];
            let row = &mut scratch.scores[slot * vocab..(slot + 1) * vocab];
            mask_excluded(row, &q.exclude);
            top_k_with_scores_into(row, q.k, &mut scratch.topk, &mut scratch.ranked);
            ranked.push((qi, scratch.ranked.iter().map(|&(i, _)| i).collect()));
        }
        drop(t_topk);
        topk_span.finish();
        Ok(BatchResult {
            ranked,
            elapsed_ms: ms_since(start),
        })
    }

    fn take_scratch(&self) -> Scratch {
        self.scratch_pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn return_scratch(&self, scratch: Scratch) {
        self.scratch_pool
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1000.0
}

/// Microseconds elapsed since `start`, saturating at u64.
fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_linalg::Matrix;
    use rand::{RngExt, SeedableRng};

    fn random_recommender(vocab: usize, dim: usize, seed: u64) -> Recommender {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(vocab, dim);
        for r in 0..vocab {
            for c in 0..dim {
                m.set(r, c, rng.random::<f64>() * 2.0 - 1.0);
            }
        }
        Recommender::from_embedding(m).unwrap()
    }

    fn mixed_queries(vocab: usize, n: usize, seed: u64) -> Vec<Query> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let hist_len = rng.random_range(1usize..6);
                let recent: Vec<usize> =
                    (0..hist_len).map(|_| rng.random_range(0..vocab)).collect();
                let k = rng.random_range(0usize..12);
                let exclude = if rng.random_bool(0.5) {
                    recent.clone()
                } else {
                    Vec::new()
                };
                Query::with_exclusions(recent, k, exclude)
            })
            .collect()
    }

    fn sequential(rec: &Recommender, q: &Query) -> Vec<usize> {
        if q.exclude.is_empty() {
            rec.recommend(&q.recent, q.k).unwrap()
        } else {
            rec.recommend_excluding(&q.recent, q.k, &q.exclude).unwrap()
        }
    }

    #[test]
    fn batched_matches_sequential_for_every_shape() {
        let rec = random_recommender(53, 7, 11);
        let queries = mixed_queries(53, 40, 12);
        let expected: Vec<Vec<usize>> = queries.iter().map(|q| sequential(&rec, q)).collect();
        for (max_batch, workers) in [(1, 1), (4, 1), (4, 3), (64, 2), (7, 5)] {
            let engine = BatchEngine::new(
                rec.clone(),
                ServeConfig {
                    max_batch,
                    workers,
                    cache_capacity: 0,
                    ann: None,
                },
            )
            .unwrap();
            let got = engine.serve(&queries).unwrap();
            assert_eq!(
                got, expected,
                "batched must be bit-identical (max_batch={max_batch}, workers={workers})"
            );
        }
    }

    #[test]
    fn cache_answers_second_pass() {
        let rec = random_recommender(31, 5, 3);
        let queries = mixed_queries(31, 10, 4);
        let engine = BatchEngine::new(rec, ServeConfig::default()).unwrap();
        let first = engine.serve(&queries).unwrap();
        let second = engine.serve(&queries).unwrap();
        assert_eq!(first, second);
        let t = engine.telemetry();
        assert_eq!(t.queries, 20);
        assert_eq!(t.cache_hits, 10, "entire second pass served from cache");
        assert_eq!(t.cache_misses, 10);
        assert!((t.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_respects_exclusions_in_the_key() {
        let rec = random_recommender(20, 4, 5);
        let engine = BatchEngine::new(rec.clone(), ServeConfig::default()).unwrap();
        let plain = Query::new(vec![1, 2], 5);
        let excl = Query::with_exclusions(vec![1, 2], 5, vec![plain_first(&rec)]);
        let a = engine.serve_one(&plain).unwrap();
        let b = engine.serve_one(&excl).unwrap();
        assert_ne!(a, b, "exclusion must not be served from the plain entry");
        assert_eq!(b, sequential(&rec, &excl));
    }

    fn plain_first(rec: &Recommender) -> usize {
        rec.recommend(&[1, 2], 1).unwrap()[0]
    }

    #[test]
    fn bad_queries_are_rejected_with_their_position() {
        let rec = random_recommender(10, 3, 6);
        let engine = BatchEngine::new(rec, ServeConfig::default()).unwrap();
        let queries = vec![Query::new(vec![1], 3), Query::new(vec![], 3)];
        match engine.serve(&queries) {
            Err(ServeError::BadQuery { index: 1, .. }) => {}
            other => panic!("expected BadQuery at 1, got {other:?}"),
        }
        let queries = vec![Query::new(vec![1], 3), Query::new(vec![2, 99], 3)];
        match engine.serve(&queries) {
            Err(ServeError::BadQuery {
                index: 1,
                source: ModelError::TokenOutOfRange { token: 99, .. },
            }) => {}
            other => panic!("expected TokenOutOfRange at 1, got {other:?}"),
        }
        assert_eq!(
            engine.telemetry().queries,
            0,
            "rejected calls record nothing"
        );
    }

    #[test]
    fn k_zero_and_k_beyond_vocab() {
        let rec = random_recommender(6, 3, 7);
        let engine = BatchEngine::new(rec.clone(), ServeConfig::default()).unwrap();
        assert!(engine
            .serve_one(&Query::new(vec![0], 0))
            .unwrap()
            .is_empty());
        let all = engine.serve_one(&Query::new(vec![0], 100)).unwrap();
        assert_eq!(all.len(), 6);
        assert_eq!(all, rec.recommend(&[0], 100).unwrap());
    }

    #[test]
    fn telemetry_counts_batches_and_latencies() {
        let rec = random_recommender(17, 4, 8);
        let queries = mixed_queries(17, 5, 9);
        let engine = BatchEngine::new(
            rec,
            ServeConfig {
                max_batch: 2,
                workers: 2,
                cache_capacity: 0,
                ann: None,
            },
        )
        .unwrap();
        engine.serve(&queries).unwrap();
        let t = engine.telemetry();
        assert_eq!(t.queries, 5);
        assert_eq!(t.batches, 3, "5 queries at max_batch 2 → 3 batches");
        assert_eq!(t.cache_misses, 5);
        assert!(t.wall_ms > 0.0);
        assert!(t.qps > 0.0);
        assert!(t.p50_ms <= t.p95_ms && t.p95_ms <= t.p99_ms);
    }

    #[test]
    fn scratch_pool_is_reused_across_calls() {
        let rec = random_recommender(12, 3, 10);
        let engine = BatchEngine::new(
            rec,
            ServeConfig {
                max_batch: 4,
                workers: 2,
                cache_capacity: 0,
                ann: None,
            },
        )
        .unwrap();
        let queries = mixed_queries(12, 8, 11);
        engine.serve(&queries).unwrap();
        let pooled_after_first = engine.scratch_pool.lock().unwrap().len();
        assert!(pooled_after_first >= 1);
        engine.serve(&queries).unwrap();
        let pooled_after_second = engine.scratch_pool.lock().unwrap().len();
        assert_eq!(
            pooled_after_first, pooled_after_second,
            "steady state reuses pooled scratch instead of growing the pool"
        );
    }

    #[test]
    fn instrumentation_keeps_results_bit_identical() {
        let rec = random_recommender(41, 6, 21);
        let queries = mixed_queries(41, 30, 22);
        let expected: Vec<Vec<usize>> = queries.iter().map(|q| sequential(&rec, q)).collect();
        let obs = Observer::with_memory_sink("serve-test");
        let engine = BatchEngine::with_observer(
            rec,
            ServeConfig {
                max_batch: 4,
                workers: 3,
                cache_capacity: 8,
                ann: None,
            },
            obs.clone(),
        )
        .unwrap();
        let got = engine.serve(&queries).unwrap();
        assert_eq!(got, expected, "observer must not change what is served");

        let text = obs.render_prometheus();
        for phase in ["queue_wait", "cache_lookup", "batch_matmul", "topk"] {
            assert!(
                text.contains(&format!("plp_serve_phase_ms_bucket{{phase=\"{phase}\"")),
                "missing serve phase {phase} in:\n{text}"
            );
        }
        assert!(text.contains("plp_serve_queries_total 30"), "{text}");
    }

    #[test]
    fn latency_telemetry_is_bounded_by_histogram_buckets() {
        let rec = random_recommender(19, 4, 30);
        let engine = BatchEngine::new(
            rec,
            ServeConfig {
                max_batch: 8,
                workers: 2,
                cache_capacity: 16,
                ann: None,
            },
        )
        .unwrap();
        // Several passes, mixing fresh scoring and cache hits.
        for pass in 0..6 {
            let queries = mixed_queries(19, 25, 31 + (pass % 2));
            engine.serve(&queries).unwrap();
        }
        let t = engine.telemetry();
        assert_eq!(t.queries, 150);
        // One latency observation per query, held in a fixed-layout
        // histogram rather than a per-query Vec.
        let snapshot = engine
            .observer()
            .registry()
            .unwrap()
            .histogram("plp_serve_query_latency_ms")
            .snapshot();
        assert_eq!(snapshot.count(), 150);
        assert_eq!(
            snapshot.bucket_counts().len(),
            plp_obs::hist::NUM_BUCKETS,
            "telemetry storage is O(buckets), independent of query count"
        );
        assert!(t.p50_ms <= t.p95_ms && t.p95_ms <= t.p99_ms);
    }

    #[test]
    fn disabled_observer_is_upgraded_to_private_one() {
        let rec = random_recommender(9, 3, 40);
        let engine =
            BatchEngine::with_observer(rec, ServeConfig::default(), Observer::disabled()).unwrap();
        assert!(engine.observer().is_enabled());
        engine.serve_one(&Query::new(vec![1], 3)).unwrap();
        let t = engine.telemetry();
        assert_eq!(t.queries, 1);
        assert!(t.p99_ms >= 0.0);
    }

    #[test]
    fn config_is_validated() {
        let rec = random_recommender(4, 2, 1);
        let bad_batch = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            BatchEngine::new(rec.clone(), bad_batch),
            Err(ServeError::BadConfig {
                name: "max_batch",
                ..
            })
        ));
        let bad_workers = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            BatchEngine::new(rec, bad_workers),
            Err(ServeError::BadConfig {
                name: "workers",
                ..
            })
        ));
    }

    fn ann_cfg(cells: usize, nprobe: usize) -> ServeConfig {
        ServeConfig {
            max_batch: 4,
            workers: 2,
            cache_capacity: 0,
            ann: Some(AnnConfig {
                cells,
                nprobe,
                ..AnnConfig::default()
            }),
        }
    }

    #[test]
    fn ann_full_probe_is_bit_identical_to_dense_engine() {
        let rec = random_recommender(61, 6, 50);
        let queries = mixed_queries(61, 40, 51);
        let dense = BatchEngine::new(
            rec.clone(),
            ServeConfig {
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let expected = dense.serve(&queries).unwrap();
        for workers in [1, 3] {
            let engine = BatchEngine::new(
                rec.clone(),
                ServeConfig {
                    workers,
                    ..ann_cfg(8, 8)
                },
            )
            .unwrap();
            let got = engine.serve(&queries).unwrap();
            assert_eq!(
                got, expected,
                "nprobe = cells must reproduce the dense engine (workers={workers})"
            );
        }
    }

    #[test]
    fn ann_results_are_worker_and_batch_invariant() {
        let rec = random_recommender(61, 6, 52);
        let queries = mixed_queries(61, 40, 53);
        let reference = BatchEngine::new(rec.clone(), ann_cfg(8, 2))
            .unwrap()
            .serve(&queries)
            .unwrap();
        for (max_batch, workers) in [(1, 1), (7, 3), (64, 5)] {
            let engine = BatchEngine::new(
                rec.clone(),
                ServeConfig {
                    max_batch,
                    workers,
                    ..ann_cfg(8, 2)
                },
            )
            .unwrap();
            assert_eq!(
                engine.serve(&queries).unwrap(),
                reference,
                "ANN results fixed by (embedding, ann config), not by max_batch={max_batch}/workers={workers}"
            );
        }
    }

    fn quant_cfg(cells: usize, nprobe: usize) -> ServeConfig {
        let mut cfg = ann_cfg(cells, nprobe);
        let ann = cfg.ann.as_mut().unwrap();
        ann.quantized = true;
        ann.overfetch = 2;
        cfg
    }

    #[test]
    fn quantized_full_probe_is_bit_identical_to_dense_engine() {
        let rec = random_recommender(61, 6, 70);
        let queries = mixed_queries(61, 40, 71);
        let dense = BatchEngine::new(
            rec.clone(),
            ServeConfig {
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let expected = dense.serve(&queries).unwrap();
        for workers in [1, 3] {
            let engine = BatchEngine::new(
                rec.clone(),
                ServeConfig {
                    workers,
                    ..quant_cfg(8, 8)
                },
            )
            .unwrap();
            let got = engine.serve(&queries).unwrap();
            assert_eq!(
                got, expected,
                "quantized nprobe = cells must reproduce the dense engine (workers={workers})"
            );
            let (candidates, shortlisted) = engine.quant_totals();
            assert!(candidates > 0, "coarse pass must have run");
            assert!(shortlisted <= candidates);
        }
    }

    #[test]
    fn quantized_matches_unquantized_at_every_probe_width() {
        // The int8 coarse pass is a pure shortlist: at any nprobe the
        // engine must return exactly what the unquantized ANN engine
        // returns, worker count and batch size notwithstanding.
        let rec = random_recommender(61, 6, 72);
        let queries = mixed_queries(61, 40, 73);
        for nprobe in [1, 3, 8] {
            let reference = BatchEngine::new(rec.clone(), ann_cfg(8, nprobe))
                .unwrap()
                .serve(&queries)
                .unwrap();
            for (max_batch, workers) in [(1, 1), (7, 3)] {
                let engine = BatchEngine::new(
                    rec.clone(),
                    ServeConfig {
                        max_batch,
                        workers,
                        ..quant_cfg(8, nprobe)
                    },
                )
                .unwrap();
                assert_eq!(
                    engine.serve(&queries).unwrap(),
                    reference,
                    "quantized must equal exact ANN (nprobe={nprobe}, max_batch={max_batch}, workers={workers})"
                );
            }
        }
    }

    #[test]
    fn quantized_engine_exposes_pack_and_validates_overfetch() {
        let rec = random_recommender(20, 4, 74);
        let engine = BatchEngine::new(rec.clone(), quant_cfg(4, 2)).unwrap();
        let quant = engine.ann_quant().expect("quantized config packs rows");
        assert_eq!(quant.dim(), 4);
        assert!(quant.payload_bytes() >= 20 * 4);
        assert_eq!(engine.quant_totals(), (0, 0), "no queries served yet");
        let plain = BatchEngine::new(rec.clone(), ann_cfg(4, 2)).unwrap();
        assert!(plain.ann_quant().is_none());
        let mut bad = quant_cfg(4, 2);
        bad.ann.as_mut().unwrap().overfetch = 0;
        assert!(matches!(
            BatchEngine::new(rec, bad),
            Err(ServeError::BadConfig {
                name: "ann.overfetch",
                ..
            })
        ));
    }

    #[test]
    fn ann_config_is_validated() {
        let rec = random_recommender(10, 3, 54);
        for (cfg, knob) in [
            (ann_cfg(0, 1), "ann.cells"),
            (ann_cfg(4, 0), "ann.nprobe"),
            (ann_cfg(4, 5), "ann.nprobe"),
        ] {
            assert!(
                matches!(
                    BatchEngine::new(rec.clone(), cfg),
                    Err(ServeError::BadConfig { name, .. }) if name == knob
                ),
                "expected BadConfig for {knob}"
            );
        }
        let mut bad_iters = ann_cfg(4, 2);
        bad_iters.ann.as_mut().unwrap().kmeans_iters = 0;
        assert!(BatchEngine::new(rec.clone(), bad_iters).is_err());
        let mut bad_threads = ann_cfg(4, 2);
        bad_threads.ann.as_mut().unwrap().build_threads = 0;
        assert!(BatchEngine::new(rec.clone(), bad_threads).is_err());
        // More cells than locations is rejected by the index build.
        assert!(matches!(
            BatchEngine::new(rec, ann_cfg(11, 1)),
            Err(ServeError::Linalg(_))
        ));
    }

    #[test]
    fn scratch_is_sized_lazily_to_what_was_scored() {
        // Satellite regression: the old Scratch eagerly reserved
        // max_batch × vocab score rows per worker at construction — at
        // vocab 10⁶ and max_batch 64 that is ~512 MB per worker before
        // the first query. Scratch must now grow to the scored batch.
        let vocab = 12;
        let rec = random_recommender(vocab, 3, 55);
        let engine = BatchEngine::new(
            rec,
            ServeConfig {
                max_batch: 64,
                workers: 1,
                cache_capacity: 0,
                ann: None,
            },
        )
        .unwrap();
        let queries = mixed_queries(vocab, 3, 56);
        engine.serve(&queries).unwrap();
        let pool = engine.scratch_pool.lock().unwrap();
        assert_eq!(pool.len(), 1);
        assert_eq!(
            pool[0].scores.len(),
            3 * vocab,
            "score scratch sized to the largest batch actually scored, not max_batch"
        );
    }

    #[test]
    fn tracing_keeps_results_bit_identical_and_covers_every_stage() {
        use plp_obs::trace::TraceConfig;

        let rec = random_recommender(61, 6, 60);
        let queries = mixed_queries(61, 20, 61);

        for ann in [
            None,
            Some(AnnConfig {
                cells: 8,
                nprobe: 3,
                ..AnnConfig::default()
            }),
            Some(AnnConfig {
                cells: 8,
                nprobe: 3,
                quantized: true,
                overfetch: 2,
                ..AnnConfig::default()
            }),
        ] {
            let cfg = ServeConfig {
                max_batch: 4,
                workers: 3,
                cache_capacity: 8,
                ann,
            };
            let untraced = BatchEngine::new(rec.clone(), cfg).unwrap();
            let expected = untraced.serve(&queries).unwrap();

            let obs = Observer::new("serve-traced");
            let tracer = obs.attach_tracer(TraceConfig::named("serve")).unwrap();
            let engine = BatchEngine::with_observer(rec.clone(), cfg, obs).unwrap();
            let got = engine.serve(&queries).unwrap();
            assert_eq!(got, expected, "a tracer must not change what is served");
            // Second pass: all cache hits, still identical.
            assert_eq!(engine.serve(&queries).unwrap(), expected);

            let spans = tracer.snapshot();
            let names: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.name).collect();
            let mut expected_stages =
                vec!["serve_query", "cache_lookup", "enqueue", "batch_assembly"];
            if cfg.ann.is_some() {
                expected_stages.extend(["ivf_probe", "re_rank"]);
            } else {
                expected_stages.extend(["batch_matmul", "top_k"]);
            }
            for stage in expected_stages {
                assert!(
                    names.contains(stage),
                    "missing stage span {stage:?} (ann={:?}); got {names:?}",
                    cfg.ann
                );
            }
            assert_eq!(
                spans.iter().filter(|s| s.name == "serve_query").count(),
                2 * queries.len(),
                "one root span per query per call"
            );
            // Root span ids are pure functions of the query sequence.
            let (tid0, root0) = engine.query_trace(0, 0);
            assert!(spans
                .iter()
                .any(|s| s.name == "serve_query" && s.trace_id == tid0 && s.span_id == root0));
            // Stage spans parent under a query root, never float free.
            let roots: std::collections::BTreeSet<u64> = spans
                .iter()
                .filter(|s| s.name == "serve_query")
                .map(|s| s.span_id)
                .collect();
            for s in spans.iter().filter(|s| s.name != "serve_query") {
                assert!(
                    roots.contains(&s.parent_id),
                    "span {} has a dangling parent",
                    s.name
                );
            }
        }
    }

    #[test]
    fn ann_scratch_never_allocates_dense_score_rows() {
        let rec = random_recommender(40, 4, 57);
        let engine = BatchEngine::new(rec, ann_cfg(5, 2)).unwrap();
        assert_eq!(engine.ann_index().unwrap().cells(), 5);
        let queries = mixed_queries(40, 12, 58);
        engine.serve(&queries).unwrap();
        let pool = engine.scratch_pool.lock().unwrap();
        assert!(!pool.is_empty());
        for scratch in pool.iter() {
            assert!(
                scratch.scores.is_empty(),
                "ANN workers score shortlists; the vocab-wide dense rows must never exist"
            );
        }
    }
}
