//! The serving request type and its cache key.

/// One next-POI recommendation request: rank all locations against the
/// profile of `recent` and return the best `k`, never returning anything
/// in `exclude` (§3.3 — typically the locations just visited).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Recent check-in history `ζ` (tokens; must be non-empty).
    pub recent: Vec<usize>,
    /// How many recommendations to return.
    pub k: usize,
    /// Locations to exclude from the result (out-of-range entries are
    /// ignored, matching `Recommender::recommend_excluding`).
    pub exclude: Vec<usize>,
}

impl Query {
    /// A query with no exclusions.
    pub fn new(recent: Vec<usize>, k: usize) -> Self {
        Query {
            recent,
            k,
            exclude: Vec::new(),
        }
    }

    /// A query excluding the given locations.
    pub fn with_exclusions(recent: Vec<usize>, k: usize, exclude: Vec<usize>) -> Self {
        Query { recent, k, exclude }
    }

    /// The normalised cache key of this query. Exclusions are sorted and
    /// de-duplicated because exclusion is a set operation: two queries
    /// differing only in exclusion order (or repetition) have identical
    /// results and must share one cache entry.
    pub fn key(&self) -> QueryKey {
        self.key_for_generation(0)
    }

    /// The cache key of this query under a specific model generation.
    /// Hot-swap serving stamps the serving generation into every key so a
    /// cache shared across a swap can never return a stale generation's
    /// result for a fresh query (and vice versa).
    pub fn key_for_generation(&self, generation: u64) -> QueryKey {
        let mut exclude = self.exclude.clone();
        exclude.sort_unstable();
        exclude.dedup();
        QueryKey {
            generation,
            recent: self.recent.clone(),
            k: self.k,
            exclude,
        }
    }
}

/// The normalised `(generation, recent, k, exclude)` identity of a
/// [`Query`], used as the LRU cache key. The full key (not just its hash)
/// is stored, so a hash collision can never serve a wrong result. The
/// generation id keys cached results to the model that produced them;
/// engines outside the hot-swap path use generation 0.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    generation: u64,
    recent: Vec<usize>,
    k: usize,
    exclude: Vec<usize>,
}

impl QueryKey {
    /// The model generation this key is scoped to.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_normalises_exclusions() {
        let a = Query::with_exclusions(vec![1, 2], 5, vec![9, 3, 9]);
        let b = Query::with_exclusions(vec![1, 2], 5, vec![3, 9]);
        assert_eq!(a.key(), b.key());
        let c = Query::with_exclusions(vec![1, 2], 5, vec![3, 8]);
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn key_distinguishes_history_order_and_k() {
        // History order changes the profile average's rounding, so it is
        // part of the identity.
        let a = Query::new(vec![1, 2], 5);
        assert_ne!(a.key(), Query::new(vec![2, 1], 5).key());
        assert_ne!(a.key(), Query::new(vec![1, 2], 6).key());
    }

    #[test]
    fn key_distinguishes_generations() {
        let q = Query::new(vec![1, 2], 5);
        assert_eq!(q.key(), q.key_for_generation(0));
        assert_ne!(q.key_for_generation(1), q.key_for_generation(2));
        assert_eq!(q.key_for_generation(7).generation(), 7);
    }
}
