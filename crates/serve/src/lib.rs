//! Batched next-POI recommendation serving (the §3.3 deployment path at
//! production scale).
//!
//! Training produces one artifact — the row-normalised embedding matrix
//! wrapped in [`plp_model::Recommender`] — and the paper's end product is
//! answering `(recent-history, k, exclude)` queries against it. This
//! crate turns that frozen artifact into a high-throughput serving
//! engine:
//!
//! * [`engine::BatchEngine`] — a query micro-batcher that groups incoming
//!   requests and scores each batch with **one** blocked matrix–matrix
//!   kernel ([`plp_linalg::matrix::matmul_block_into`]) instead of a
//!   `matvec` per query,
//! * per-worker scratch buffers (profile rows, score rows, the top-k
//!   heap) pooled across calls, so the steady state performs no scoring
//!   allocations,
//! * [`cache::LruCache`] — an LRU result cache keyed by the normalised
//!   `(recent, k, exclude)` query with hit/miss counters,
//! * optional sublinear scoring — [`engine::AnnConfig`] builds a
//!   deterministic IVF coarse-quantiser index
//!   ([`plp_linalg::ivf::IvfIndex`]) at construction, and workers then
//!   score per-query shortlists (the `nprobe` best cells, re-ranked with
//!   the exact cosine kernel) instead of all `vocab` rows; `nprobe =
//!   cells` is bit-identical to the exhaustive scan,
//! * zero-downtime hot-swap — [`swap::HotSwapServer`] pins an
//!   `Arc<`[`swap::ModelGeneration`]`>` per batch while a
//!   [`swap::GenerationWatcher`] follows an atomically-renamed `CURRENT`
//!   pointer over mmap-able PLPS bundles, validating (CRCs + finiteness)
//!   and index-building each new generation off the query path before
//!   swapping it under live traffic; cache keys carry the generation id,
//!   so results never leak across a swap,
//! * serving telemetry — QPS, p50/p95/p99 latency and cache hit rate —
//!   reported as [`plp_core::telemetry::ServeTelemetry`], with per-query
//!   latencies held in a bounded `plp_obs` log-linear histogram
//!   (O(buckets) memory, not O(queries)) and per-phase spans
//!   (`queue_wait` / `cache_lookup` / `batch_matmul` / `topk`) exported
//!   in Prometheus text format via the engine's
//!   [`plp_obs::Observer`].
//!
//! The batched path is **bit-identical** to the sequential
//! [`plp_model::Recommender`] calls: profiles accumulate in the same
//! order, the blocked kernel computes each inner product in `matvec`
//! order, and exclusion/top-k share the sequential path's code. The
//! `serve_load` generator in `plp-bench` asserts this on every run.

pub mod cache;
pub mod engine;
pub mod error;
pub mod query;
pub mod swap;

pub use cache::LruCache;
pub use engine::{AnnConfig, BatchEngine, ServeConfig};
pub use error::ServeError;
pub use query::{Query, QueryKey};
pub use swap::{
    publish_generation, GenerationWatcher, HotSwapServer, ModelGeneration, SwapOutcome,
    WatcherHandle,
};
