//! Micro-benchmarks of the system's hot kernels: skip-gram training steps,
//! clipping, Gaussian noise, the moments accountant, grouping, window
//! extraction and top-k ranking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use plp_data::grouping::{group_data, GroupingStrategy};
use plp_linalg::sample::NormalSampler;
use plp_linalg::topk::top_k_indices;
use plp_model::clip::clip_per_layer;
use plp_model::grad::SparseGrad;
use plp_model::negative::NegativeSampler;
use plp_model::params::ModelParams;
use plp_model::train::{train_on_tokens, LocalSgdConfig};
use plp_privacy::accountant::MomentsAccountant;
use plp_privacy::rdp::RdpCurve;

const VOCAB: usize = 2000;
const DIM: usize = 50;

fn corpus(len: usize) -> Vec<usize> {
    (0..len).map(|i| (i * 37) % VOCAB).collect()
}

fn sgns_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgns");
    group.sample_size(20);
    for &neg in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("local_pass_neg", neg), &neg, |b, &neg| {
            let tokens = corpus(512);
            let cfg = LocalSgdConfig {
                learning_rate: 0.06,
                batch_size: 32,
                window: 2,
                negatives: neg,
                loss: plp_model::Loss::SampledSoftmax,
            };
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut params = ModelParams::init(&mut rng, VOCAB, DIM).unwrap();
                black_box(
                    train_on_tokens(
                        &mut rng,
                        &mut params,
                        &tokens,
                        &cfg,
                        &NegativeSampler::Uniform,
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn clipping(c: &mut Criterion) {
    let mut g = SparseGrad::new();
    let mut rng = StdRng::seed_from_u64(2);
    let mut normal = NormalSampler::new();
    for r in 0..500 {
        let mut v = vec![0.0; DIM];
        normal.fill(&mut rng, 1.0, &mut v);
        g.add_embedding_row(r, 1.0, &v);
        g.add_context_row(r, 1.0, &v);
        g.add_bias(r, 0.3);
    }
    c.bench_function("clip_per_layer_500rows", |b| {
        b.iter(|| {
            let mut gg = g.clone();
            black_box(clip_per_layer(&mut gg, 0.5).unwrap())
        });
    });
}

fn gaussian_noise(c: &mut Criterion) {
    c.bench_function("gaussian_perturb_512k", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = NormalSampler::new();
        let mut v = vec![0.0; 512 * 1024];
        b.iter(|| {
            sampler.perturb(&mut rng, 1.25, &mut v);
            black_box(v[0])
        });
    });
}

fn accountant(c: &mut Criterion) {
    c.bench_function("accountant_step", |b| {
        let mut acc = MomentsAccountant::new(2e-4).unwrap();
        b.iter(|| {
            acc.step(0.06, 2.5).unwrap();
            black_box(())
        });
    });
    c.bench_function("accountant_epsilon_query", |b| {
        let mut acc = MomentsAccountant::new(2e-4).unwrap();
        for _ in 0..300 {
            acc.step(0.06, 2.5).unwrap();
        }
        b.iter(|| black_box(acc.epsilon().unwrap()));
    });
    c.bench_function("rdp_curve_construction", |b| {
        b.iter(|| black_box(RdpCurve::subsampled_gaussian_step(0.06, 2.5, 255).unwrap()));
    });
}

fn grouping(c: &mut Criterion) {
    use plp_data::checkin::UserId;
    use plp_data::dataset::{TokenizedDataset, UserSequences};
    let users = (0..500)
        .map(|i| UserSequences {
            user: UserId(i as u32),
            sessions: vec![(0..100).map(|t| (t * 13 + i) % VOCAB).collect()],
        })
        .collect();
    let ds = TokenizedDataset {
        users,
        vocab_size: VOCAB,
    };
    let sampled: Vec<usize> = (0..500).collect();
    let mut group = c.benchmark_group("grouping");
    for strategy in [GroupingStrategy::Random, GroupingStrategy::EqualFrequency] {
        group.bench_function(format!("{strategy:?}_500users_lambda4"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(4);
                black_box(group_data(&mut rng, &sampled, &ds, 4, strategy).unwrap())
            });
        });
    }
    group.finish();
}

fn ranking(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut normal = NormalSampler::new();
    let mut scores = vec![0.0; 5069];
    normal.fill(&mut rng, 1.0, &mut scores);
    c.bench_function("top10_of_5069", |b| {
        b.iter(|| black_box(top_k_indices(&scores, 10)));
    });
}

fn windowing(c: &mut Criterion) {
    let tokens = corpus(10_000);
    c.bench_function("skipgram_pairs_10k_tokens_win2", |b| {
        b.iter(|| black_box(plp_data::window::pairs_from_sequence(&tokens, 2).len()));
    });
}

criterion_group!(
    micro,
    sgns_step,
    clipping,
    gaussian_noise,
    accountant,
    grouping,
    ranking,
    windowing
);
criterion_main!(micro);
