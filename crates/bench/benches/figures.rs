//! One criterion bench target per paper figure.
//!
//! Each target runs a scaled-down instance (`Scale::Bench`) of the exact
//! code path the corresponding `fig*` binary uses at full scale, so
//! `cargo bench` exercises every figure's pipeline end to end and tracks
//! its performance over time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use plp_bench::figures;
use plp_bench::runner::{run_nonprivate, run_point, Scale};
use plp_core::experiment::PreparedData;

fn prep() -> PreparedData {
    PreparedData::generate(&Scale::Bench.experiment_config(42)).expect("data")
}

fn bench_sweep(c: &mut Criterion, name: &str, points: Vec<plp_bench::SweepPoint>) {
    let prep = prep();
    // One representative point per figure keeps `cargo bench` tractable;
    // the full sweep lives in the fig* binaries.
    let point = points.into_iter().next().expect("non-empty sweep");
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter(|| black_box(run_point(&prep, &point, 7).expect("point")));
    });
    group.finish();
}

fn fig05(c: &mut Criterion) {
    let prep = prep();
    let hp = Scale::Bench.hyperparameters();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig05_hparam_grid_point", |b| {
        b.iter(|| black_box(run_nonprivate(&prep, &hp, 1, 3).expect("nonprivate")));
    });
    group.finish();
}

fn fig06(c: &mut Criterion) {
    let prep = prep();
    let hp = Scale::Bench.hyperparameters();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig06_nonprivate_epoch", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            let out = plp_core::nonprivate::train_nonprivate(
                &mut rng,
                &prep.train,
                None,
                &hp,
                &plp_core::nonprivate::NonPrivateConfig {
                    epochs: 1,
                    ..Default::default()
                },
            )
            .expect("epoch");
            black_box(out.telemetry.len())
        });
    });
    group.finish();
}

fn fig07(c: &mut Criterion) {
    bench_sweep(c, "fig07_eps_point", figures::fig07(Scale::Bench, 0.06));
}

fn fig08(c: &mut Criterion) {
    bench_sweep(c, "fig08_q_point", figures::fig08(Scale::Bench));
}

fn fig09(c: &mut Criterion) {
    // The runtime figure compares DP-SGD vs PLP per-step cost directly.
    let prep = prep();
    let mut hp = Scale::Bench.hyperparameters();
    hp.max_steps = 2;
    hp.budget = plp_privacy::PrivacyBudget {
        epsilon: 1e9,
        delta: 2e-4,
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig09_dpsgd_steps", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            black_box(
                plp_core::dpsgd::train_dpsgd(&mut rng, &prep.train, None, &hp).expect("dpsgd"),
            )
        });
    });
    let mut plp_hp = hp.clone();
    plp_hp.grouping_factor = 4;
    group.bench_function("fig09_plp_lambda4_steps", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            black_box(plp_core::plp::train_plp(&mut rng, &prep.train, None, &plp_hp).expect("plp"))
        });
    });
    group.finish();
}

fn fig10(c: &mut Criterion) {
    bench_sweep(c, "fig10_lambda_point", figures::fig10(Scale::Bench));
}

fn fig11(c: &mut Criterion) {
    bench_sweep(c, "fig11_sigma_point", figures::fig11(Scale::Bench));
}

fn fig12(c: &mut Criterion) {
    bench_sweep(c, "fig12_clip_point", figures::fig12(Scale::Bench));
}

fn fig13(c: &mut Criterion) {
    bench_sweep(c, "fig13_neg_point", figures::fig13(Scale::Bench));
}

fn ablation_omega(c: &mut Criterion) {
    bench_sweep(
        c,
        "ablation_omega_point",
        figures::ablation_omega(Scale::Bench),
    );
}

fn ablation_grouping(c: &mut Criterion) {
    bench_sweep(
        c,
        "ablation_grouping_point",
        figures::ablation_grouping(Scale::Bench),
    );
}

criterion_group!(
    benches,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    ablation_omega,
    ablation_grouping
);
criterion_main!(benches);
