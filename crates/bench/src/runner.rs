//! Experiment runner shared by the criterion benches and the `fig*`
//! binaries.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use plp_core::checkpoint::load_checkpoint;
use plp_core::config::Hyperparameters;
use plp_core::dpsgd::baseline_hyperparameters;
use plp_core::experiment::{evaluate, EvalRecord, ExperimentConfig, PreparedData};
use plp_core::faults::FaultInjector;
use plp_core::nonprivate::{train_nonprivate, NonPrivateConfig};
use plp_core::plp::{resume_plp, train_plp_resumable, CheckpointPolicy, TrainOptions};
use plp_core::CoreError;

/// Experiment scale: trade fidelity for wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny data + few steps: used inside `cargo bench` targets.
    Bench,
    /// The medium synthetic profile: used by the `fig*` binaries.
    Figure,
}

impl Scale {
    /// The data-preparation config for this scale.
    pub fn experiment_config(self, seed: u64) -> ExperimentConfig {
        match self {
            Scale::Bench => {
                let mut c = ExperimentConfig::small(seed);
                c.generator.num_users = 200;
                c.generator.num_locations = 150;
                c.generator.target_checkins = 8_000;
                c.generator.num_clusters = 8;
                c.validation_users = 20;
                c.test_users = 20;
                c
            }
            Scale::Figure => ExperimentConfig::medium(seed),
        }
    }

    /// A step cap keeping sweeps tractable at this scale; the budget stop
    /// of Algorithm 1 still applies first whenever it binds.
    pub fn max_steps(self) -> usize {
        match self {
            Scale::Bench => 10,
            Scale::Figure => 350,
        }
    }

    /// Hyper-parameters scaled to this profile (paper defaults otherwise).
    pub fn hyperparameters(self) -> Hyperparameters {
        let mut hp = Hyperparameters {
            max_steps: self.max_steps(),
            ..Hyperparameters::default()
        };
        if self == Scale::Bench {
            hp.embedding_dim = 16;
            hp.negative_samples = 8;
        }
        hp
    }
}

/// One point of a parameter sweep: a method label, an x value and the
/// hyper-parameters to run with.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Series label, e.g. `"PLP λ=6"`.
    pub method: String,
    /// The x-axis value of the figure.
    pub x: f64,
    /// Hyper-parameters for this point.
    pub hp: Hyperparameters,
    /// `true` to run the DP-SGD baseline (forces λ = 1).
    pub dpsgd: bool,
}

/// Crash-safety knobs for [`run_point_with`] and
/// [`try_drive_sweep_with`]: periodic checkpointing, automatic resume and
/// (for drills) fault injection. The default is the classic
/// fire-and-forget run.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Checkpoint file (single points) or directory (sweeps, one file per
    /// point/rep). `None` disables persistence and resume.
    pub checkpoint_path: Option<PathBuf>,
    /// Save a checkpoint every this many steps (0: only at run end).
    pub checkpoint_every: u64,
    /// Fault injector for robustness drills (inert by default).
    pub faults: FaultInjector,
    /// Observability context threaded into training (inert by default).
    pub observer: plp_obs::Observer,
}

impl RunControl {
    /// Periodic checkpointing to `path` every `every` steps.
    pub fn checkpointed(path: PathBuf, every: u64) -> Self {
        RunControl {
            checkpoint_path: Some(path),
            checkpoint_every: every,
            ..Self::default()
        }
    }
}

/// Trains one sweep point and evaluates HR@{5,10,20} on the test users.
///
/// # Errors
/// Propagates pipeline errors.
pub fn run_point(
    prep: &PreparedData,
    point: &SweepPoint,
    seed: u64,
) -> Result<EvalRecord, CoreError> {
    run_point_with(prep, point, seed, &RunControl::default())
}

/// [`run_point`] with checkpointing and auto-resume. When the control's
/// checkpoint file holds a valid checkpoint of this exact configuration,
/// training resumes from it (bit-identical to an uninterrupted run); a
/// corrupt or torn file is discarded and the run restarts from scratch.
///
/// # Errors
/// Propagates pipeline errors, including [`CoreError::CheckpointMismatch`]
/// when an existing checkpoint belongs to a *different* configuration —
/// silently restarting would mask an experiment-setup bug.
pub fn run_point_with(
    prep: &PreparedData,
    point: &SweepPoint,
    seed: u64,
    control: &RunControl,
) -> Result<EvalRecord, CoreError> {
    let hp = if point.dpsgd {
        baseline_hyperparameters(&point.hp)
    } else {
        point.hp.clone()
    };
    // The first draw of the seeded stream is exactly the run seed the
    // non-resumable `train_plp` would derive, so results stay comparable.
    let run_seed: u64 = StdRng::seed_from_u64(seed).random();
    let opts = TrainOptions {
        faults: control.faults,
        checkpoint: control
            .checkpoint_path
            .clone()
            .map(|path| CheckpointPolicy {
                path,
                every: control.checkpoint_every,
            }),
        halt_after: None,
        observer: control.observer.clone(),
    };
    let resumable = opts
        .checkpoint
        .as_ref()
        .filter(|p| p.path.exists())
        .map(|p| &p.path);
    let outcome = match resumable.map(|path| load_checkpoint(path)) {
        Some(Ok(ckpt)) => resume_plp(ckpt, &prep.train, None, &hp, &opts)?,
        Some(Err(CoreError::CheckpointCorrupt { .. })) => {
            // A torn write from a previous crash: integrity checks caught
            // it, so start over rather than trust damaged state.
            train_plp_resumable(run_seed, &prep.train, None, &hp, &opts)?
        }
        Some(Err(e)) => return Err(e),
        None => train_plp_resumable(run_seed, &prep.train, None, &hp, &opts)?,
    };
    let hit_rates = evaluate(&outcome.params, &prep.test, &[5, 10, 20])?;
    Ok(EvalRecord {
        method: point.method.clone(),
        x: point.x,
        hit_rates,
        epsilon_spent: outcome.summary.epsilon_spent,
        steps: outcome.summary.steps,
        wall_ms: outcome.summary.total_wall_ms,
    })
}

/// Trains the non-private reference and evaluates it (Figures 5/6 and the
/// 29.5% ceiling quoted in §5.2).
///
/// # Errors
/// Propagates pipeline errors.
pub fn run_nonprivate(
    prep: &PreparedData,
    hp: &Hyperparameters,
    epochs: usize,
    seed: u64,
) -> Result<EvalRecord, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = NonPrivateConfig {
        epochs,
        ..NonPrivateConfig::default()
    };
    let start = std::time::Instant::now();
    let out = train_nonprivate(&mut rng, &prep.train, None, hp, &cfg)?;
    let hit_rates = evaluate(&out.params, &prep.test, &[5, 10, 20])?;
    Ok(EvalRecord {
        method: "non-private".to_string(),
        x: epochs as f64,
        hit_rates,
        epsilon_spent: f64::INFINITY,
        steps: epochs as u64,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// Prints a figure header.
pub fn print_header(figure: &str, description: &str, prep: &PreparedData) {
    println!("== {figure}: {description} ==");
    println!(
        "dataset: {} users, {} locations, {} check-ins (density {:.4}%)",
        prep.stats.num_users,
        prep.stats.num_locations,
        prep.stats.num_checkins,
        prep.stats.density * 100.0
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>10}",
        "method", "x", "HR@5", "HR@10", "HR@20", "eps", "steps", "wall_ms"
    );
}

/// Prints one record row and returns it for JSON collection.
pub fn print_record(r: &EvalRecord) -> EvalRecord {
    println!(
        "{:<16} {:>8.3} {:>8.4} {:>8.4} {:>8.4} {:>8.3} {:>9} {:>10.0}",
        r.method,
        r.x,
        r.hit_rates[0].rate(),
        r.hit_rates[1].rate(),
        r.hit_rates[2].rate(),
        r.epsilon_spent,
        r.steps,
        r.wall_ms
    );
    r.clone()
}

/// Dumps the collected records as one JSON line (for EXPERIMENTS.md and
/// downstream plotting).
pub fn print_json(figure: &str, records: &[EvalRecord]) {
    let payload = serde_json::json!({ "figure": figure, "records": records });
    println!("JSON {payload}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_is_small_and_fast() {
        let c = Scale::Bench.experiment_config(1);
        assert!(c.generator.num_users <= 300);
        assert!(Scale::Bench.max_steps() <= 20);
        let hp = Scale::Bench.hyperparameters();
        assert!(hp.embedding_dim < 50);
        assert!(hp.validate().is_ok());
    }

    #[test]
    fn figure_scale_uses_paper_hyperparameters() {
        let hp = Scale::Figure.hyperparameters();
        assert_eq!(hp.embedding_dim, 50);
        assert_eq!(hp.negative_samples, 16);
        assert!(hp.validate().is_ok());
    }

    #[test]
    fn run_point_produces_a_complete_record() {
        let prep = PreparedData::generate(&Scale::Bench.experiment_config(3)).unwrap();
        let mut hp = Scale::Bench.hyperparameters();
        hp.max_steps = 2;
        let point = SweepPoint {
            method: "PLP λ=2".into(),
            x: 2.0,
            hp,
            dpsgd: false,
        };
        let r = run_point(&prep, &point, 11).unwrap();
        assert_eq!(r.hit_rates.len(), 3);
        assert_eq!(r.steps, 2);
        assert!(r.epsilon_spent > 0.0);
        print_header("test", "smoke", &prep);
        print_record(&r);
        print_json("test", &[r]);
    }
}

/// Runs every sweep point (repeating `seeds` times with consecutive seeds
/// and pooling hits/trials), printing rows as they complete. Returns the
/// pooled records.
///
/// # Errors
/// Propagates the first pipeline error. Already-printed rows are lost;
/// with checkpointing enabled (see [`try_drive_sweep_with`]) a rerun
/// resumes each finished point from its checkpoint instead of retraining.
pub fn try_drive_sweep(
    figure: &str,
    description: &str,
    prep: &PreparedData,
    points: &[SweepPoint],
    base_seed: u64,
    seeds: usize,
) -> Result<Vec<EvalRecord>, CoreError> {
    try_drive_sweep_with(
        figure,
        description,
        prep,
        points,
        base_seed,
        seeds,
        &RunControl::default(),
    )
}

/// [`try_drive_sweep`] under a [`RunControl`]. When the control names a
/// checkpoint *directory*, every (point, rep) run checkpoints to its own
/// file in it and auto-resumes on rerun.
///
/// # Errors
/// As [`try_drive_sweep`], plus [`CoreError::Io`] when the checkpoint
/// directory cannot be created.
#[allow(clippy::too_many_arguments)]
pub fn try_drive_sweep_with(
    figure: &str,
    description: &str,
    prep: &PreparedData,
    points: &[SweepPoint],
    base_seed: u64,
    seeds: usize,
    control: &RunControl,
) -> Result<Vec<EvalRecord>, CoreError> {
    if let Some(dir) = &control.checkpoint_path {
        std::fs::create_dir_all(dir).map_err(|e| CoreError::Io {
            message: e.to_string(),
        })?;
    }
    print_header(figure, description, prep);
    let mut records = Vec::with_capacity(points.len());
    for (i, point) in points.iter().enumerate() {
        let mut pooled: Option<EvalRecord> = None;
        for rep in 0..seeds.max(1) {
            let seed = base_seed
                .wrapping_add(1000 + i as u64)
                .wrapping_add(rep as u64 * 7_919);
            let point_control = RunControl {
                checkpoint_path: control
                    .checkpoint_path
                    .as_ref()
                    .map(|dir| dir.join(format!("{figure}-p{i}-r{rep}.plpc"))),
                ..control.clone()
            };
            let r = run_point_with(prep, point, seed, &point_control)?;
            pooled = Some(match pooled.take() {
                None => r,
                Some(mut acc) => {
                    for (a, b) in acc.hit_rates.iter_mut().zip(&r.hit_rates) {
                        a.hits += b.hits;
                        a.trials += b.trials;
                    }
                    acc.epsilon_spent = acc.epsilon_spent.max(r.epsilon_spent);
                    acc.wall_ms += r.wall_ms;
                    acc
                }
            });
        }
        // seeds.max(1) >= 1 reps always ran, so pooled is set.
        if let Some(r) = pooled {
            print_record(&r);
            records.push(r);
        }
    }
    print_json(figure, &records);
    Ok(records)
}

/// Panicking convenience wrapper around [`try_drive_sweep`] for the
/// `fig*` experiment binaries, where aborting with the error message is
/// the right behaviour.
///
/// # Panics
/// Panics on pipeline errors — library code should call
/// [`try_drive_sweep`] instead.
pub fn drive_sweep(
    figure: &str,
    description: &str,
    prep: &PreparedData,
    points: &[SweepPoint],
    base_seed: u64,
    seeds: usize,
) -> Vec<EvalRecord> {
    match try_drive_sweep(figure, description, prep, points, base_seed, seeds) {
        Ok(records) => records,
        Err(e) => panic!("sweep {figure} failed: {e}"),
    }
}

#[cfg(test)]
mod drive_tests {
    use super::*;

    #[test]
    fn sweep_checkpoints_and_reruns_resume() {
        let prep = PreparedData::generate(&Scale::Bench.experiment_config(6)).unwrap();
        let mut hp = Scale::Bench.hyperparameters();
        hp.max_steps = 2;
        let points = vec![SweepPoint {
            method: "PLP λ=2".into(),
            x: 0.0,
            hp,
            dpsgd: false,
        }];
        let dir = std::env::temp_dir().join(format!("plp_sweep_ckpt_{}", std::process::id()));
        let control = RunControl::checkpointed(dir.clone(), 1);
        let first = try_drive_sweep_with("t2", "ckpt", &prep, &points, 1, 1, &control).unwrap();
        assert!(
            dir.join("t2-p0-r0.plpc").exists(),
            "sweep must leave a checkpoint"
        );
        // A rerun resumes the finished run from its checkpoint and lands
        // on the same record without retraining.
        let second = try_drive_sweep_with("t2", "ckpt", &prep, &points, 1, 1, &control).unwrap();
        assert_eq!(first[0].steps, second[0].steps);
        assert_eq!(first[0].hit_rates[0].hits, second[0].hit_rates[0].hits);
        assert_eq!(
            first[0].epsilon_spent.to_bits(),
            second[0].epsilon_spent.to_bits(),
            "resumed ε comes from the same ledger"
        );
    }

    #[test]
    fn drive_sweep_pools_seeds() {
        let prep = PreparedData::generate(&Scale::Bench.experiment_config(5)).unwrap();
        let mut hp = Scale::Bench.hyperparameters();
        hp.max_steps = 1;
        let points = vec![SweepPoint {
            method: "PLP λ=2".into(),
            x: 0.0,
            hp,
            dpsgd: false,
        }];
        let recs = drive_sweep("t", "pooling", &prep, &points, 1, 2);
        assert_eq!(recs.len(), 1);
        let single = run_point(&prep, &points[0], 1001).unwrap();
        assert_eq!(recs[0].hit_rates[0].trials, 2 * single.hit_rates[0].trials);
    }
}
