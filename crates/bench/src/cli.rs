//! Tiny argument parsing shared by the `fig*` binaries.

use crate::runner::Scale;

/// Options common to every figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Experiment scale (`--scale bench|figure`, default `figure`).
    pub scale: Scale,
    /// Master seed (`--seed N`, default 42).
    pub seed: u64,
    /// Repetitions for seed-averaged binaries (`--seeds N`, default 1).
    pub seeds: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::Figure,
            seed: 42,
            seeds: 1,
        }
    }
}

/// Parses `std::env::args()`; unknown flags abort with a usage message.
pub fn parse_args() -> Options {
    parse(std::env::args().skip(1))
}

fn parse(args: impl Iterator<Item = String>) -> Options {
    let mut opts = Options::default();
    let argv: Vec<String> = args.collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                match argv.get(i).map(String::as_str) {
                    Some("bench") => opts.scale = Scale::Bench,
                    Some("figure") => opts.scale = Scale::Figure,
                    other => usage(&format!("bad --scale value {other:?}")),
                }
            }
            "--seed" => {
                i += 1;
                match argv.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => opts.seed = s,
                    None => usage("bad --seed value"),
                }
            }
            "--seeds" => {
                i += 1;
                match argv.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) if s >= 1 => opts.seeds = s,
                    _ => usage("bad --seeds value"),
                }
            }
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    opts
}

fn usage(problem: &str) -> ! {
    eprintln!("{problem}");
    eprintln!("usage: <bin> [--scale bench|figure] [--seed N] [--seeds N]");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Options {
        parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = args(&[]);
        assert_eq!(o.scale, Scale::Figure);
        assert_eq!(o.seed, 42);
        assert_eq!(o.seeds, 1);
    }

    #[test]
    fn parses_all_flags() {
        let o = args(&["--scale", "bench", "--seed", "7", "--seeds", "3"]);
        assert_eq!(o.scale, Scale::Bench);
        assert_eq!(o.seed, 7);
        assert_eq!(o.seeds, 3);
    }
}
