//! Shared harness for regenerating the paper's figures.
//!
//! Every figure of the evaluation (§5) is driven by the same pipeline:
//! prepare a seeded synthetic-Tokyo dataset, train one or more of
//! {non-private, DP-SGD, PLP} under a parameter sweep, and print the
//! figure's series as aligned text plus machine-readable JSON.
//!
//! Two scales are supported everywhere:
//! * `Scale::Bench` — small data, used by `cargo bench` so each figure's
//!   criterion target terminates in seconds,
//! * `Scale::Figure` — the medium profile used by the `fig*` binaries to
//!   produce the numbers recorded in EXPERIMENTS.md.

pub mod cli;
pub mod figures;
pub mod runner;

pub use runner::{Scale, SweepPoint};
