//! Sweep builders: one function per paper figure.
//!
//! Each builder returns the list of [`SweepPoint`]s whose evaluation
//! regenerates the figure's series. The builders only *describe* the sweep;
//! `runner::run_point` executes it, and the `fig*` binaries / criterion
//! benches drive the execution at the chosen scale.

use plp_core::config::Hyperparameters;
use plp_privacy::PrivacyBudget;

use crate::runner::{Scale, SweepPoint};

fn budget(eps: f64) -> PrivacyBudget {
    PrivacyBudget {
        epsilon: eps,
        delta: 2e-4,
    }
}

fn plp_point(label: &str, x: f64, hp: Hyperparameters, lambda: usize) -> SweepPoint {
    let mut hp = hp;
    hp.grouping_factor = lambda;
    SweepPoint {
        method: format!("{label} λ={lambda}"),
        x,
        hp,
        dpsgd: false,
    }
}

fn dpsgd_point(x: f64, hp: Hyperparameters) -> SweepPoint {
    SweepPoint {
        method: "DP-SGD".to_string(),
        x,
        hp,
        dpsgd: true,
    }
}

/// Figure 7: HR@10 vs privacy budget ε ∈ {0.5, 1, 2, 3, 4} for PLP (λ = 6,
/// λ = 4) and DP-SGD, at σ = 1.5 and q ∈ {0.06, 0.10}.
pub fn fig07(scale: Scale, q: f64) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &eps in &[0.5, 1.0, 2.0, 3.0, 4.0] {
        let mut hp = scale.hyperparameters();
        hp.sampling_prob = q;
        hp.noise_multiplier = 1.5;
        hp.budget = budget(eps);
        points.push(plp_point("PLP", eps, hp.clone(), 6));
        points.push(plp_point("PLP", eps, hp.clone(), 4));
        points.push(dpsgd_point(eps, hp));
    }
    points
}

/// Figure 8: HR@10 vs sampling ratio q ∈ {0.04 .. 0.12} at ε = 2 for PLP
/// (λ = 6, λ = 4) and DP-SGD (σ = paper default 2.5).
pub fn fig08(scale: Scale) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &q in &[0.04, 0.06, 0.08, 0.10, 0.12] {
        let mut hp = scale.hyperparameters();
        hp.sampling_prob = q;
        hp.noise_multiplier = 2.5;
        hp.budget = budget(2.0);
        points.push(plp_point("PLP", q, hp.clone(), 6));
        points.push(plp_point("PLP", q, hp.clone(), 4));
        points.push(dpsgd_point(q, hp));
    }
    points
}

/// Figure 9: runtime-improvement factor of PLP over DP-SGD vs λ ∈ {2..6},
/// for (q, σ) ∈ {0.06, 0.10} × {1.5, 2.5}. Returns (label, q, σ, λ) tuples;
/// the harness measures wall-clock at a fixed number of steps and reports
/// `t(DP-SGD)/t(PLP λ)`.
pub fn fig09_settings() -> Vec<(String, f64, f64, usize)> {
    let mut out = Vec::new();
    for &(q, sigma) in &[(0.06, 1.5), (0.06, 2.5), (0.10, 1.5), (0.10, 2.5)] {
        for lambda in 2..=6usize {
            out.push((format!("q={q}, σ={sigma}"), q, sigma, lambda));
        }
    }
    out
}

/// Figure 10: HR@10 vs grouping factor λ ∈ {1..6} at ε = 2, C = 0.5, for
/// (q, σ) ∈ {0.06, 0.10} × {2, 3}.
pub fn fig10(scale: Scale) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &(q, sigma) in &[(0.06, 2.0), (0.06, 3.0), (0.10, 2.0), (0.10, 3.0)] {
        for lambda in 1..=6usize {
            let mut hp = scale.hyperparameters();
            hp.sampling_prob = q;
            hp.noise_multiplier = sigma;
            hp.budget = budget(2.0);
            hp.grouping_factor = lambda;
            points.push(SweepPoint {
                method: format!("q={q}, σ={sigma}"),
                x: lambda as f64,
                hp,
                dpsgd: false,
            });
        }
    }
    points
}

/// Figure 11: HR@10 vs noise scale σ ∈ {1.0 .. 3.0} for
/// (q, ε) ∈ {0.06, 0.10} × {2, 4}, λ = 4.
pub fn fig11(scale: Scale) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &(q, eps) in &[(0.06, 2.0), (0.06, 4.0), (0.10, 2.0), (0.10, 4.0)] {
        for &sigma in &[1.0, 1.5, 2.0, 2.5, 3.0] {
            let mut hp = scale.hyperparameters();
            hp.sampling_prob = q;
            hp.noise_multiplier = sigma;
            hp.budget = budget(eps);
            points.push(SweepPoint {
                method: format!("q={q}, ε={eps}"),
                x: sigma,
                hp,
                dpsgd: false,
            });
        }
    }
    points
}

/// Figure 12: HR@10 vs clipping norm C for (q, λ) ∈ {0.06, 0.10} × {4, 6}
/// at ε = 2, σ = 2.5.
pub fn fig12(scale: Scale) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &(q, lambda) in &[(0.06, 4usize), (0.06, 6), (0.10, 4), (0.10, 6)] {
        for &c in &[0.1, 0.3, 0.5, 0.7, 1.0] {
            let mut hp = scale.hyperparameters();
            hp.sampling_prob = q;
            hp.noise_multiplier = 2.5;
            hp.clip_norm = c;
            hp.budget = budget(2.0);
            hp.grouping_factor = lambda;
            points.push(SweepPoint {
                method: format!("q={q}, λ={lambda}"),
                x: c,
                hp,
                dpsgd: false,
            });
        }
    }
    points
}

/// Figure 13: HR@10 vs negatives neg ∈ {4, 8, 16, 32, 64} for
/// (q, C) ∈ {0.06, 0.10} × {0.3, 0.5}, λ = 4, ε = 2, σ = 2.5.
pub fn fig13(scale: Scale) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &(q, c) in &[(0.06, 0.5), (0.06, 0.3), (0.10, 0.5), (0.10, 0.3)] {
        for &neg in &[4usize, 8, 16, 32, 64] {
            let mut hp = scale.hyperparameters();
            hp.sampling_prob = q;
            hp.noise_multiplier = 2.5;
            hp.clip_norm = c;
            hp.budget = budget(2.0);
            hp.negative_samples = neg;
            points.push(SweepPoint {
                method: format!("q={q}, C={c}"),
                x: neg as f64,
                hp,
                dpsgd: false,
            });
        }
    }
    points
}

/// §4.2 ablation: split factor ω ∈ {1, 2} with correctly scaled noise,
/// at ε = 2, σ = 2.5, λ = 1 (mirroring the paper's experiment, which split
/// "a user's data to exactly two random buckets").
pub fn ablation_omega(scale: Scale) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for omega in [1usize, 2] {
        let mut hp = scale.hyperparameters();
        hp.split_factor = omega;
        hp.grouping_factor = 1;
        hp.budget = budget(2.0);
        points.push(SweepPoint {
            method: format!("ω={omega}"),
            x: omega as f64,
            hp,
            dpsgd: false,
        });
    }
    points
}

/// §4.1 ablation: random vs equal-frequency grouping at the default
/// configuration (the paper found no significant difference).
pub fn ablation_grouping(scale: Scale) -> Vec<SweepPoint> {
    use plp_core::config::GroupingStrategyConfig;
    let mut points = Vec::new();
    for (label, strategy) in [
        ("random", GroupingStrategyConfig::Random),
        ("equal-frequency", GroupingStrategyConfig::EqualFrequency),
    ] {
        let mut hp = scale.hyperparameters();
        hp.grouping_strategy = strategy;
        hp.budget = budget(2.0);
        points.push(SweepPoint {
            method: label.to_string(),
            x: 0.0,
            hp,
            dpsgd: false,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig07_covers_methods_and_epsilons() {
        let pts = fig07(Scale::Bench, 0.06);
        assert_eq!(pts.len(), 15);
        assert!(pts.iter().all(|p| p.hp.validate().is_ok()));
        assert_eq!(pts.iter().filter(|p| p.dpsgd).count(), 5);
        let eps: Vec<f64> = pts.iter().map(|p| p.x).collect();
        assert!(eps.contains(&0.5) && eps.contains(&4.0));
    }

    #[test]
    fn fig08_varies_q_only() {
        let pts = fig08(Scale::Bench);
        assert_eq!(pts.len(), 15);
        for p in &pts {
            assert_eq!(p.hp.budget.epsilon, 2.0);
            assert_eq!(p.hp.sampling_prob, p.x);
        }
    }

    #[test]
    fn fig09_settings_cover_grid() {
        let s = fig09_settings();
        assert_eq!(s.len(), 4 * 5);
        assert!(s.iter().all(|(_, q, sigma, l)| {
            (*q == 0.06 || *q == 0.10) && (*sigma == 1.5 || *sigma == 2.5) && (2..=6).contains(l)
        }));
    }

    #[test]
    fn fig10_lambda_matches_x() {
        let pts = fig10(Scale::Bench);
        assert_eq!(pts.len(), 24);
        for p in &pts {
            assert_eq!(p.hp.grouping_factor as f64, p.x);
        }
    }

    #[test]
    fn fig11_sigma_matches_x() {
        let pts = fig11(Scale::Bench);
        assert_eq!(pts.len(), 20);
        for p in &pts {
            assert_eq!(p.hp.noise_multiplier, p.x);
        }
    }

    #[test]
    fn fig12_clip_matches_x() {
        let pts = fig12(Scale::Bench);
        assert_eq!(pts.len(), 20);
        for p in &pts {
            assert_eq!(p.hp.clip_norm, p.x);
        }
    }

    #[test]
    fn fig13_neg_matches_x() {
        let pts = fig13(Scale::Bench);
        assert_eq!(pts.len(), 20);
        for p in &pts {
            assert_eq!(p.hp.negative_samples as f64, p.x);
        }
    }

    #[test]
    fn ablations_are_well_formed() {
        let o = ablation_omega(Scale::Bench);
        assert_eq!(o.len(), 2);
        assert_eq!(o[1].hp.split_factor, 2);
        let g = ablation_grouping(Scale::Bench);
        assert_eq!(g.len(), 2);
        assert!(g.iter().all(|p| p.hp.validate().is_ok()));
    }
}
