//! End-to-end smoke run: dataset stats, step-budget calibration, a short
//! non-private run and a PLP vs DP-SGD comparison at small scale.
//!
//! Usage: `cargo run --release -p plp-bench --bin smoke`

use plp_bench::runner::{print_header, print_record, run_nonprivate, run_point, Scale, SweepPoint};
use plp_core::experiment::PreparedData;
use plp_privacy::planner::max_steps;
use plp_privacy::PrivacyBudget;

fn main() {
    // How many steps do the paper's budgets afford?
    println!("== step budgets (moments accountant) ==");
    for (q, sigma) in [(0.06, 1.5), (0.06, 2.5), (0.10, 1.5), (0.10, 2.5)] {
        for eps in [0.5, 1.0, 2.0, 3.0, 4.0] {
            let b = PrivacyBudget::new(eps, 2e-4).unwrap();
            let steps = max_steps(q, sigma, b).unwrap();
            println!("q={q:<5} sigma={sigma:<4} eps={eps:<4} -> max steps {steps}");
        }
    }

    let scale = Scale::Bench;
    let prep = PreparedData::generate(&scale.experiment_config(42)).unwrap();
    print_header("smoke", "sanity comparison at bench scale", &prep);

    let hp = scale.hyperparameters();
    let np = run_nonprivate(&prep, &hp, 8, 1).unwrap();
    print_record(&np);

    let mut plp_hp = hp.clone();
    plp_hp.grouping_factor = 4;
    plp_hp.max_steps = 60;
    plp_hp.noise_multiplier = 2.5;
    plp_hp.budget = PrivacyBudget::new(4.0, 2e-4).unwrap();
    let plp = run_point(
        &prep,
        &SweepPoint {
            method: "PLP λ=4".into(),
            x: 0.0,
            hp: plp_hp.clone(),
            dpsgd: false,
        },
        2,
    )
    .unwrap();
    print_record(&plp);

    let dpsgd = run_point(
        &prep,
        &SweepPoint {
            method: "DP-SGD".into(),
            x: 0.0,
            hp: plp_hp,
            dpsgd: true,
        },
        2,
    )
    .unwrap();
    print_record(&dpsgd);

    // Popularity baseline for calibration.
    let counts = plp_model::metrics::token_counts(&prep.train);
    let pop = plp_model::metrics::popularity_hit_rate(&counts, &prep.test, &[5, 10, 20]);
    println!(
        "popularity baseline: HR@5 {:.4} HR@10 {:.4} HR@20 {:.4}",
        pop[0].rate(),
        pop[1].rate(),
        pop[2].rate()
    );
    println!(
        "random baseline:     HR@10 {:.4}",
        plp_model::metrics::random_baseline(10, prep.vocab_size())
    );
}
