//! Training-throughput benchmark: runs the same seeded private training
//! run at `threads ∈ {1, 0 (auto)}` — the auto run clamps to the host's
//! `available_parallelism`, so CI never oversubscribes a small box —
//! reports steps/sec, examples/sec (from the
//! `plp_train_pairs_total` counter) and the `plp_train_phase_ms` phase
//! breakdown per thread count, and **asserts thread-count invariance**:
//! the trained parameters must be bit-identical at every thread count —
//! the determinism contract of the unrolled kernels, the strided
//! bucket/eval partitions (DESIGN.md §11) and the counter-based per-row
//! noise streams (DESIGN.md §12).
//!
//! The workload is `Scale::Bench` data with a deliberately enlarged model
//! (more locations, wider embedding) so the dense noise + server-update
//! phases are a measurable slice of each step; on full (non-smoke) runs
//! the benchmark additionally **fails unless the noise + server_update
//! wall-clock share shrinks at threads=4 vs threads=1** — the regression
//! gate for the threaded dense phases. (On a host with one hardware
//! thread a parallel speedup is impossible, so there the gate instead
//! bounds the threading overhead; the report records
//! `available_parallelism` so a reader can tell which form applied.)
//!
//! Usage:
//!   cargo run --release -p plp-bench --bin train_throughput            # full run
//!   cargo run --release -p plp-bench --bin train_throughput -- --smoke # CI smoke
//!   ... -- --out path.json        # report path (default BENCH_train.json)
//!
//! Exits non-zero if any check fails (in particular, if threading changes
//! the trained model by even one bit).

use std::process::ExitCode;

use plp_bench::runner::Scale;
use plp_core::checkpoint::KERNEL_SCHEME_VERSION;
use plp_core::config::Hyperparameters;
use plp_core::experiment::PreparedData;
use plp_core::plp::{train_plp_resumable, PlpOutcome, TrainOptions};
use plp_obs::Observer;

const SEED: u64 = 42;
/// First run pins the sequential baseline; the second uses `threads: 0`
/// (auto), which clamps to the host's `available_parallelism` — a fixed
/// `4` oversubscribed single-core CI hosts (local_sgd took ~2× the
/// sequential wall there, pure scheduler churn).
const THREAD_COUNTS: [usize; 2] = [1, 0];

struct Opts {
    smoke: bool,
    out: String,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    Opts {
        smoke: args.iter().any(|a| a == "--smoke"),
        out: flag("--out").unwrap_or_else(|| "BENCH_train.json".to_string()),
    }
}

/// One PASS/FAIL check line; returns the verdict so main can aggregate.
fn check(ok: bool, what: &str) -> bool {
    println!("{} {what}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// `(phase, count, p50, p95, total_ms)` rows of one run's breakdown.
type PhaseRows = Vec<(String, u64, f64, f64, f64)>;

/// Snapshots every phase of `plp_train_phase_ms{phase=…}` and prints a
/// breakdown table; returns `(phase, count, p50, p95, total_ms)` rows.
fn phase_breakdown(obs: &Observer) -> PhaseRows {
    let registry = obs.registry().expect("enabled observer");
    let mut rows = Vec::new();
    println!("  plp_train_phase_ms breakdown:");
    for phase in [
        "sample",
        "group",
        "local_sgd",
        "clip",
        "noise",
        "server_update",
        "accountant",
        "eval",
        "checkpoint",
    ] {
        let h = registry
            .histogram_with("plp_train_phase_ms", Some(("phase", phase)))
            .snapshot();
        if h.count() == 0 {
            continue;
        }
        let p50 = h.quantile(0.5).unwrap_or(0.0);
        let p95 = h.quantile(0.95).unwrap_or(0.0);
        println!(
            "    {phase:<14} n={:<6} p50={:.3}ms p95={:.3}ms total={:.1}ms",
            h.count(),
            p50,
            p95,
            h.sum()
        );
        rows.push((phase.to_string(), h.count(), p50, p95, h.sum()));
    }
    rows
}

/// One measured run: the outcome, its observer (for counters/histograms)
/// and throughput figures.
struct Measured {
    threads: usize,
    /// What `threads` resolved to (`threads: 0` is the auto mode).
    resolved: usize,
    outcome: PlpOutcome,
    observer: Observer,
    steps_per_sec: f64,
    examples_per_sec: f64,
    pairs: u64,
}

fn run_at(threads: usize, prep: &PreparedData, hp: &Hyperparameters) -> Measured {
    let mut hp = hp.clone();
    hp.threads = threads;
    let resolved = hp.effective_threads();
    let observer = Observer::new("train_throughput");
    let opts = TrainOptions {
        observer: observer.clone(),
        ..TrainOptions::default()
    };
    println!(
        "train_throughput: threads={threads} (resolved {resolved}), max_steps={}",
        hp.max_steps
    );
    let outcome = train_plp_resumable(SEED, &prep.train, Some(&prep.validation), &hp, &opts)
        .expect("training run");
    let wall_s = outcome.summary.total_wall_ms / 1e3;
    let pairs = observer.counter("plp_train_pairs_total").get();
    let steps_per_sec = outcome.summary.steps as f64 / wall_s.max(1e-9);
    let examples_per_sec = pairs as f64 / wall_s.max(1e-9);
    println!(
        "  steps={} wall={:.1}ms steps/s={:.2} pairs={} examples/s={:.0}",
        outcome.summary.steps,
        outcome.summary.total_wall_ms,
        steps_per_sec,
        pairs,
        examples_per_sec
    );
    Measured {
        threads,
        resolved,
        outcome,
        observer,
        steps_per_sec,
        examples_per_sec,
        pairs,
    }
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let mut ok = true;

    // Scale::Bench data, but with a deliberately enlarged model: more
    // locations and a wider embedding put real weight behind the dense
    // noise / server_update phases this benchmark gates (the default
    // bench model is so small their wall-clock share is pure jitter).
    // Local overrides only — Scale::Bench itself stays tiny because the
    // chaos drill, the serve benches and the criterion targets use it.
    let mut config = Scale::Bench.experiment_config(SEED);
    config.generator.num_locations = 1_600;
    config.generator.target_checkins = 24_000;
    config.generator.num_clusters = 16;
    let mut hp = Scale::Bench.hyperparameters();
    hp.embedding_dim = 32;
    hp.max_steps = if opts.smoke { 6 } else { 30 };
    hp.eval_every = 3;
    let prep = PreparedData::generate(&config).expect("prepare data");
    println!(
        "train_throughput: vocab={} embedding_dim={}",
        prep.vocab_size(),
        hp.embedding_dim
    );

    let runs: Vec<Measured> = THREAD_COUNTS
        .iter()
        .map(|&t| run_at(t, &prep, &hp))
        .collect();

    // Thread-count invariance: the whole point of the fixed-order kernels
    // and the ordered bucket/eval reductions. A single differing bit here
    // means a nondeterministic reduction crept into the hot path.
    let reference = &runs[0];
    for run in &runs[1..] {
        ok &= check(
            run.outcome.params == reference.outcome.params,
            &format!(
                "params at threads={} bit-identical to threads={}",
                run.threads, reference.threads
            ),
        );
        ok &= check(
            run.pairs == reference.pairs,
            &format!(
                "pair count at threads={} ({}) matches threads={} ({})",
                run.threads, run.pairs, reference.threads, reference.pairs
            ),
        );
    }
    ok &= check(
        runs.iter()
            .all(|r| r.outcome.summary.steps > 0 && r.pairs > 0),
        "every run executed steps and trained on pairs",
    );
    // Validation HR@10 telemetry (threaded eval) must agree across thread
    // counts too — the eval fan-out has its own ordered reduction.
    let hr = |m: &Measured| -> Vec<Option<f64>> {
        m.outcome
            .telemetry
            .iter()
            .map(|t| t.validation_hr10)
            .collect()
    };
    for run in &runs[1..] {
        ok &= check(
            hr(run) == hr(reference),
            &format!(
                "validation HR@10 series at threads={} matches threads={}",
                run.threads, reference.threads
            ),
        );
    }

    // Phase breakdowns and the dense-phase (noise + server_update) share
    // of wall-clock per run — the quantity the threaded noise streams and
    // server update exist to shrink.
    let breakdowns: Vec<PhaseRows> = runs
        .iter()
        .map(|r| {
            println!("threads={}:", r.threads);
            phase_breakdown(&r.observer)
        })
        .collect();
    // The local_sgd phase is the single biggest slice of the step loop;
    // its count and wall total feed the --train bench gate.
    let local_sgd: Vec<(u64, f64)> = breakdowns
        .iter()
        .map(|rows| {
            rows.iter()
                .find(|(phase, ..)| phase == "local_sgd")
                .map_or((0, 0.0), |&(_, n, _, _, total)| (n, total))
        })
        .collect();
    let noise_server_ms: Vec<f64> = breakdowns
        .iter()
        .map(|rows| {
            rows.iter()
                .filter(|(phase, ..)| phase == "noise" || phase == "server_update")
                .map(|(.., total)| *total)
                .sum()
        })
        .collect();
    let shares: Vec<f64> = runs
        .iter()
        .zip(&noise_server_ms)
        .map(|(r, ms)| ms / r.outcome.summary.total_wall_ms.max(1e-9))
        .collect();
    for (r, ((ms, share), (sgd_n, sgd_ms))) in runs
        .iter()
        .zip(noise_server_ms.iter().zip(&shares).zip(&local_sgd))
    {
        println!(
            "  threads={}: noise+server_update {:.2}ms of {:.1}ms wall (share {:.1}%), \
             local_sgd n={} {:.1}ms (share {:.1}%)",
            r.threads,
            ms,
            r.outcome.summary.total_wall_ms,
            share * 100.0,
            sgd_n,
            sgd_ms,
            sgd_ms / r.outcome.summary.total_wall_ms.max(1e-9) * 100.0
        );
    }
    // The regression gate: at threads=4 the dense phases must take a
    // *smaller* slice of the run than at threads=1. Full runs only —
    // smoke's 6 steps are too few for stable timing shares. On a host
    // with a single hardware thread a parallel speedup is physically
    // impossible (every run serialises onto one core), so there the gate
    // degrades to an overhead bound: the threaded dense phases may not
    // cost more than a sliver over their sequential share.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if !opts.smoke {
        for (run, share) in runs.iter().zip(&shares).skip(1) {
            if cores >= 2 {
                ok &= check(
                    *share < shares[0],
                    &format!(
                        "noise+server share at threads={} ({:.2}%) below threads={} ({:.2}%)",
                        run.resolved,
                        share * 100.0,
                        reference.resolved,
                        shares[0] * 100.0
                    ),
                );
            } else {
                ok &= check(
                    *share <= shares[0] * 1.25 + 0.02,
                    &format!(
                        "noise+server share at threads={} ({:.2}%) within the \
                         single-core overhead bound of threads={} ({:.2}%)",
                        run.resolved,
                        share * 100.0,
                        reference.resolved,
                        shares[0] * 100.0
                    ),
                );
            }
        }
    }

    let per_run: Vec<serde_json::Value> = runs
        .iter()
        .zip(
            breakdowns
                .iter()
                .zip(noise_server_ms.iter().zip(&shares).zip(&local_sgd)),
        )
        .map(|(r, (rows, ((ns_ms, share), (sgd_n, sgd_ms))))| {
            serde_json::json!({
                "threads": r.threads,
                "resolved_threads": r.resolved,
                "steps": r.outcome.summary.steps,
                "wall_ms": r.outcome.summary.total_wall_ms,
                "steps_per_sec": r.steps_per_sec,
                "pairs": r.pairs,
                "examples_per_sec": r.examples_per_sec,
                "epsilon_spent": r.outcome.summary.epsilon_spent,
                "noise_server_total_ms": *ns_ms,
                "noise_server_share": *share,
                "local_sgd_count": *sgd_n,
                "local_sgd_total_ms": *sgd_ms,
                "local_sgd_share": *sgd_ms / r.outcome.summary.total_wall_ms.max(1e-9),
                "phases": serde_json::Value::Array(
                    rows.iter()
                        .map(|(phase, n, p50, p95, total)| {
                            serde_json::json!({
                                "phase": phase.clone(),
                                "count": *n,
                                "p50_ms": *p50,
                                "p95_ms": *p95,
                                "total_ms": *total,
                            })
                        })
                        .collect(),
                ),
            })
        })
        .collect();

    let payload = serde_json::json!({
        "bench": "train_throughput",
        "seed": SEED,
        "smoke": opts.smoke,
        "max_steps": hp.max_steps,
        "embedding_dim": hp.embedding_dim,
        "vocab": prep.vocab_size(),
        "available_parallelism": cores,
        "kernel_scheme_version": KERNEL_SCHEME_VERSION,
        "runs": serde_json::Value::Array(per_run),
        "thread_invariant": ok,
        "all_checks_passed": ok,
    });
    let text = serde_json::to_string_pretty(&payload).expect("serialise payload");
    std::fs::write(&opts.out, text).expect("write output");
    println!("train_throughput: wrote {}", opts.out);

    if ok {
        println!("train_throughput: all checks passed");
        ExitCode::SUCCESS
    } else {
        println!("train_throughput: CHECKS FAILED");
        ExitCode::FAILURE
    }
}
