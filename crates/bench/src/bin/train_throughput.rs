//! Training-throughput benchmark: runs the same seeded private training
//! run at `threads ∈ {1, 4}`, reports steps/sec, examples/sec (from the
//! `plp_train_pairs_total` counter) and the `plp_train_phase_ms` phase
//! breakdown per thread count, and **asserts thread-count invariance**:
//! the trained parameters must be bit-identical at every thread count —
//! the determinism contract of the unrolled kernels and the strided
//! bucket/eval partitions (see DESIGN.md §11).
//!
//! Usage:
//!   cargo run --release -p plp-bench --bin train_throughput            # full run
//!   cargo run --release -p plp-bench --bin train_throughput -- --smoke # CI smoke
//!   ... -- --out path.json        # report path (default BENCH_train.json)
//!
//! Exits non-zero if any check fails (in particular, if threading changes
//! the trained model by even one bit).

use std::process::ExitCode;

use plp_bench::runner::Scale;
use plp_core::config::Hyperparameters;
use plp_core::experiment::PreparedData;
use plp_core::plp::{train_plp_resumable, PlpOutcome, TrainOptions};
use plp_obs::Observer;

const SEED: u64 = 42;
const THREAD_COUNTS: [usize; 2] = [1, 4];

struct Opts {
    smoke: bool,
    out: String,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    Opts {
        smoke: args.iter().any(|a| a == "--smoke"),
        out: flag("--out").unwrap_or_else(|| "BENCH_train.json".to_string()),
    }
}

/// One PASS/FAIL check line; returns the verdict so main can aggregate.
fn check(ok: bool, what: &str) -> bool {
    println!("{} {what}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// Snapshots every phase of `plp_train_phase_ms{phase=…}` and prints a
/// breakdown table; returns `(phase, count, p50, p95, total_ms)` rows.
fn phase_breakdown(obs: &Observer) -> Vec<(String, u64, f64, f64, f64)> {
    let registry = obs.registry().expect("enabled observer");
    let mut rows = Vec::new();
    println!("  plp_train_phase_ms breakdown:");
    for phase in [
        "sample",
        "group",
        "local_sgd",
        "clip",
        "noise",
        "server_update",
        "accountant",
        "eval",
        "checkpoint",
    ] {
        let h = registry
            .histogram_with("plp_train_phase_ms", Some(("phase", phase)))
            .snapshot();
        if h.count() == 0 {
            continue;
        }
        let p50 = h.quantile(0.5).unwrap_or(0.0);
        let p95 = h.quantile(0.95).unwrap_or(0.0);
        println!(
            "    {phase:<14} n={:<6} p50={:.3}ms p95={:.3}ms total={:.1}ms",
            h.count(),
            p50,
            p95,
            h.sum()
        );
        rows.push((phase.to_string(), h.count(), p50, p95, h.sum()));
    }
    rows
}

/// One measured run: the outcome, its observer (for counters/histograms)
/// and throughput figures.
struct Measured {
    threads: usize,
    outcome: PlpOutcome,
    observer: Observer,
    steps_per_sec: f64,
    examples_per_sec: f64,
    pairs: u64,
}

fn run_at(threads: usize, prep: &PreparedData, hp: &Hyperparameters) -> Measured {
    let mut hp = hp.clone();
    hp.threads = threads;
    let observer = Observer::new("train_throughput");
    let opts = TrainOptions {
        observer: observer.clone(),
        ..TrainOptions::default()
    };
    println!(
        "train_throughput: threads={threads}, max_steps={}",
        hp.max_steps
    );
    let outcome = train_plp_resumable(SEED, &prep.train, Some(&prep.validation), &hp, &opts)
        .expect("training run");
    let wall_s = outcome.summary.total_wall_ms / 1e3;
    let pairs = observer.counter("plp_train_pairs_total").get();
    let steps_per_sec = outcome.summary.steps as f64 / wall_s.max(1e-9);
    let examples_per_sec = pairs as f64 / wall_s.max(1e-9);
    println!(
        "  steps={} wall={:.1}ms steps/s={:.2} pairs={} examples/s={:.0}",
        outcome.summary.steps,
        outcome.summary.total_wall_ms,
        steps_per_sec,
        pairs,
        examples_per_sec
    );
    Measured {
        threads,
        outcome,
        observer,
        steps_per_sec,
        examples_per_sec,
        pairs,
    }
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let mut ok = true;

    let config = Scale::Bench.experiment_config(SEED);
    let mut hp = Scale::Bench.hyperparameters();
    hp.max_steps = if opts.smoke { 6 } else { 30 };
    hp.eval_every = 3;
    let prep = PreparedData::generate(&config).expect("prepare data");

    let runs: Vec<Measured> = THREAD_COUNTS
        .iter()
        .map(|&t| run_at(t, &prep, &hp))
        .collect();

    // Thread-count invariance: the whole point of the fixed-order kernels
    // and the ordered bucket/eval reductions. A single differing bit here
    // means a nondeterministic reduction crept into the hot path.
    let reference = &runs[0];
    for run in &runs[1..] {
        ok &= check(
            run.outcome.params == reference.outcome.params,
            &format!(
                "params at threads={} bit-identical to threads={}",
                run.threads, reference.threads
            ),
        );
        ok &= check(
            run.pairs == reference.pairs,
            &format!(
                "pair count at threads={} ({}) matches threads={} ({})",
                run.threads, run.pairs, reference.threads, reference.pairs
            ),
        );
    }
    ok &= check(
        runs.iter()
            .all(|r| r.outcome.summary.steps > 0 && r.pairs > 0),
        "every run executed steps and trained on pairs",
    );
    // Validation HR@10 telemetry (threaded eval) must agree across thread
    // counts too — the eval fan-out has its own ordered reduction.
    let hr = |m: &Measured| -> Vec<Option<f64>> {
        m.outcome
            .telemetry
            .iter()
            .map(|t| t.validation_hr10)
            .collect()
    };
    for run in &runs[1..] {
        ok &= check(
            hr(run) == hr(reference),
            &format!(
                "validation HR@10 series at threads={} matches threads={}",
                run.threads, reference.threads
            ),
        );
    }

    let per_run: Vec<serde_json::Value> = runs
        .iter()
        .map(|r| {
            let rows = phase_breakdown(&r.observer);
            serde_json::json!({
                "threads": r.threads,
                "steps": r.outcome.summary.steps,
                "wall_ms": r.outcome.summary.total_wall_ms,
                "steps_per_sec": r.steps_per_sec,
                "pairs": r.pairs,
                "examples_per_sec": r.examples_per_sec,
                "epsilon_spent": r.outcome.summary.epsilon_spent,
                "phases": serde_json::Value::Array(
                    rows.iter()
                        .map(|(phase, n, p50, p95, total)| {
                            serde_json::json!({
                                "phase": phase.clone(),
                                "count": *n,
                                "p50_ms": *p50,
                                "p95_ms": *p95,
                                "total_ms": *total,
                            })
                        })
                        .collect(),
                ),
            })
        })
        .collect();

    let payload = serde_json::json!({
        "bench": "train_throughput",
        "seed": SEED,
        "smoke": opts.smoke,
        "max_steps": hp.max_steps,
        "embedding_dim": hp.embedding_dim,
        "runs": serde_json::Value::Array(per_run),
        "thread_invariant": ok,
        "all_checks_passed": ok,
    });
    let text = serde_json::to_string_pretty(&payload).expect("serialise payload");
    std::fs::write(&opts.out, text).expect("write output");
    println!("train_throughput: wrote {}", opts.out);

    if ok {
        println!("train_throughput: all checks passed");
        ExitCode::SUCCESS
    } else {
        println!("train_throughput: CHECKS FAILED");
        ExitCode::FAILURE
    }
}
