//! Hot-swap chaos drill: proves the PLPS zero-copy serving stack swaps
//! model generations under live traffic without ever dropping, tearing or
//! mis-answering a query, and that a mapped generation is bit-identical to
//! a fresh in-memory engine on every scoring path (dense, IVF, quantized).
//!
//! Drills:
//! 1. mapped/owned/fresh engine identity — one published bundle opened via
//!    mmap and via the owned fallback, served through dense, partial-probe
//!    IVF, full-probe IVF and quantized engines; every result must be
//!    bit-identical to the fresh in-memory engine,
//! 2. torn writer — a publisher killed mid-publish (stray tmp file,
//!    pointer at a missing file, pointer at a truncated file) must never
//!    move traffic off the serving generation,
//! 3. corrupt candidate — header and body bit flips are rejected with
//!    typed reasons while the old generation keeps serving bit-identically,
//! 4. swap hammer — 50 published generations (10 with `--smoke`) swapped
//!    under concurrent query threads; every response must match the
//!    sequential reference of the generation that answered it.
//!
//! Usage: `cargo run --release -p plp-bench --bin swap_chaos [-- --smoke]`
//!
//! Exits non-zero if any drill fails, so it can gate CI.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use plp_model::params::ModelParams;
use plp_model::plps::PlpsSnapshot;
use plp_model::Recommender;
use plp_obs::Observer;
use plp_serve::swap::{
    generation_file_name, publish_generation, GenerationWatcher, HotSwapServer, ModelGeneration,
    SwapOutcome, CURRENT_POINTER,
};
use plp_serve::{AnnConfig, BatchEngine, Query, ServeConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SEED: u64 = 0x5AFE;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plp_swap_chaos_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn check(name: &str, ok: bool, detail: &str) -> bool {
    println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn recommender(vocab: usize, dim: usize, seed: u64) -> Recommender {
    let mut rng = StdRng::seed_from_u64(seed);
    Recommender::new(&ModelParams::init(&mut rng, vocab, dim).expect("init params"))
}

fn queries(vocab: usize, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = rng.random_range(1usize..=4);
            let recent: Vec<usize> = (0..len).map(|_| rng.random_range(0..vocab)).collect();
            if i % 2 == 0 {
                Query::new(recent, 8)
            } else {
                let exclude = recent.clone();
                Query::with_exclusions(recent, 8, exclude)
            }
        })
        .collect()
}

fn sequential_reference(rec: &Recommender, queries: &[Query]) -> Vec<Vec<usize>> {
    queries
        .iter()
        .map(|q| {
            if q.exclude.is_empty() {
                rec.recommend(&q.recent, q.k).expect("recommend")
            } else {
                rec.recommend_excluding(&q.recent, q.k, &q.exclude)
                    .expect("recommend_excluding")
            }
        })
        .collect()
}

/// Drill 1: a published bundle served zero-copy (and via the owned
/// fallback) must be bit-identical to a fresh in-memory engine on every
/// scoring path.
fn drill_identity(smoke: bool) -> bool {
    println!("== drill 1: mapped/owned/fresh bit-identity ==");
    let vocab = if smoke { 400 } else { 1500 };
    let dim = 12;
    let rec = recommender(vocab, dim, SEED);
    let dir = scratch("identity");
    let path = publish_generation(&dir, rec.embedding(), 1).expect("publish");

    let mapped = PlpsSnapshot::open_mapped(&path).expect("open mapped");
    let owned = PlpsSnapshot::open_owned(&path).expect("open owned");
    mapped.validate().expect("validate mapped");
    owned.validate().expect("validate owned");
    let mut ok = check(
        "sources",
        mapped.is_mapped() && !owned.is_mapped(),
        "mmap open and owned fallback both available",
    );
    let bits_identical = mapped
        .embedding()
        .expect("mapped embedding")
        .as_slice()
        .iter()
        .zip(rec.embedding().as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    ok &= check(
        "embedding bits",
        bits_identical,
        "mapped bytes identical to publisher",
    );

    let ann = AnnConfig {
        cells: 8,
        nprobe: 3,
        kmeans_iters: 4,
        kmeans_sample: vocab,
        seed: SEED ^ 0x1F,
        build_threads: 2,
        quantized: false,
        overfetch: 4,
    };
    let configs: Vec<(&str, ServeConfig)> = vec![
        (
            "dense",
            ServeConfig {
                max_batch: 16,
                workers: 2,
                cache_capacity: 128,
                ann: None,
            },
        ),
        (
            "ivf",
            ServeConfig {
                max_batch: 16,
                workers: 2,
                cache_capacity: 128,
                ann: Some(ann),
            },
        ),
        (
            "ivf full-probe",
            ServeConfig {
                max_batch: 16,
                workers: 2,
                cache_capacity: 128,
                ann: Some(AnnConfig {
                    nprobe: ann.cells,
                    ..ann
                }),
            },
        ),
        (
            "quantized",
            ServeConfig {
                max_batch: 16,
                workers: 2,
                cache_capacity: 128,
                ann: Some(AnnConfig {
                    quantized: true,
                    ..ann
                }),
            },
        ),
    ];
    let qs = queries(vocab, if smoke { 96 } else { 256 }, SEED ^ 0xA);
    for (name, cfg) in configs {
        let fresh = BatchEngine::new(rec.clone(), cfg).expect("fresh engine");
        let em = BatchEngine::new(mapped.recommender().expect("mapped rec"), cfg)
            .expect("mapped engine");
        let eo =
            BatchEngine::new(owned.recommender().expect("owned rec"), cfg).expect("owned engine");
        let want = fresh.serve(&qs).expect("fresh serve");
        let got_m = em.serve(&qs).expect("mapped serve");
        let got_o = eo.serve(&qs).expect("owned serve");
        ok &= check(
            name,
            got_m == want && got_o == want,
            "mapped and owned engines bit-identical to fresh",
        );
    }
    ok
}

/// Drill 2: publisher killed mid-publish. Whatever partial state it left
/// behind, the watcher must keep serving the old generation.
fn drill_torn_writer() -> bool {
    println!("== drill 2: torn writer ==");
    let vocab = 300;
    let rec = recommender(vocab, 8, SEED ^ 1);
    let dir = scratch("torn");
    publish_generation(&dir, rec.embedding(), 1).expect("publish gen 1");
    let cfg = ServeConfig {
        max_batch: 8,
        workers: 2,
        cache_capacity: 64,
        ann: None,
    };
    let server = Arc::new(HotSwapServer::new(
        ModelGeneration::load(&dir.join(generation_file_name(1)), cfg).expect("load gen 1"),
    ));
    let watcher = GenerationWatcher::new(&dir, cfg, Arc::clone(&server), Observer::disabled());
    let qs = queries(vocab, 32, SEED ^ 2);
    let want = sequential_reference(&rec, &qs);
    let serving_ok = |server: &HotSwapServer| -> bool {
        match server.serve_pinned(&qs) {
            Ok((gen, got)) => gen == 1 && got == want,
            Err(_) => false,
        }
    };

    // Killed before the bundle finished: a stray half-written tmp file,
    // pointer untouched.
    std::fs::write(dir.join("gen-00000000000000000002.tmp"), [0u8; 999]).expect("write tmp");
    let mut ok = check(
        "stray tmp",
        watcher.poll_once() == SwapOutcome::Unchanged && serving_ok(&server),
        "half-written tmp file ignored, old generation serves",
    );

    // Killed between pointer tmp and bundle write ordering violation:
    // pointer names a file that does not exist.
    std::fs::write(dir.join(CURRENT_POINTER), "gen-00000000000000000003.plps")
        .expect("write pointer");
    let rejected_io = matches!(
        watcher.poll_once(),
        SwapOutcome::Rejected { ref kind, .. } if kind == "io"
    );
    ok &= check(
        "missing target",
        rejected_io && serving_ok(&server),
        "pointer at missing file rejected as io, old generation serves",
    );

    // Killed mid-write with a non-atomic copy: pointer at a truncated file.
    let pristine = std::fs::read(dir.join(generation_file_name(1))).expect("read gen 1");
    std::fs::write(
        dir.join("gen-00000000000000000004.plps"),
        &pristine[..pristine.len() / 2],
    )
    .expect("write truncated");
    std::fs::write(dir.join(CURRENT_POINTER), "gen-00000000000000000004.plps")
        .expect("write pointer");
    let rejected_trunc = matches!(
        watcher.poll_once(),
        SwapOutcome::Rejected { ref kind, .. } if kind.starts_with("truncated")
    );
    ok &= check(
        "truncated target",
        rejected_trunc && serving_ok(&server),
        "pointer at truncated file rejected typed, old generation serves",
    );

    // The writer retries and completes: the same watcher then swaps.
    let rec2 = recommender(vocab, 8, SEED ^ 3);
    publish_generation(&dir, rec2.embedding(), 5).expect("publish gen 5");
    let swapped = matches!(
        watcher.poll_once(),
        SwapOutcome::Swapped { from: 1, to: 5, .. }
    );
    ok &= check(
        "recovery",
        swapped && server.generation() == 5,
        "completed publish swaps after the torn attempts",
    );
    ok
}

/// Drill 3: corrupt candidates (bit flips) are rejected with typed reasons
/// and never reach traffic.
fn drill_corrupt_candidate() -> bool {
    println!("== drill 3: corrupt candidate ==");
    let vocab = 300;
    let rec = recommender(vocab, 8, SEED ^ 4);
    let next = recommender(vocab, 8, SEED ^ 5);
    let dir = scratch("corrupt");
    publish_generation(&dir, rec.embedding(), 1).expect("publish gen 1");
    let cfg = ServeConfig {
        max_batch: 8,
        workers: 2,
        cache_capacity: 64,
        ann: None,
    };
    let server = Arc::new(HotSwapServer::new(
        ModelGeneration::load(&dir.join(generation_file_name(1)), cfg).expect("load gen 1"),
    ));
    let watcher = GenerationWatcher::new(&dir, cfg, Arc::clone(&server), Observer::disabled());
    let qs = queries(vocab, 32, SEED ^ 6);
    let want = sequential_reference(&rec, &qs);

    let path = publish_generation(&dir, next.embedding(), 2).expect("publish gen 2");
    let pristine = std::fs::read(&path).expect("read gen 2");

    // Header flip (inside the CRC-covered block).
    let mut raw = pristine.clone();
    raw[9] ^= 0x40;
    std::fs::write(&path, &raw).expect("write header flip");
    let header_rejected = matches!(
        watcher.poll_once(),
        SwapOutcome::Rejected { ref kind, .. } if kind == "bad_crc" || kind == "bad_magic" || kind == "bad_version"
    );
    let (gen, got) = server.serve_pinned(&qs).expect("serve after header flip");
    let mut ok = check(
        "header flip",
        header_rejected && gen == 1 && got == want,
        "typed reject, old generation bit-identical",
    );

    // Body flip (header intact, body CRC must catch it).
    let mut raw = pristine.clone();
    let at = raw.len() - 11;
    raw[at] ^= 0x04;
    std::fs::write(&path, &raw).expect("write body flip");
    let body_rejected = matches!(
        watcher.poll_once(),
        SwapOutcome::Rejected { ref kind, .. } if kind == "bad_crc"
    );
    let (gen, got) = server.serve_pinned(&qs).expect("serve after body flip");
    ok &= check(
        "body flip",
        body_rejected && gen == 1 && got == want,
        "body CRC reject, old generation bit-identical",
    );

    // Restore the pristine bundle: it must now swap and serve the new
    // model bit-identically to a fresh engine.
    std::fs::write(&path, &pristine).expect("restore");
    let swapped = matches!(watcher.poll_once(), SwapOutcome::Swapped { to: 2, .. });
    let want_next = sequential_reference(&next, &qs);
    let (gen, got) = server.serve_pinned(&qs).expect("serve after swap");
    ok &= check(
        "repaired swap",
        swapped && gen == 2 && got == want_next,
        "pristine candidate swaps and serves bit-identically",
    );
    ok
}

/// Drill 4: hammer — many generations published and swapped under
/// concurrent query threads; every answer must match the sequential
/// reference of the generation that produced it.
fn drill_hammer(smoke: bool) -> bool {
    println!("== drill 4: swap hammer ==");
    let swaps = if smoke { 10 } else { 50 };
    let vocab = if smoke { 300 } else { 600 };
    let dim = 8;
    let dir = scratch("hammer");
    let cfg = ServeConfig {
        max_batch: 16,
        workers: 2,
        cache_capacity: 256,
        ann: None,
    };
    let qs = Arc::new(queries(vocab, 48, SEED ^ 7));

    // Generation g gets its own model; expected results precomputed from
    // the sequential recommender so every in-flight answer is checkable.
    let recs: Vec<Recommender> = (1..=swaps as u64 + 1)
        .map(|g| recommender(vocab, dim, SEED ^ (0x100 + g)))
        .collect();
    let expected: Arc<HashMap<u64, Vec<Vec<usize>>>> = Arc::new(
        recs.iter()
            .enumerate()
            .map(|(i, r)| (i as u64 + 1, sequential_reference(r, &qs)))
            .collect(),
    );

    publish_generation(&dir, recs[0].embedding(), 1).expect("publish gen 1");
    let server = Arc::new(HotSwapServer::new(
        ModelGeneration::load(&dir.join(generation_file_name(1)), cfg).expect("load gen 1"),
    ));
    let watcher = GenerationWatcher::new(&dir, cfg, Arc::clone(&server), Observer::disabled());

    let done = Arc::new(AtomicBool::new(false));
    let dropped = Arc::new(AtomicU64::new(0));
    let torn = Arc::new(AtomicU64::new(0));
    let answered = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let server = Arc::clone(&server);
            let qs = Arc::clone(&qs);
            let expected = Arc::clone(&expected);
            let done = Arc::clone(&done);
            let dropped = Arc::clone(&dropped);
            let torn = Arc::clone(&torn);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    match server.serve_pinned(&qs) {
                        Ok((gen, got)) => {
                            answered.fetch_add(got.len() as u64, Ordering::Relaxed);
                            match expected.get(&gen) {
                                Some(want) if *want == got => {}
                                _ => {
                                    torn.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => {
                            dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    // Publish-and-confirm loop: each generation is published, then the
    // watcher (on this thread) is polled until it swaps — queries hammer
    // the server the whole time.
    let mut observed_swaps = 0usize;
    for g in 2..=swaps as u64 + 1 {
        publish_generation(&dir, recs[g as usize - 1].embedding(), g).expect("publish");
        loop {
            match watcher.poll_once() {
                SwapOutcome::Swapped { to, .. } => {
                    assert_eq!(to, g, "swapped onto the generation just published");
                    observed_swaps += 1;
                    break;
                }
                SwapOutcome::Unchanged => std::thread::yield_now(),
                other => panic!("hammer publish must swap, got {other:?}"),
            }
        }
    }
    done.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().expect("query thread");
    }

    let dropped = dropped.load(Ordering::Relaxed);
    let torn = torn.load(Ordering::Relaxed);
    let answered = answered.load(Ordering::Relaxed);
    let mut ok = check(
        "swaps",
        observed_swaps == swaps,
        &format!("{observed_swaps}/{swaps} generations swapped under load"),
    );
    ok &= check(
        "dropped",
        dropped == 0,
        &format!("{dropped} dropped (errored) waves across {answered} answers"),
    );
    ok &= check(
        "torn",
        torn == 0,
        &format!("{torn} waves diverged from their generation's sequential reference"),
    );
    // End state: the final generation serves bit-identically to a fresh
    // engine over the same model.
    let fresh = BatchEngine::new(recs[swaps].clone(), cfg).expect("fresh final engine");
    let want = fresh.serve(&qs).expect("fresh final serve");
    let (gen, got) = server.serve_pinned(&qs).expect("final serve");
    ok &= check(
        "final generation",
        gen == swaps as u64 + 1 && got == want,
        "post-hammer server bit-identical to a fresh engine",
    );
    ok
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut all_ok = true;
    all_ok &= drill_identity(smoke);
    all_ok &= drill_torn_writer();
    all_ok &= drill_corrupt_candidate();
    all_ok &= drill_hammer(smoke);
    if all_ok {
        println!("swap_chaos: all drills passed");
        ExitCode::SUCCESS
    } else {
        println!("swap_chaos: FAILURES detected");
        ExitCode::FAILURE
    }
}
