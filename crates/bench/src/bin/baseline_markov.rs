//! Related-work baseline sweep (§6): order-1 Markov chain, user-level
//! DP-Markov (perturbed counts, as in Zhang et al. [63]), popularity, and
//! the skip-gram models, all under the same leave-one-out HR@k harness.
//!
//! Usage: `cargo run --release -p plp-bench --bin baseline_markov
//! [--scale bench|figure] [--seed N]`

use rand::rngs::StdRng;
use rand::SeedableRng;

use plp_bench::cli::parse_args;
use plp_bench::runner::Scale;
use plp_core::experiment::PreparedData;
use plp_core::nonprivate::{train_nonprivate, NonPrivateConfig};
use plp_core::plp::train_plp;
use plp_model::markov::{DpMarkovRecommender, MarkovRecommender};
use plp_model::metrics::{evaluate_hit_rate, popularity_hit_rate, token_counts};
use plp_model::Recommender;
use plp_privacy::PrivacyBudget;

fn main() {
    let opts = parse_args();
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    println!("== baseline comparison (HR@{{5,10,20}} on held-out users) ==");
    println!(
        "dataset: {} users, {} locations, {} check-ins",
        prep.stats.num_users, prep.stats.num_locations, prep.stats.num_checkins
    );
    println!(
        "{:<34} {:>8} {:>8} {:>8}",
        "method", "HR@5", "HR@10", "HR@20"
    );

    let ks = [5usize, 10, 20];
    let mut rows = Vec::new();
    let mut print_row = |name: &str, hr: &[plp_model::metrics::HitRate]| {
        println!(
            "{:<34} {:>8.4} {:>8.4} {:>8.4}",
            name,
            hr[0].rate(),
            hr[1].rate(),
            hr[2].rate()
        );
        rows.push(serde_json::json!({
            "method": name, "hr5": hr[0].rate(), "hr10": hr[1].rate(), "hr20": hr[2].rate(),
        }));
    };

    // Popularity.
    let counts = token_counts(&prep.train);
    let pop = popularity_hit_rate(&counts, &prep.test, &ks);
    print_row("popularity", &pop);

    // Markov (non-private).
    let markov = MarkovRecommender::fit(&prep.train).expect("markov fit");
    let hr = evaluate_hit_rate(&markov, &prep.test, &ks).expect("markov eval");
    print_row("markov (non-private)", &hr);

    // DP-Markov at eps in {1, 2, 4}, per-user cap 20.
    for eps in [1.0, 2.0, 4.0] {
        let mut rng = StdRng::seed_from_u64(opts.seed + 13);
        let dp = DpMarkovRecommender::fit(&mut rng, &prep.train, eps, 20).expect("dp-markov fit");
        let hr = evaluate_hit_rate(&dp, &prep.test, &ks).expect("dp-markov eval");
        print_row(&format!("dp-markov (eps={eps}, cap=20)"), &hr);
    }

    // Skip-gram: non-private + PLP at eps=2.
    let epochs = match opts.scale {
        Scale::Bench => 4,
        Scale::Figure => 20,
    };
    let hp = opts.scale.hyperparameters();
    let mut rng = StdRng::seed_from_u64(opts.seed + 29);
    let np = train_nonprivate(
        &mut rng,
        &prep.train,
        None,
        &hp,
        &NonPrivateConfig {
            epochs,
            ..NonPrivateConfig::default()
        },
    )
    .expect("nonprivate train");
    let hr =
        evaluate_hit_rate(&Recommender::new(&np.params), &prep.test, &ks).expect("nonprivate eval");
    print_row(&format!("skip-gram (non-private, {epochs} ep)"), &hr);

    let mut plp_hp = hp;
    plp_hp.budget = PrivacyBudget {
        epsilon: 2.0,
        delta: 2e-4,
    };
    let mut rng = StdRng::seed_from_u64(opts.seed + 31);
    let plp = train_plp(&mut rng, &prep.train, None, &plp_hp).expect("plp train");
    let hr = evaluate_hit_rate(&Recommender::new(&plp.params), &prep.test, &ks).expect("plp eval");
    print_row(
        &format!("PLP skip-gram (eps=2, λ={})", plp_hp.grouping_factor),
        &hr,
    );

    println!(
        "JSON {}",
        serde_json::json!({"figure": "baseline_markov", "rows": rows})
    );
}
