//! Observability smoke harness: replays one private training run and one
//! serving burst through a **shared** `plp_obs::Observer`, prints the
//! per-phase latency breakdown and the privacy-budget gauge, and asserts
//! the observability contracts end to end:
//!
//! * the JSONL event log parses line by line and brackets the run with
//!   `run_start` / `run_end`,
//! * the terminal `plp_epsilon_spent` gauge is **bit-identical** to
//!   `RunSummary::epsilon_spent`,
//! * serving stays bit-identical to the sequential `Recommender` path
//!   with instrumentation enabled,
//! * histogram quantiles stay within the documented one-bucket-width
//!   error against an exact reference,
//! * the Prometheus rendering carries phase histograms for **both**
//!   training and serving.
//!
//! Usage:
//!   cargo run --release -p plp-bench --bin obs_report            # full run
//!   cargo run --release -p plp-bench --bin obs_report -- --smoke # CI smoke
//!   ... -- --out path.json        # report path (default BENCH_obs.json)
//!   ... -- --log path.jsonl       # event log (default BENCH_obs_events.jsonl)
//!
//! Exits non-zero if any check fails.

use std::process::ExitCode;

use plp_bench::runner::Scale;
use plp_core::experiment::PreparedData;
use plp_core::plp::{train_plp_resumable, TrainOptions};
use plp_model::metrics::leave_one_out_trials;
use plp_model::Recommender;
use plp_obs::{Histogram, Observer};
use plp_serve::{BatchEngine, Query, ServeConfig};

const SEED: u64 = 42;
const TOP_K: usize = 10;

struct Opts {
    smoke: bool,
    out: String,
    log: String,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    Opts {
        smoke: args.iter().any(|a| a == "--smoke"),
        out: flag("--out").unwrap_or_else(|| "BENCH_obs.json".to_string()),
        log: flag("--log").unwrap_or_else(|| "BENCH_obs_events.jsonl".to_string()),
    }
}

/// One PASS/FAIL check line; returns the verdict so main can aggregate.
fn check(ok: bool, what: &str) -> bool {
    println!("{} {what}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// Exact nearest-rank percentile over raw samples (the reference the
/// histogram quantile is checked against).
fn exact_quantile(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(f64::total_cmp);
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Asserts `Histogram::quantile` stays within its documented error bound
/// — the result never undershoots the exact value and overshoots by at
/// most one sub-bucket width (12.5% relative) — on a deterministic
/// long-tailed latency-like distribution.
fn histogram_error_check() -> bool {
    let mut h = Histogram::new();
    let mut samples = Vec::new();
    let mut x = 0.137f64;
    for i in 0..10_000 {
        // Deterministic mix of a short head and a heavy tail.
        x = (x * 1_103.515_245 + 12.345).rem_euclid(997.0);
        let v = if i % 17 == 0 { x * 40.0 } else { x * 0.25 };
        h.record(v);
        samples.push(v);
    }
    let mut ok = true;
    for q in [0.5, 0.9, 0.95, 0.99] {
        let exact = exact_quantile(&mut samples, q);
        let approx = h.quantile(q).expect("non-empty histogram");
        let within = approx >= exact && approx <= exact * (1.0 + 1.0 / 8.0) + 1e-12;
        ok &= check(
            within,
            &format!("histogram q{q}: approx {approx:.4} vs exact {exact:.4} (≤ 12.5% over)"),
        );
    }
    ok
}

/// Snapshots every phase of `family{phase=…}` and prints a breakdown
/// table; returns `(phase, count, p50, p95, total_ms)` rows for the JSON
/// report.
fn phase_breakdown(
    obs: &Observer,
    family: &str,
    phases: &[&str],
) -> Vec<(String, u64, f64, f64, f64)> {
    let registry = obs.registry().expect("enabled observer");
    let mut rows = Vec::new();
    println!("  {family} breakdown:");
    for phase in phases {
        let h = registry
            .histogram_with(family, Some(("phase", phase)))
            .snapshot();
        if h.count() == 0 {
            continue;
        }
        let p50 = h.quantile(0.5).unwrap_or(0.0);
        let p95 = h.quantile(0.95).unwrap_or(0.0);
        println!(
            "    {phase:<14} n={:<6} p50={:.3}ms p95={:.3}ms total={:.1}ms",
            h.count(),
            p50,
            p95,
            h.sum()
        );
        rows.push((phase.to_string(), h.count(), p50, p95, h.sum()));
    }
    rows
}

fn sequential_reference(rec: &Recommender, queries: &[Query]) -> Vec<Vec<usize>> {
    queries
        .iter()
        .map(|q| {
            if q.exclude.is_empty() {
                rec.recommend(&q.recent, q.k).expect("sequential recommend")
            } else {
                rec.recommend_excluding(&q.recent, q.k, &q.exclude)
                    .expect("sequential recommend_excluding")
            }
        })
        .collect()
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let opts = parse_opts();
    let mut ok = true;

    // The event sink appends (resume semantics); a report run wants a
    // fresh log.
    let _ = std::fs::remove_file(&opts.log);
    let observer = Observer::with_jsonl_file("obs_report", std::path::Path::new(&opts.log))
        .expect("open event log");

    // --- Training leg: one smoke-scale private run, fully instrumented.
    let config = Scale::Bench.experiment_config(SEED);
    let mut hp = Scale::Bench.hyperparameters();
    hp.max_steps = if opts.smoke { 6 } else { 30 };
    hp.eval_every = 3;
    println!(
        "obs_report: training (smoke={}, max_steps={})",
        opts.smoke, hp.max_steps
    );
    let prep = PreparedData::generate(&config).expect("prepare data");
    let train_opts = TrainOptions {
        observer: observer.clone(),
        ..TrainOptions::default()
    };
    let outcome = train_plp_resumable(SEED, &prep.train, Some(&prep.validation), &hp, &train_opts)
        .expect("training run");

    println!(
        "obs_report: {} steps, stop={:?}, ε={:.4} of {:.1} (δ={:.0e})",
        outcome.summary.steps,
        outcome.summary.stop_reason,
        outcome.summary.epsilon_spent,
        hp.budget.epsilon,
        hp.budget.delta
    );
    let train_rows = phase_breakdown(
        &observer,
        "plp_train_phase_ms",
        &[
            "sample",
            "group",
            "local_sgd",
            "clip",
            "noise",
            "server_update",
            "accountant",
            "eval",
            "checkpoint",
        ],
    );
    ok &= check(!train_rows.is_empty(), "training phases recorded");

    // Budget gauge: bit-identical to the run summary.
    let gauge_eps = observer.gauge("plp_epsilon_spent").get();
    ok &= check(
        gauge_eps.to_bits() == outcome.summary.epsilon_spent.to_bits(),
        &format!(
            "ε gauge {gauge_eps} bit-identical to RunSummary.epsilon_spent {}",
            outcome.summary.epsilon_spent
        ),
    );
    ok &= check(
        observer.gauge("plp_epsilon_budget").get().to_bits() == hp.budget.epsilon.to_bits(),
        "ε budget gauge matches configuration",
    );
    ok &= check(
        observer.counter("plp_train_steps_total").get() == outcome.summary.steps,
        "step counter matches executed steps",
    );

    // Privacy burn telemetry: one event per step, burn-rate gauge live.
    ok &= check(
        observer.gauge("plp_privacy_epsilon_burn_rate").get() > 0.0,
        "privacy burn-rate gauge is live",
    );

    // --- Tracing overhead: time the same training run with and without a
    // tracer attached. Min-of-repeats per mode de-flakes scheduler noise;
    // the bench guard holds overhead_frac to its ceiling.
    let timing_repeats = if opts.smoke { 3 } else { 5 };
    println!("obs_report: timing traced vs untraced training ({timing_repeats} repeats each)");
    let run_once = |traced: bool| {
        let obs = Observer::new("obs_timing");
        if traced {
            obs.attach_tracer(plp_obs::trace::TraceConfig::named("obs_report"));
        }
        let topts = TrainOptions {
            observer: obs,
            ..TrainOptions::default()
        };
        let start = std::time::Instant::now();
        let out = train_plp_resumable(SEED, &prep.train, None, &hp, &topts).expect("timing run");
        let per_step_ms = start.elapsed().as_secs_f64() * 1e3 / out.summary.steps as f64;
        (per_step_ms, out)
    };
    let mut untraced_step_ms = f64::INFINITY;
    let mut traced_step_ms = f64::INFINITY;
    let (mut untraced_run, mut traced_run) = (None, None);
    for _ in 0..timing_repeats {
        let (ms, out) = run_once(false);
        untraced_step_ms = untraced_step_ms.min(ms);
        untraced_run = Some(out);
        let (ms, out) = run_once(true);
        traced_step_ms = traced_step_ms.min(ms);
        traced_run = Some(out);
    }
    let (untraced_run, traced_run) = (untraced_run.unwrap(), traced_run.unwrap());
    let overhead_frac = (traced_step_ms - untraced_step_ms) / untraced_step_ms;
    println!(
        "  untraced={untraced_step_ms:.3}ms/step traced={traced_step_ms:.3}ms/step overhead={:.2}%",
        overhead_frac * 100.0
    );
    ok &= check(
        traced_run.params == untraced_run.params
            && traced_run.ledger == untraced_run.ledger
            && traced_run.summary.epsilon_spent.to_bits()
                == untraced_run.summary.epsilon_spent.to_bits(),
        "traced training bit-identical to untraced",
    );

    // --- Serving leg: same observer, so both stacks land in one registry.
    let rec = Recommender::new(&outcome.params);
    let trials = leave_one_out_trials(&prep.test);
    let num_queries = if opts.smoke { 256 } else { 1_024 };
    let queries: Vec<Query> = (0..num_queries)
        .map(|i| {
            let (recent, _) = &trials[i % trials.len()];
            if i % 2 == 0 {
                Query::new(recent.to_vec(), TOP_K)
            } else {
                Query::with_exclusions(recent.to_vec(), TOP_K, recent.to_vec())
            }
        })
        .collect();
    let engine = BatchEngine::with_observer(
        rec.clone(),
        ServeConfig {
            max_batch: 32,
            workers: 4,
            cache_capacity: 1024,
            ann: None,
        },
        observer.clone(),
    )
    .expect("engine config");
    println!("obs_report: serving {num_queries} queries twice (cold + warm)");
    let expected = sequential_reference(&rec, &queries);
    let cold = engine.serve(&queries).expect("cold pass");
    let warm = engine.serve(&queries).expect("warm pass");
    ok &= check(
        cold == expected && warm == expected,
        "instrumented batched serving bit-identical to sequential path",
    );
    let t = engine.telemetry();
    println!(
        "  qps={:.0} p50={:.3}ms p95={:.3}ms p99={:.3}ms hit_rate={:.3}",
        t.qps,
        t.p50_ms,
        t.p95_ms,
        t.p99_ms,
        t.cache_hit_rate()
    );
    ok &= check(
        t.p50_ms <= t.p95_ms && t.p95_ms <= t.p99_ms,
        "serving percentiles are monotone",
    );
    let serve_rows = phase_breakdown(
        &observer,
        "plp_serve_phase_ms",
        &["queue_wait", "cache_lookup", "batch_matmul", "topk"],
    );
    ok &= check(!serve_rows.is_empty(), "serving phases recorded");

    // --- Histogram error bound against an exact reference.
    ok &= histogram_error_check();

    // --- Prometheus rendering must carry both stacks.
    let prom = observer.render_prometheus();
    ok &= check(
        prom.contains("plp_train_phase_ms_bucket{phase=\"local_sgd\""),
        "prometheus text has training phase histograms",
    );
    ok &= check(
        prom.contains("plp_serve_phase_ms_bucket{phase=\"batch_matmul\""),
        "prometheus text has serving phase histograms",
    );
    ok &= check(
        prom.contains("plp_epsilon_spent") && prom.contains("plp_epsilon_budget"),
        "prometheus text has the privacy-budget gauges",
    );

    // --- The JSONL log parses line by line and brackets the run.
    let log_text = std::fs::read_to_string(&opts.log).expect("read event log");
    let mut kinds: Vec<String> = Vec::new();
    let mut parse_ok = true;
    for (i, line) in log_text.lines().enumerate() {
        match serde_json::from_str::<serde_json::Value>(line) {
            Ok(v) => {
                if let Some(serde_json::Value::Str(k)) = v.as_object().and_then(|o| o.get("kind")) {
                    kinds.push(k.clone());
                } else {
                    parse_ok = false;
                    println!("FAIL event line {i} has no string kind");
                }
            }
            Err(e) => {
                parse_ok = false;
                println!("FAIL event line {i} is not valid JSON: {e:?}");
            }
        }
    }
    ok &= check(
        parse_ok && !kinds.is_empty(),
        &format!("event log parses line-by-line ({} events)", kinds.len()),
    );
    ok &= check(
        kinds.first().map(String::as_str) == Some("run_start")
            && kinds.iter().any(|k| k == "run_end"),
        "event log brackets the run with run_start/run_end",
    );
    ok &= check(
        kinds.iter().filter(|k| *k == "step").count() as u64 == outcome.summary.steps,
        "one step event per executed step",
    );

    let phase_json = |rows: &[(String, u64, f64, f64, f64)]| {
        serde_json::Value::Array(
            rows.iter()
                .map(|(phase, n, p50, p95, total)| {
                    serde_json::json!({
                        "phase": phase.clone(),
                        "count": *n,
                        "p50_ms": *p50,
                        "p95_ms": *p95,
                        "total_ms": *total,
                    })
                })
                .collect(),
        )
    };
    // Surface the hottest training phase at the top level so report
    // consumers don't have to dig through the phase array for it.
    let (local_sgd_count, local_sgd_total_ms) = train_rows
        .iter()
        .find(|(phase, ..)| phase == "local_sgd")
        .map_or((0, 0.0), |&(_, n, _, _, total)| (n, total));
    let payload = serde_json::json!({
        "bench": "obs",
        "seed": SEED,
        "smoke": opts.smoke,
        "steps": outcome.summary.steps,
        "local_sgd_count": local_sgd_count,
        "local_sgd_total_ms": local_sgd_total_ms,
        "stop_reason": serde_json::to_value_of(&outcome.summary.stop_reason),
        "epsilon_spent": outcome.summary.epsilon_spent,
        "epsilon_budget": hp.budget.epsilon,
        "delta": hp.budget.delta,
        "train_phases": phase_json(&train_rows),
        "trace": serde_json::json!({
            "repeats": timing_repeats,
            "untraced_step_ms": untraced_step_ms,
            "traced_step_ms": traced_step_ms,
            "overhead_frac": overhead_frac,
        }),
        "serve_phases": phase_json(&serve_rows),
        "serve_qps": t.qps,
        "serve_p99_ms": t.p99_ms,
        "events": kinds.len(),
        "event_log": opts.log.clone(),
        "prometheus_bytes": prom.len(),
        "all_checks_passed": ok,
    });
    let text = serde_json::to_string_pretty(&payload).expect("serialise payload");
    std::fs::write(&opts.out, text).expect("write output");
    println!("obs_report: wrote {}", opts.out);

    if ok {
        println!("obs_report: all checks passed");
        ExitCode::SUCCESS
    } else {
        println!("obs_report: FAILURES detected");
        ExitCode::FAILURE
    }
}
