//! Figure 8: PLP vs DP-SGD — prediction accuracy vs sampling ratio q at a
//! fixed budget ε = 2.
//!
//! Usage: `cargo run --release -p plp-bench --bin fig08_vary_q
//! [--scale bench|figure] [--seed N] [--seeds N]`

use plp_bench::cli::parse_args;
use plp_bench::figures::fig08;
use plp_bench::runner::drive_sweep;
use plp_core::experiment::PreparedData;

fn main() {
    let opts = parse_args();
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    let points = fig08(opts.scale);
    drive_sweep(
        "fig08",
        "HR@10 vs sampling probability q (eps=2)",
        &prep,
        &points,
        opts.seed,
        opts.seeds,
    );
}
