//! §5.2 significance claim: "the improvements of PLP over DP-SGD passed
//! the paired t-test with significance value p < 0.01."
//!
//! Runs PLP (λ = 4) and DP-SGD over matched seeds at ε = 2 and reports the
//! paired two-sided t-test on HR@10.
//!
//! Usage: `cargo run --release -p plp-bench --bin ttest_plp_vs_dpsgd
//! [--scale bench|figure] [--seed N] [--seeds N]` (default 5 repetitions)

use rand::rngs::StdRng;
use rand::SeedableRng;

use plp_bench::cli::parse_args;
use plp_core::dpsgd::train_dpsgd;
use plp_core::experiment::{hit_rate_at_10, PreparedData};
use plp_core::plp::train_plp;
use plp_linalg::stats::paired_t_test;
use plp_privacy::PrivacyBudget;

fn main() {
    let opts = parse_args();
    let reps = if opts.seeds > 1 { opts.seeds } else { 5 };
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    let mut hp = opts.scale.hyperparameters();
    // TTEST_EPS / TTEST_STEPS override the default eps=2 operating point
    // (the grouping gain needs enough steps to rise above the noise floor;
    // see EXPERIMENTS.md).
    let eps: f64 = std::env::var("TTEST_EPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    if let Some(steps) = std::env::var("TTEST_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        hp.max_steps = steps;
    }
    hp.budget = PrivacyBudget {
        epsilon: eps,
        delta: 2e-4,
    };
    hp.grouping_factor = 4;

    println!("== paired t-test: PLP (λ=4) vs DP-SGD at eps={eps} over {reps} seeds ==");
    println!("{:>6} {:>10} {:>10}", "seed", "PLP", "DP-SGD");
    let mut plp_scores = Vec::new();
    let mut dpsgd_scores = Vec::new();
    for r in 0..reps {
        let seed = opts.seed + 100 + r as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let plp = train_plp(&mut rng, &prep.train, None, &hp).expect("plp");
        let p = hit_rate_at_10(&plp.params, &prep.test).expect("eval");
        let mut rng = StdRng::seed_from_u64(seed);
        let base = train_dpsgd(&mut rng, &prep.train, None, &hp).expect("dpsgd");
        let d = hit_rate_at_10(&base.params, &prep.test).expect("eval");
        println!("{:>6} {:>10.4} {:>10.4}", seed, p, d);
        plp_scores.push(p);
        dpsgd_scores.push(d);
    }
    match paired_t_test(&plp_scores, &dpsgd_scores) {
        Some(t) => {
            println!(
                "t = {:.3}, df = {}, two-sided p = {:.5}, mean improvement = {:+.4}",
                t.t_statistic, t.degrees_of_freedom, t.p_value, t.mean_difference
            );
            println!(
                "JSON {}",
                serde_json::json!({
                    "figure": "ttest", "t": t.t_statistic, "p": t.p_value,
                    "mean_diff": t.mean_difference,
                    "plp": plp_scores, "dpsgd": dpsgd_scores,
                })
            );
        }
        None => println!("degenerate inputs (identical scores); no test statistic"),
    }
}
