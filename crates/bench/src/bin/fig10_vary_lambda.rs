//! Figure 10: effect of the grouping factor λ on accuracy
//! (four (q, σ) settings, ε = 2, C = 0.5).
//!
//! Usage: `cargo run --release -p plp-bench --bin fig10_vary_lambda
//! [--scale bench|figure] [--seed N] [--seeds N]`

use plp_bench::cli::parse_args;
use plp_bench::figures::fig10;
use plp_bench::runner::drive_sweep;
use plp_core::experiment::PreparedData;

fn main() {
    let opts = parse_args();
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    let points = fig10(opts.scale);
    drive_sweep(
        "fig10",
        "HR@10 vs grouping factor lambda (eps=2, C=0.5)",
        &prep,
        &points,
        opts.seed,
        opts.seeds,
    );
}
