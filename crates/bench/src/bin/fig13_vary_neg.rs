//! Figure 13: effect of the negative-sample count on accuracy
//! (four (q, C) settings, λ = 4, ε = 2, σ = 2.5).
//!
//! Usage: `cargo run --release -p plp-bench --bin fig13_vary_neg
//! [--scale bench|figure] [--seed N] [--seeds N]`

use plp_bench::cli::parse_args;
use plp_bench::figures::fig13;
use plp_bench::runner::drive_sweep;
use plp_core::experiment::PreparedData;

fn main() {
    let opts = parse_args();
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    let points = fig13(opts.scale);
    drive_sweep(
        "fig13",
        "HR@10 vs negative samples neg (eps=2, sigma=2.5)",
        &prep,
        &points,
        opts.seed,
        opts.seeds,
    );
}
