//! Federated chaos drill: multi-process training under injected worker
//! faults, held to the bit-identity bar.
//!
//! Usage:
//!   `cargo run --release -p plp-bench --bin fed_chaos`           # full drills
//!   `cargo run --release -p plp-bench --bin fed_chaos -- --smoke` # CI gate
//!
//! The binary is its own worker fleet: the coordinator re-executes this
//! executable with `PLP_FED_WORKER=1`, so `main` hands off to the worker
//! loop before any drill code runs. Exits non-zero if any drill fails.

use std::process::ExitCode;

use plp_bench::runner::Scale;
use plp_core::checkpoint::load_checkpoint;
use plp_core::experiment::PreparedData;
use plp_core::faults::{FaultInjector, FaultPlan};
use plp_core::plp::{
    resume_plp_with_executor, train_plp_resumable, train_plp_with_executor, CheckpointPolicy,
    PlpOutcome, TrainOptions,
};
use plp_core::CoreError;
use plp_fed::{FedConfig, FedExecutor, RetryPolicy};
use plp_obs::trace::{parse_dump_jsonl, stitch_chrome_trace, TraceConfig, TraceDump};
use plp_obs::Observer;
use plp_privacy::PrivacyBudget;

fn check(name: &str, ok: bool, detail: &str) -> bool {
    println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn fed_exec(workers: usize, retry: RetryPolicy) -> FedExecutor {
    let mut cfg = FedConfig::with_current_exe(workers).expect("resolve current exe");
    cfg.retry = retry;
    FedExecutor::new(cfg).expect("construct executor")
}

fn bit_identical(a: &PlpOutcome, b: &PlpOutcome) -> bool {
    a.params == b.params
        && a.ledger == b.ledger
        && a.summary.epsilon_spent.to_bits() == b.summary.epsilon_spent.to_bits()
        && a.summary.steps == b.summary.steps
}

fn main() -> ExitCode {
    // If the coordinator spawned us, this never returns.
    plp_fed::maybe_run_worker();

    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::Bench;
    let prep = PreparedData::generate(&scale.experiment_config(42)).expect("prepare data");
    let mut hp = scale.hyperparameters();
    hp.grouping_factor = 4;
    hp.sampling_prob = 0.3;
    hp.max_steps = if smoke { 3 } else { 6 };
    hp.noise_multiplier = 2.5;
    hp.budget = PrivacyBudget::new(8.0, 2e-4).expect("budget");
    let seed = 11u64;
    let mut all_ok = true;

    let reference = train_plp_resumable(seed, &prep.train, None, &hp, &TrainOptions::default())
        .expect("single-process reference run");

    // Drill 1: fault-free multi-process run must be bit-identical to the
    // single-process reference — the executor seam changes nothing.
    println!("== drill 1: fault-free fan-out ==");
    let workers = if smoke { 2 } else { 3 };
    let mut exec = fed_exec(workers, RetryPolicy::default());
    let fed = train_plp_with_executor(
        seed,
        &prep.train,
        None,
        &hp,
        &TrainOptions::default(),
        &mut exec,
    )
    .expect("fed run");
    all_ok &= check(
        "fan-out-identity",
        bit_identical(&fed, &reference),
        &format!(
            "{workers} workers, ε={:.6} vs reference ε={:.6}",
            fed.summary.epsilon_spent, reference.summary.epsilon_spent
        ),
    );

    // Drill 2: stalls past the deadline, mid-round exits, garbled and
    // duplicated reply frames — with retry budget to spare, recovery must
    // reproduce the fault-free bits exactly.
    println!("== drill 2: stalls, kills, garbled and duplicated frames ==");
    let plan = FaultPlan {
        worker_stall_rate: 0.2,
        worker_stall_ms: 3_000,
        worker_exit_rate: 0.2,
        corrupt_frame_rate: if smoke { 0.0 } else { 0.2 },
        duplicate_reply_rate: if smoke { 0.0 } else { 0.3 },
        ..FaultPlan::quiet(99)
    };
    let retry = RetryPolicy {
        deadline_ms: 400,
        max_retries: 8,
        backoff_ms: 10,
    };
    let chaos_opts = TrainOptions {
        faults: FaultInjector::with_plan(plan),
        ..TrainOptions::default()
    };
    let mut exec = fed_exec(2, retry);
    let chaotic = train_plp_with_executor(seed, &prep.train, None, &hp, &chaos_opts, &mut exec)
        .expect("chaotic fed run");
    let stats = exec.total_stats;
    all_ok &= check(
        "faults-fired",
        stats.stragglers + stats.respawns + stats.corrupt_frames + stats.duplicates > 0,
        &format!(
            "stragglers={} respawns={} corrupt={} duplicates={}",
            stats.stragglers, stats.respawns, stats.corrupt_frames, stats.duplicates
        ),
    );
    all_ok &= check(
        "recovery-identity",
        stats.dropped_buckets == 0 && bit_identical(&chaotic, &reference),
        &format!(
            "recovered run ε={:.6}, {} buckets dropped",
            chaotic.summary.epsilon_spent, stats.dropped_buckets
        ),
    );

    // Drill 3: coordinator crash. Halt the fed run mid-flight (fleet and
    // all), restore the ordinary v2 checkpoint on a new coordinator with
    // new workers, and demand the uninterrupted reference bits.
    println!("== drill 3: coordinator crash and resume ==");
    let dir = std::env::temp_dir().join(format!("plp_fed_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ckpt_path = dir.join("coord.plpc");
    let halted_opts = TrainOptions {
        checkpoint: Some(CheckpointPolicy {
            path: ckpt_path.clone(),
            every: 1,
        }),
        halt_after: Some(hp.max_steps as u64 / 2),
        ..TrainOptions::default()
    };
    {
        let mut exec = fed_exec(2, RetryPolicy::default());
        train_plp_with_executor(seed, &prep.train, None, &hp, &halted_opts, &mut exec)
            .expect("halted fed run");
    }
    let ckpt = load_checkpoint(&ckpt_path).expect("load coordinator checkpoint");
    let mut exec = fed_exec(2, RetryPolicy::default());
    let resumed = resume_plp_with_executor(
        ckpt,
        &prep.train,
        None,
        &hp,
        &TrainOptions::default(),
        &mut exec,
    )
    .expect("resumed fed run");
    all_ok &= check(
        "crash-resume-identity",
        bit_identical(&resumed, &reference),
        &format!(
            "resumed ε={:.6} over {} steps on a fresh fleet",
            resumed.summary.epsilon_spent, resumed.summary.steps
        ),
    );
    std::fs::remove_dir_all(&dir).ok();

    if !smoke {
        // Drill 4: retry budget of zero and workers that always die: every
        // bucket is dropped. The DP-equivalent local reference poisons
        // every delta, so both runs skip everything — and the DP-safe
        // skipped-bucket semantics must make them bit-identical.
        println!("== drill 4: retries exhausted, DP-safe drops ==");
        let fed_opts = TrainOptions {
            faults: FaultInjector::with_plan(FaultPlan {
                worker_exit_rate: 1.0,
                ..FaultPlan::quiet(5)
            }),
            ..TrainOptions::default()
        };
        let local_opts = TrainOptions {
            faults: FaultInjector::with_plan(FaultPlan {
                nan_delta_rate: 1.0,
                ..FaultPlan::quiet(5)
            }),
            ..TrainOptions::default()
        };
        let retry = RetryPolicy {
            deadline_ms: 2_000,
            max_retries: 0,
            backoff_ms: 1,
        };
        let mut exec = fed_exec(2, retry);
        let dropped = train_plp_with_executor(seed, &prep.train, None, &hp, &fed_opts, &mut exec)
            .expect("all-dropped fed run");
        let skip_all = train_plp_resumable(seed, &prep.train, None, &hp, &local_opts)
            .expect("all-skipped local run");
        let n_dropped = exec.total_stats.dropped_buckets;
        all_ok &= check(
            "dp-safe-drops",
            n_dropped > 0 && dropped.params.all_finite() && bit_identical(&dropped, &skip_all),
            &format!(
                "{n_dropped} buckets dropped; ε={:.6} matches the all-skipped run, σ and \
                 ledger untouched",
                dropped.summary.epsilon_spent
            ),
        );

        // Drill 5: a worker binary that is not a worker at all — the
        // coordinator must fail cleanly, not hang or corrupt state.
        println!("== drill 5: worker that speaks no protocol ==");
        let cfg = FedConfig {
            workers: 1,
            worker_program: std::path::PathBuf::from("/bin/true"),
            worker_args: Vec::new(),
            retry: RetryPolicy {
                deadline_ms: 500,
                max_retries: 1,
                backoff_ms: 1,
            },
        };
        let mut exec = FedExecutor::new(cfg).expect("construct executor");
        let outcome = train_plp_with_executor(
            seed,
            &prep.train,
            None,
            &hp,
            &TrainOptions::default(),
            &mut exec,
        );
        let survived = match &outcome {
            // Either every step degrades to all-skipped (workers always
            // dead) or the trainer surfaces a clean error; both are
            // acceptable — hanging or panicking is not.
            Ok(out) => out.params.all_finite(),
            Err(CoreError::Io { .. }) => true,
            Err(_) => false,
        };
        all_ok &= check(
            "hostile-worker",
            survived,
            &format!(
                "coordinator stayed sane: {}",
                match &outcome {
                    Ok(_) => format!(
                        "degraded run finished, {} buckets dropped",
                        exec.total_stats.dropped_buckets
                    ),
                    Err(e) => format!("clean error: {e}"),
                }
            ),
        );
    }

    // Drill 6 (runs in smoke too): tracing across the pipe. A traced
    // fed run must (a) stay bit-identical to the untraced reference,
    // and (b) leave flight-recorder dumps from the coordinator and every
    // worker that stitch into one Perfetto/Chrome trace with worker
    // round spans parented under coordinator send spans.
    println!("== drill 6: deterministic tracing across the pipe ==");
    let trace_out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--trace-out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "target/BENCH_fed_trace.json".to_string())
    };
    // Raw dumps land in a stable dir (not a temp dir) so operators and CI
    // can re-stitch them with scripts/trace_stitch.py after the run.
    let trace_dir = std::path::PathBuf::from("target/fed_trace_dumps");
    std::fs::remove_dir_all(&trace_dir).ok();
    std::fs::create_dir_all(&trace_dir).expect("trace dir");
    let traced_opts = TrainOptions {
        observer: Observer::new("fed-chaos"),
        ..TrainOptions::default()
    };
    let tracer = traced_opts
        .observer
        .attach_tracer(
            TraceConfig::named("coordinator").dump_to(trace_dir.join("trace_coordinator.jsonl")),
        )
        .expect("attach tracer");
    let traced = {
        let mut exec = fed_exec(2, RetryPolicy::default());
        train_plp_with_executor(seed, &prep.train, None, &hp, &traced_opts, &mut exec)
            .expect("traced fed run")
        // exec drops here: workers get the shutdown, dump, and exit.
    };
    all_ok &= check(
        "tracing-invisibility",
        bit_identical(&traced, &reference),
        &format!(
            "traced ε={:.6} vs untraced ε={:.6} — params/ledger/ε must not move",
            traced.summary.epsilon_spent, reference.summary.epsilon_spent
        ),
    );
    tracer
        .dump_to(
            tracer.dump_path().expect("configured above"),
            "drill_complete",
        )
        .expect("coordinator dump");

    let mut dumps: Vec<TraceDump> = Vec::new();
    let coordinator_dump =
        std::fs::read_to_string(trace_dir.join("trace_coordinator.jsonl")).expect("read dump");
    dumps.push(parse_dump_jsonl(&coordinator_dump).expect("parse coordinator dump"));
    for entry in std::fs::read_dir(&trace_dir).expect("list trace dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if name.starts_with("trace_worker_") {
            let text = std::fs::read_to_string(&path).expect("read worker dump");
            dumps.push(parse_dump_jsonl(&text).expect("parse worker dump"));
        }
    }
    let processes: std::collections::BTreeSet<(String, u64)> =
        dumps.iter().map(|d| (d.process.clone(), d.pid)).collect();
    all_ok &= check(
        "trace-processes",
        processes.len() >= 3,
        &format!(
            "flight recorders from {} processes (need coordinator + 2 workers)",
            processes.len()
        ),
    );
    let send_spans: std::collections::BTreeSet<u64> = dumps[0]
        .records
        .iter()
        .filter(|r| r.name == "fed_send")
        .map(|r| r.span_id)
        .collect();
    let cross_parented = dumps[1..].iter().any(|d| {
        d.records
            .iter()
            .any(|r| r.name == "fed_worker_round" && send_spans.contains(&r.parent_id))
    });
    all_ok &= check(
        "trace-cross-pipe-parenting",
        cross_parented,
        &format!(
            "{} coordinator send spans; worker rounds parented under them across the pipe",
            send_spans.len()
        ),
    );

    let stitched = stitch_chrome_trace(&dumps);
    if let Some(parent) = std::path::Path::new(&trace_out).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&trace_out, &stitched).expect("write stitched trace");
    all_ok &= check(
        "trace-stitched",
        stitched.contains("\"traceEvents\"") && stitched.contains("fed_pipe"),
        &format!("stitched Perfetto JSON with flow events written to {trace_out}"),
    );
    println!(
        "fed_chaos: raw flight-recorder dumps kept in {}",
        trace_dir.display()
    );

    if all_ok {
        println!("fed_chaos: all drills passed");
        ExitCode::SUCCESS
    } else {
        println!("fed_chaos: FAILURES above");
        ExitCode::FAILURE
    }
}
