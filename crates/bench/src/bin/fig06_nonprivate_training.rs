//! Figure 6: non-private model performance — training loss plus
//! validation/test HR@{5,10,20} over data epochs.
//!
//! Usage: `cargo run --release -p plp-bench --bin fig06_nonprivate_training
//! [--scale bench|figure] [--seed N]`

use rand::rngs::StdRng;
use rand::SeedableRng;

use plp_bench::cli::parse_args;
use plp_bench::runner::Scale;
use plp_core::experiment::PreparedData;
use plp_core::nonprivate::{train_nonprivate, NonPrivateConfig};
use plp_model::metrics::evaluate_hit_rate;
use plp_model::Recommender;

fn main() {
    let opts = parse_args();
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    let (epochs, eval_every) = match opts.scale {
        Scale::Bench => (4, 2),
        Scale::Figure => (40, 4),
    };
    let hp = opts.scale.hyperparameters();

    println!("== fig06: non-private training curves ==");
    println!(
        "dataset: {} users, {} locations, {} check-ins",
        prep.stats.num_users, prep.stats.num_locations, prep.stats.num_checkins
    );
    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "epoch", "loss", "vHR@5", "vHR@10", "vHR@20", "tHR@5", "tHR@10", "tHR@20"
    );

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let out = train_nonprivate(
        &mut rng,
        &prep.train,
        Some(&prep.validation),
        &hp,
        &NonPrivateConfig {
            epochs,
            eval_every,
            ..NonPrivateConfig::default()
        },
    )
    .expect("training");

    let mut json_rows = Vec::new();
    for t in &out.telemetry {
        if let Some(v) = &t.validation {
            // Test-side evaluation happens only at evaluated epochs; the
            // final model's test numbers are recomputed below.
            println!(
                "{:>6} {:>10.4} {:>9.4} {:>9.4} {:>9.4} {:>9} {:>9} {:>9}",
                t.epoch,
                t.train_loss,
                v[0].rate(),
                v[1].rate(),
                v[2].rate(),
                "-",
                "-",
                "-"
            );
            json_rows.push(serde_json::json!({
                "epoch": t.epoch, "loss": t.train_loss,
                "vhr5": v[0].rate(), "vhr10": v[1].rate(), "vhr20": v[2].rate(),
            }));
        } else {
            println!("{:>6} {:>10.4}", t.epoch, t.train_loss);
            json_rows.push(serde_json::json!({"epoch": t.epoch, "loss": t.train_loss}));
        }
    }

    let rec = Recommender::new(&out.params);
    let test = evaluate_hit_rate(&rec, &prep.test, &[5, 10, 20]).expect("test evaluation");
    println!(
        "final test: HR@5 {:.4}  HR@10 {:.4}  HR@20 {:.4} (paper's non-private ceiling: 29.5% HR@10 on real Foursquare Tokyo)",
        test[0].rate(),
        test[1].rate(),
        test[2].rate()
    );
    println!(
        "JSON {}",
        serde_json::json!({
            "figure": "fig06", "rows": json_rows,
            "final_test": {"hr5": test[0].rate(), "hr10": test[1].rate(), "hr20": test[2].rate()},
        })
    );
}
