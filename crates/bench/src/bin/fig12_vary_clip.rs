//! Figure 12: effect of the ℓ2 clipping norm C on accuracy
//! (four (q, λ) settings, ε = 2, σ = 2.5).
//!
//! Usage: `cargo run --release -p plp-bench --bin fig12_vary_clip
//! [--scale bench|figure] [--seed N] [--seeds N]`

use plp_bench::cli::parse_args;
use plp_bench::figures::fig12;
use plp_bench::runner::drive_sweep;
use plp_core::experiment::PreparedData;

fn main() {
    let opts = parse_args();
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    let points = fig12(opts.scale);
    drive_sweep(
        "fig12",
        "HR@10 vs clipping norm C (eps=2, sigma=2.5)",
        &prep,
        &points,
        opts.seed,
        opts.seeds,
    );
}
