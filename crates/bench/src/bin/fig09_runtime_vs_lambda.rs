//! Figure 9: running-time improvement factor of PLP over DP-SGD as the
//! grouping factor λ grows, for (q, σ) ∈ {0.06, 0.10} × {1.5, 2.5}.
//!
//! Both methods run the same *fixed* number of steps (the paper runs to
//! the budget; the per-step ratio is what the figure measures — "these
//! results are consistently observed even with a different number of
//! total iterations").
//!
//! Usage: `cargo run --release -p plp-bench --bin fig09_runtime_vs_lambda
//! [--scale bench|figure] [--seed N]`

use rand::rngs::StdRng;
use rand::SeedableRng;

use plp_bench::cli::parse_args;
use plp_bench::figures::fig09_settings;
use plp_bench::runner::Scale;
use plp_core::dpsgd::train_dpsgd;
use plp_core::experiment::PreparedData;
use plp_core::plp::train_plp;
use plp_privacy::PrivacyBudget;

fn main() {
    let opts = parse_args();
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    let steps = match opts.scale {
        Scale::Bench => 3,
        Scale::Figure => 25,
    };
    println!("== fig09: runtime improvement factor of PLP over DP-SGD ==");
    println!(
        "dataset: {} users, {} check-ins; {} steps per measurement",
        prep.stats.num_users, prep.stats.num_checkins, steps
    );
    println!(
        "{:<18} {:>4} {:>12} {:>12} {:>8}",
        "setting", "λ", "dpsgd_ms", "plp_ms", "factor"
    );

    let mut hp = opts.scale.hyperparameters();
    hp.max_steps = steps;
    hp.budget = PrivacyBudget {
        epsilon: 1e9,
        delta: 2e-4,
    }; // step-capped runs

    // Measure the DP-SGD reference once per (q, sigma) setting.
    let mut rows = Vec::new();
    let mut dpsgd_ms = std::collections::HashMap::new();
    for (label, q, sigma, lambda) in fig09_settings() {
        let key = format!("{q}-{sigma}");
        let base_ms = *dpsgd_ms.entry(key).or_insert_with(|| {
            let mut h = hp.clone();
            h.sampling_prob = q;
            h.noise_multiplier = sigma;
            let mut rng = StdRng::seed_from_u64(opts.seed);
            let out = train_dpsgd(&mut rng, &prep.train, None, &h).expect("dpsgd");
            out.summary.total_wall_ms
        });
        let mut h = hp.clone();
        h.sampling_prob = q;
        h.noise_multiplier = sigma;
        h.grouping_factor = lambda;
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let out = train_plp(&mut rng, &prep.train, None, &h).expect("plp");
        let factor = base_ms / out.summary.total_wall_ms;
        println!(
            "{:<18} {:>4} {:>12.0} {:>12.0} {:>8.2}",
            label, lambda, base_ms, out.summary.total_wall_ms, factor
        );
        rows.push(serde_json::json!({
            "setting": label, "lambda": lambda,
            "dpsgd_ms": base_ms, "plp_ms": out.summary.total_wall_ms, "factor": factor,
        }));
    }
    println!(
        "JSON {}",
        serde_json::json!({"figure": "fig09", "rows": rows})
    );
}
