//! Serving load generator: replays held-out test sequences through the
//! batched `plp-serve` engine, asserts the batched results are
//! bit-identical to the sequential `Recommender` path, and reports
//! throughput/latency/cache telemetry per batch size. A second section
//! scales the vocabulary to a generated 100k-location city and
//! cross-checks the IVF ANN path against the exhaustive scan: recall@10,
//! speedup, worker invariance, and `nprobe = cells` bit-identity. A third
//! pass turns on the int8-quantized coarse scorer and gates its speedup
//! over the f64 IVF path, its recall, and its bit-identity to both the
//! unquantized ANN results and (at full probe) the exhaustive scan.
//!
//! With `--swap` a fourth section exercises the PLPS hot-swap stack: mmap
//! vs owned-decode load timing on the 100k-city bundle (floor: 10x when
//! mapped), the legacy per-element decode vs the bulk rewrite, and a live
//! hammer publishing 50 generations (12 in smoke) under concurrent query
//! threads — zero dropped and zero torn waves are hard floors, and p99 is
//! split between swap-window and steady-state waves.
//!
//! Usage:
//!   cargo run --release -p plp-bench --bin serve_load            # full run
//!   cargo run --release -p plp-bench --bin serve_load -- --smoke # CI smoke
//!   ... -- --swap                     # add the hot-swap/mmap load section
//!   ... -- --out path.json                                       # output path
//!   ... -- --ann-cells 512 --ann-nprobe 16                       # ANN knobs
//!   ... -- --trace trace.json       # dump a Chrome/Perfetto serve trace
//!
//! Writes `BENCH_serve.json` (or `--out`) and exits non-zero if any
//! batched result diverges from the sequential reference, ANN recall@10
//! drops below 0.95, the ANN speedup drops below 5×, or the full-probe
//! ANN pass is not bit-identical to the exhaustive scan.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::{Buf, Bytes};
use plp_core::checkpoint::KERNEL_SCHEME_VERSION;
use plp_core::experiment::{ExperimentConfig, PreparedData};
use plp_data::generator::{GeneratorConfig, SyntheticGenerator};
use plp_linalg::sample::{stream_seed, GaussianStream};
use plp_linalg::Matrix;
use plp_model::metrics::leave_one_out_trials;
use plp_model::params::ModelParams;
use plp_model::plps::{self, PlpsSnapshot};
use plp_model::Recommender;
use plp_serve::swap::{
    generation_file_name, publish_generation, GenerationWatcher, HotSwapServer, ModelGeneration,
    SwapOutcome,
};
use plp_serve::{AnnConfig, BatchEngine, Query, ServeConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SEED: u64 = 42;
const EMBEDDING_DIM: usize = 32;
const TOP_K: usize = 10;
const WAVE: usize = 512;

/// Floors enforced by the ANN section (mirrored by `scripts/bench_guard.py`).
const MIN_RECALL_AT_10: f64 = 0.95;
const MIN_SPEEDUP: f64 = 5.0;
/// Floors of the quantized pass: recall against the exhaustive scan and
/// wall-clock speedup over the *f64 IVF* path (same cells/nprobe).
const MIN_QUANT_RECALL_AT_10: f64 = 0.99;
const MIN_QUANT_SPEEDUP: f64 = 1.5;

struct Opts {
    smoke: bool,
    swap: bool,
    out: String,
    trace: Option<String>,
    ann_cells: usize,
    ann_nprobe: usize,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let swap = args.iter().any(|a| a == "--swap");
    let named = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = named("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let flag = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v}")))
            .unwrap_or(default)
    };
    Opts {
        smoke,
        swap,
        out,
        trace: named("--trace"),
        ann_cells: flag("--ann-cells", 512),
        ann_nprobe: flag("--ann-nprobe", 8),
    }
}

/// Builds the query stream: leave-one-out test prefixes, alternating
/// between plain queries and queries that exclude the just-visited
/// locations (the paper's deployment pattern), cycled up to `target`.
fn build_queries(prep: &PreparedData, target: usize) -> Vec<Query> {
    let trials = leave_one_out_trials(&prep.test);
    assert!(!trials.is_empty(), "test split produced no trials");
    let mut queries = Vec::with_capacity(target);
    let ks = [TOP_K, 5, 20];
    for i in 0..target {
        let (recent, _target) = &trials[i % trials.len()];
        let k = ks[(i / trials.len()) % ks.len()];
        if i % 2 == 0 {
            queries.push(Query::new(recent.to_vec(), k));
        } else {
            queries.push(Query::with_exclusions(recent.to_vec(), k, recent.to_vec()));
        }
    }
    queries
}

fn sequential_reference(rec: &Recommender, queries: &[Query]) -> Vec<Vec<usize>> {
    queries
        .iter()
        .map(|q| {
            if q.exclude.is_empty() {
                rec.recommend(&q.recent, q.k).expect("sequential recommend")
            } else {
                rec.recommend_excluding(&q.recent, q.k, &q.exclude)
                    .expect("sequential recommend_excluding")
            }
        })
        .collect()
}

/// A serving-shaped embedding over the generated city: each neighbourhood
/// cluster gets a unit direction in R^dim (counter-seeded Gaussian
/// stream), each POI that direction plus jitter, rows normalised. This is
/// the structure skip-gram training produces — geographically close POIs
/// get similar vectors — which is what gives an IVF coarse quantiser real
/// cells to find. Fully deterministic in `seed`; no RNG object threads
/// through, so POI rows can be generated in any order.
fn city_embedding(world: &SyntheticGenerator, dim: usize, seed: u64) -> Matrix {
    const DOMAIN_CLUSTER: u64 = 0xC1;
    const DOMAIN_POI: u64 = 0xB0;
    let num_clusters = (0..world.pois().len())
        .map(|p| world.cluster_of(p).expect("poi has a cluster"))
        .max()
        .expect("city has pois")
        + 1;
    let mut cluster_dirs = vec![0.0; num_clusters * dim];
    for c in 0..num_clusters {
        let mut stream = GaussianStream::new(stream_seed(seed, DOMAIN_CLUSTER, c as u64));
        stream.fill(&mut cluster_dirs[c * dim..(c + 1) * dim]);
    }
    let mut m = Matrix::zeros(world.pois().len(), dim);
    let mut jitter = vec![0.0; dim];
    for p in 0..world.pois().len() {
        let c = world.cluster_of(p).expect("poi has a cluster");
        let mut stream = GaussianStream::new(stream_seed(seed, DOMAIN_POI, p as u64));
        stream.fill(&mut jitter);
        let row = m.row_mut(p);
        for (d, slot) in row.iter_mut().enumerate() {
            *slot = cluster_dirs[c * dim + d] + 0.25 * jitter[d];
        }
    }
    m.normalize_rows();
    m
}

/// City query stream: cluster-local recent histories (2–5 POIs of one
/// cluster), alternating plain and excluding queries — the same shape as
/// the leave-one-out stream, at city scale.
fn city_queries(world: &SyntheticGenerator, n: usize, seed: u64) -> Vec<Query> {
    let mut members: Vec<Vec<usize>> = Vec::new();
    for p in 0..world.pois().len() {
        let c = world.cluster_of(p).expect("poi has a cluster");
        if c >= members.len() {
            members.resize(c + 1, Vec::new());
        }
        members[c].push(p);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let cluster = loop {
                let c = rng.random_range(0..members.len());
                if !members[c].is_empty() {
                    break c;
                }
            };
            let len = rng.random_range(2usize..=5);
            let recent: Vec<usize> = (0..len)
                .map(|_| members[cluster][rng.random_range(0..members[cluster].len())])
                .collect();
            if i % 2 == 0 {
                Query::new(recent, TOP_K)
            } else {
                let exclude = recent.clone();
                Query::with_exclusions(recent, TOP_K, exclude)
            }
        })
        .collect()
}

fn serve_all(engine: &BatchEngine, queries: &[Query]) -> (Vec<Vec<usize>>, f64) {
    let start = Instant::now();
    let mut got = Vec::with_capacity(queries.len());
    for wave in queries.chunks(WAVE) {
        got.extend(engine.serve(wave).expect("serve wave"));
    }
    (got, start.elapsed().as_secs_f64() * 1000.0)
}

/// Mean recall@k of `approx` against the exhaustive `exact` results.
fn recall_at_k(exact: &[Vec<usize>], approx: &[Vec<usize>]) -> f64 {
    assert_eq!(exact.len(), approx.len());
    let mut total = 0.0;
    let mut counted = 0usize;
    for (e, a) in exact.iter().zip(approx) {
        if e.is_empty() {
            continue;
        }
        let hit = e.iter().filter(|t| a.contains(t)).count();
        total += hit as f64 / e.len() as f64;
        counted += 1;
    }
    if counted == 0 {
        1.0
    } else {
        total / counted as f64
    }
}

/// Builds the 100k-location generated city world and its serving-shaped
/// recommender once; the ANN and hot-swap sections share it.
fn build_city() -> (SyntheticGenerator, Recommender) {
    let city = GeneratorConfig::city();
    println!(
        "serve_load: building {}-location city world ({} clusters)",
        city.num_locations, city.num_clusters
    );
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xC17F);
    let world = SyntheticGenerator::new(&mut rng, city).expect("city world");
    let embedding = city_embedding(&world, EMBEDDING_DIM, SEED);
    let rec = Recommender::from_embedding(embedding).expect("finite embedding");
    (world, rec)
}

/// The ANN-vs-exhaustive cross-check on the 100k-location generated city.
/// Returns the JSON report and whether every floor held.
fn run_ann_city_bench(
    opts: &Opts,
    world: &SyntheticGenerator,
    rec: &Recommender,
) -> (serde_json::Value, bool) {
    let num_queries = if opts.smoke { 1024 } else { 4096 };
    let queries = city_queries(world, num_queries, SEED ^ 0x9E8);
    // Dense scratch is sized lazily now, but keep the exhaustive batches
    // small so one batch's score rows stay modest at vocab 100k.
    let base = ServeConfig {
        max_batch: 16,
        workers: 4,
        cache_capacity: 0,
        ann: None,
    };
    let ann = AnnConfig {
        cells: opts.ann_cells,
        nprobe: opts.ann_nprobe,
        kmeans_iters: 4,
        kmeans_sample: 25_000,
        seed: SEED ^ 0x1F,
        build_threads: 4,
        quantized: false,
        overfetch: 4,
    };

    let exhaustive_engine = BatchEngine::new(rec.clone(), base).expect("exhaustive engine");
    let (exact, exhaustive_wall_ms) = serve_all(&exhaustive_engine, &queries);
    println!(
        "  exhaustive: {num_queries} queries in {exhaustive_wall_ms:.0}ms ({:.0} qps)",
        num_queries as f64 / (exhaustive_wall_ms / 1000.0)
    );

    let build_start = Instant::now();
    let ann_engine = BatchEngine::new(
        rec.clone(),
        ServeConfig {
            ann: Some(ann),
            ..base
        },
    )
    .expect("ann engine");
    let build_ms = build_start.elapsed().as_secs_f64() * 1000.0;
    let (approx, ann_wall_ms) = serve_all(&ann_engine, &queries);
    let recall = recall_at_k(&exact, &approx);
    let speedup = exhaustive_wall_ms / ann_wall_ms.max(1e-9);
    println!(
        "  ann(cells={} nprobe={}): build {build_ms:.0}ms, {num_queries} queries in {ann_wall_ms:.0}ms — recall@{TOP_K} {recall:.4}, speedup {speedup:.1}x",
        ann.cells, ann.nprobe
    );

    // Determinism across worker counts: the same ANN config on one worker
    // must return exactly the same recommendations.
    let single = BatchEngine::new(
        rec.clone(),
        ServeConfig {
            workers: 1,
            ann: Some(ann),
            ..base
        },
    )
    .expect("single-worker ann engine");
    let (approx_single, _) = serve_all(&single, &queries);
    let worker_invariant = approx_single == approx;

    // nprobe = cells covers every cell, so the shortlist is the whole
    // vocabulary and results must be bit-identical to the exhaustive
    // scan. A subset of the stream keeps the full-coverage pass cheap.
    let probe_all = BatchEngine::new(
        rec.clone(),
        ServeConfig {
            ann: Some(AnnConfig {
                nprobe: ann.cells,
                ..ann
            }),
            ..base
        },
    )
    .expect("full-probe engine");
    let subset = &queries[..queries.len().min(128)];
    let (full_probe, _) = serve_all(&probe_all, subset);
    let full_probe_bit_identical = full_probe == exact[..subset.len()];

    // Quantized pass: same cells/nprobe, int8 coarse scoring in front of
    // the exact re-rank. Results must be bit-identical to the f64 IVF
    // engine (the shortlist provably contains its top-k), so the recall
    // figure can only match — what the pass buys is wall-clock.
    let quant_cfg = AnnConfig {
        quantized: true,
        overfetch: 4,
        ..ann
    };
    let quant_build_start = Instant::now();
    let quant_engine = BatchEngine::new(
        rec.clone(),
        ServeConfig {
            ann: Some(quant_cfg),
            ..base
        },
    )
    .expect("quantized ann engine");
    let quant_build_ms = quant_build_start.elapsed().as_secs_f64() * 1000.0;
    let (quantized, quant_wall_ms) = serve_all(&quant_engine, &queries);
    let quant_recall = recall_at_k(&exact, &quantized);
    let quant_speedup = ann_wall_ms / quant_wall_ms.max(1e-9);
    let quant_matches_ivf = quantized == approx;
    let (quant_candidates, quant_shortlisted) = quant_engine.quant_totals();
    let shortlist_ratio = quant_shortlisted as f64 / quant_candidates.max(1) as f64;
    println!(
        "  quant(overfetch={}): build {quant_build_ms:.0}ms, {num_queries} queries in \
         {quant_wall_ms:.0}ms — recall@{TOP_K} {quant_recall:.4}, {quant_speedup:.2}x over f64 IVF, \
         shortlist {quant_shortlisted}/{quant_candidates} ({:.1}%)",
        quant_cfg.overfetch,
        shortlist_ratio * 100.0
    );

    // Full-probe quantized pass: every cell probed, so the error-bounded
    // shortlist must reproduce the exhaustive scan bit for bit.
    let quant_probe_all = BatchEngine::new(
        rec.clone(),
        ServeConfig {
            ann: Some(AnnConfig {
                nprobe: ann.cells,
                ..quant_cfg
            }),
            ..base
        },
    )
    .expect("full-probe quantized engine");
    let quant_subset = &queries[..queries.len().min(128)];
    let (quant_full_probe, _) = serve_all(&quant_probe_all, quant_subset);
    let quant_full_probe_bit_identical = quant_full_probe == exact[..quant_subset.len()];

    let recall_ok = recall >= MIN_RECALL_AT_10;
    let speedup_ok = speedup >= MIN_SPEEDUP;
    let quant_recall_ok = quant_recall >= MIN_QUANT_RECALL_AT_10;
    let quant_speedup_ok = quant_speedup >= MIN_QUANT_SPEEDUP;
    println!(
        "{} ann recall@{TOP_K} {recall:.4} (floor {MIN_RECALL_AT_10})",
        if recall_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{} ann speedup {speedup:.1}x (floor {MIN_SPEEDUP}x)",
        if speedup_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{} ann results worker-invariant",
        if worker_invariant { "PASS" } else { "FAIL" }
    );
    println!(
        "{} nprobe=cells bit-identical to exhaustive ({} queries)",
        if full_probe_bit_identical {
            "PASS"
        } else {
            "FAIL"
        },
        subset.len()
    );
    println!(
        "{} quant recall@{TOP_K} {quant_recall:.4} (floor {MIN_QUANT_RECALL_AT_10})",
        if quant_recall_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{} quant speedup over f64 IVF {quant_speedup:.2}x (floor {MIN_QUANT_SPEEDUP}x)",
        if quant_speedup_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{} quant results bit-identical to f64 IVF at nprobe={}",
        if quant_matches_ivf { "PASS" } else { "FAIL" },
        ann.nprobe
    );
    println!(
        "{} quant nprobe=cells bit-identical to exhaustive ({} queries)",
        if quant_full_probe_bit_identical {
            "PASS"
        } else {
            "FAIL"
        },
        quant_subset.len()
    );

    let report = serde_json::json!({
        "vocab": world.pois().len(),
        "cells": ann.cells,
        "nprobe": ann.nprobe,
        "kmeans_iters": ann.kmeans_iters,
        "kmeans_sample": ann.kmeans_sample,
        "queries": num_queries,
        "build_ms": build_ms,
        "exhaustive_wall_ms": exhaustive_wall_ms,
        "ann_wall_ms": ann_wall_ms,
        "recall_at_10": recall,
        "speedup": speedup,
        "worker_invariant": worker_invariant,
        "full_probe_bit_identical": full_probe_bit_identical,
        "quant": {
            "overfetch": quant_cfg.overfetch,
            "build_ms": quant_build_ms,
            "wall_ms": quant_wall_ms,
            "recall_at_10": quant_recall,
            "speedup_over_f64_ivf": quant_speedup,
            "candidates": quant_candidates,
            "shortlisted": quant_shortlisted,
            "shortlist_ratio": shortlist_ratio,
            "matches_f64_ivf": quant_matches_ivf,
            "full_probe_bit_identical": quant_full_probe_bit_identical,
        },
    });
    (
        report,
        recall_ok
            && speedup_ok
            && worker_invariant
            && full_probe_bit_identical
            && quant_recall_ok
            && quant_speedup_ok
            && quant_matches_ivf
            && quant_full_probe_bit_identical,
    )
}

/// `q`-th percentile of raw latency samples (ms); sorts in place.
fn percentile_ms(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

/// Minimum wall-clock ms of three runs of `f` (load-path timing: the
/// minimum is the least-noise estimate of the deterministic work).
fn min_of_3_ms(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1000.0
        })
        .fold(f64::INFINITY, f64::min)
}

/// Uniform random queries over a `vocab`-location model (the hammer's
/// fixed wave; every query thread replays the same wave).
fn swap_wave(vocab: usize, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = rng.random_range(1usize..=4);
            let recent: Vec<usize> = (0..len).map(|_| rng.random_range(0..vocab)).collect();
            if i % 2 == 0 {
                Query::new(recent, TOP_K)
            } else {
                let exclude = recent.clone();
                Query::with_exclusions(recent, TOP_K, exclude)
            }
        })
        .collect()
}

/// The `--swap` section: zero-copy load timing on the 100k-city bundle
/// (mmap vs owned decode, plus the legacy per-element vs bulk decode the
/// bulk rewrite replaced), then a live hot-swap run — generations
/// published and swapped under concurrent query threads, with p99 compared
/// between swap-window waves and steady-state waves. Returns the JSON
/// report and whether every floor held.
fn run_swap_bench(opts: &Opts, city_rec: &Recommender) -> (serde_json::Value, bool) {
    println!("serve_load: hot-swap section");
    let dir = std::env::temp_dir().join(format!("plp_serve_swap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create swap scratch");

    // -- 1. Load timing on the 100k-city bundle: mmap vs owned decode. --
    let bundle = dir.join("city.plps");
    plps::write_deployable(&bundle, city_rec.embedding(), 1).expect("write city bundle");
    let bundle_bytes = std::fs::metadata(&bundle).expect("bundle metadata").len();

    let mapped_probe = PlpsSnapshot::open_mapped(&bundle);
    let mapped_available = mapped_probe.is_ok();
    let bit_identical = match &mapped_probe {
        Ok(s) => s
            .embedding()
            .expect("mapped embedding")
            .as_slice()
            .iter()
            .zip(city_rec.embedding().as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        // No mapping on this host: the owned path's identity is asserted
        // by the bit-identity drills; nothing to compare here.
        Err(_) => true,
    };
    drop(mapped_probe);

    let mmap_load_ms = min_of_3_ms(|| {
        let snap = PlpsSnapshot::open(&bundle).expect("open bundle");
        let rec = snap.recommender().expect("bundle recommender");
        std::hint::black_box(rec.embedding().as_slice()[0]);
    });
    let owned_load_ms = min_of_3_ms(|| {
        let snap = PlpsSnapshot::open_owned(&bundle).expect("open bundle owned");
        let rec = snap.recommender().expect("bundle recommender");
        std::hint::black_box(rec.embedding().as_slice()[0]);
    });
    let mmap_speedup = owned_load_ms / mmap_load_ms.max(1e-9);
    let mmap_ok = bit_identical && (!mapped_available || mmap_speedup >= 10.0);
    println!(
        "{} mmap load {mmap_load_ms:.3}ms vs owned decode {owned_load_ms:.3}ms — {mmap_speedup:.0}x \
         (floor 10x, mapped={mapped_available}, {bundle_bytes} bytes, bit-identical={bit_identical})",
        if mmap_ok { "PASS" } else { "FAIL" }
    );

    // -- 2. Legacy decode: the per-element cursor loop the bulk LE rewrite
    // replaced, timed against the bulk path on the same body bytes. --
    let raw = std::fs::read(&bundle).expect("read bundle");
    let body = &raw[plps::PAGE_ALIGN..];
    let elems = body.len() / 8;
    let body_bytes = Bytes::from(body.to_vec());
    let mut naive_out = Vec::new();
    let naive_decode_ms = min_of_3_ms(|| {
        let mut b = body_bytes.clone();
        let mut v = Vec::with_capacity(elems);
        for _ in 0..elems {
            v.push(b.get_f64_le());
        }
        naive_out = v;
    });
    let mut bulk_out = Vec::new();
    let bulk_decode_ms = min_of_3_ms(|| {
        let mut v = Vec::with_capacity(elems);
        v.extend(
            body.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
        );
        bulk_out = v;
    });
    assert_eq!(naive_out, bulk_out, "decode paths agree");
    let bulk_speedup = naive_decode_ms / bulk_decode_ms.max(1e-9);
    println!(
        "  legacy decode: per-element {naive_decode_ms:.2}ms vs bulk {bulk_decode_ms:.2}ms \
         ({bulk_speedup:.1}x, {elems} f64s)"
    );

    // -- 3. Swap under load: publish generations while query threads
    // hammer, verifying every answer against its generation. --
    let target_swaps = if opts.smoke { 12 } else { 50 };
    let vocab = if opts.smoke { 3_000 } else { 10_000 };
    let dim = 16;
    let cfg = ServeConfig {
        max_batch: 32,
        workers: 2,
        cache_capacity: 2048,
        ann: Some(AnnConfig {
            cells: 32,
            nprobe: 8,
            kmeans_iters: 4,
            kmeans_sample: vocab,
            seed: SEED ^ 0x33,
            build_threads: 2,
            quantized: false,
            overfetch: 4,
        }),
    };
    let wave = Arc::new(swap_wave(vocab, 64, SEED ^ 0x77));
    println!(
        "  hammer: vocab={vocab} dim={dim} swaps={target_swaps} wave={} queries",
        wave.len()
    );

    let recs: Vec<Recommender> = (1..=target_swaps as u64 + 1)
        .map(|g| {
            let mut rng = StdRng::seed_from_u64(SEED ^ (0x4000 + g));
            Recommender::new(&ModelParams::init(&mut rng, vocab, dim).expect("init params"))
        })
        .collect();
    // Expected answers per generation come from a fresh engine with the
    // identical config: IVF builds are deterministic in the embedding
    // bits, so a hot-swapped (possibly mapped) generation must reproduce
    // the fresh engine's results exactly.
    let expected: Arc<HashMap<u64, Vec<Vec<usize>>>> = Arc::new(
        recs.iter()
            .enumerate()
            .map(|(i, r)| {
                let fresh = BatchEngine::new(r.clone(), cfg).expect("fresh engine");
                (i as u64 + 1, fresh.serve(&wave).expect("fresh serve"))
            })
            .collect(),
    );

    publish_generation(&dir, recs[0].embedding(), 1).expect("publish gen 1");
    let server = Arc::new(HotSwapServer::new(
        ModelGeneration::load(&dir.join(generation_file_name(1)), cfg).expect("load gen 1"),
    ));
    let mapped_generations = {
        let first = server.current();
        first.is_mapped()
    };
    let watcher = GenerationWatcher::new(
        &dir,
        cfg,
        Arc::clone(&server),
        plp_obs::Observer::new("serve_swap"),
    );

    let done = Arc::new(AtomicBool::new(false));
    let dropped = Arc::new(AtomicU64::new(0));
    let torn = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let server = Arc::clone(&server);
            let wave = Arc::clone(&wave);
            let expected = Arc::clone(&expected);
            let done = Arc::clone(&done);
            let dropped = Arc::clone(&dropped);
            let torn = Arc::clone(&torn);
            std::thread::spawn(move || {
                // (latency_ms, wave overlapped a swap)
                let mut samples: Vec<(f64, bool)> = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    let gen_before = server.generation();
                    let start = Instant::now();
                    match server.serve_pinned(&wave) {
                        Ok((gen, got)) => {
                            let lat = start.elapsed().as_secs_f64() * 1000.0;
                            let in_swap = server.generation() != gen_before;
                            samples.push((lat, in_swap));
                            match expected.get(&gen) {
                                Some(want) if *want == got => {}
                                _ => {
                                    torn.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => {
                            dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                samples
            })
        })
        .collect();

    let mut swaps = 0usize;
    let mut build_ms_total = 0.0;
    for g in 2..=target_swaps as u64 + 1 {
        publish_generation(&dir, recs[g as usize - 1].embedding(), g).expect("publish");
        loop {
            match watcher.poll_once() {
                SwapOutcome::Swapped { to, build_ms, .. } => {
                    assert_eq!(to, g, "swapped onto the published generation");
                    swaps += 1;
                    build_ms_total += build_ms;
                    break;
                }
                SwapOutcome::Unchanged => std::thread::yield_now(),
                other => panic!("publish must swap, got {other:?}"),
            }
        }
        // Let a few steady-state waves through between swaps.
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    done.store(true, Ordering::Relaxed);
    let mut steady: Vec<f64> = Vec::new();
    let mut swap_window: Vec<f64> = Vec::new();
    for t in threads {
        for (lat, in_swap) in t.join().expect("query thread") {
            if in_swap {
                swap_window.push(lat);
            } else {
                steady.push(lat);
            }
        }
    }
    let dropped = dropped.load(Ordering::Relaxed);
    let torn = torn.load(Ordering::Relaxed);
    let waves = steady.len() + swap_window.len();
    let p99_steady_ms = percentile_ms(&mut steady, 0.99);
    let p99_swap_ms = percentile_ms(&mut swap_window, 0.99);
    let mean_build_ms = build_ms_total / swaps.max(1) as f64;

    let hammer_ok = swaps == target_swaps && dropped == 0 && torn == 0;
    println!(
        "{} hammer: {swaps}/{target_swaps} swaps, {dropped} dropped, {torn} torn across {waves} waves",
        if hammer_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "  p99 steady {p99_steady_ms:.3}ms vs swap-window {p99_swap_ms:.3}ms \
         ({} swap-window waves, mean generation build {mean_build_ms:.1}ms off-path)",
        swap_window.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
    let report = serde_json::json!({
        "swaps": swaps,
        "target_swaps": target_swaps,
        "vocab": vocab,
        "dim": dim,
        "queries_per_wave": wave.len(),
        "waves": waves,
        "swap_window_waves": swap_window.len(),
        "dropped": dropped,
        "torn": torn,
        "p99_steady_ms": p99_steady_ms,
        "p99_swap_window_ms": p99_swap_ms,
        "mean_build_ms": mean_build_ms,
        "mapped": mapped_available && mapped_generations,
        "mmap_load_ms": mmap_load_ms,
        "owned_load_ms": owned_load_ms,
        "mmap_speedup": mmap_speedup,
        "bundle_bytes": bundle_bytes,
        "bit_identical": bit_identical,
        "naive_decode_ms": naive_decode_ms,
        "bulk_decode_ms": bulk_decode_ms,
        "bulk_decode_speedup": bulk_speedup,
    });
    (report, mmap_ok && hammer_ok)
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let (config, num_queries) = if opts.smoke {
        let mut c = ExperimentConfig::small(SEED);
        c.generator.num_users = 150;
        c.generator.num_locations = 120;
        c.generator.target_checkins = 6_000;
        c.validation_users = 15;
        c.test_users = 15;
        (c, 384)
    } else {
        (ExperimentConfig::medium(SEED), 2_048)
    };

    println!(
        "serve_load: preparing data (smoke={}, queries={num_queries})",
        opts.smoke
    );
    let prep = PreparedData::generate(&config).expect("prepare data");
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5E27E);
    let params =
        ModelParams::init(&mut rng, prep.vocab_size(), EMBEDDING_DIM).expect("init params");
    let rec = Recommender::new(&params);
    let queries = build_queries(&prep, num_queries);
    println!(
        "serve_load: vocab={} dim={} queries={}",
        rec.vocab_size(),
        rec.dim(),
        queries.len()
    );

    let expected = sequential_reference(&rec, &queries);

    let mut ok = true;
    let mut rows = Vec::new();
    for max_batch in [1usize, 32, 256] {
        let engine = BatchEngine::new(
            rec.clone(),
            ServeConfig {
                max_batch,
                workers: 4,
                cache_capacity: 4096,
                ann: None,
            },
        )
        .expect("engine config");

        // Pass 1: cold cache — every query is scored through the batched
        // kernel; results must be bit-identical to the sequential path.
        let mut got = Vec::with_capacity(queries.len());
        for wave in queries.chunks(WAVE) {
            got.extend(engine.serve(wave).expect("serve wave"));
        }
        let identical = got == expected;
        ok &= identical;
        println!(
            "{} batch={max_batch}: batched results {} sequential",
            if identical { "PASS" } else { "FAIL" },
            if identical {
                "bit-identical to"
            } else {
                "DIVERGED from"
            }
        );

        // Pass 2: warm cache — the same stream again, to exercise the LRU
        // path. Results must not change.
        let mut warm = Vec::with_capacity(queries.len());
        for wave in queries.chunks(WAVE) {
            warm.extend(engine.serve(wave).expect("serve warm wave"));
        }
        let warm_identical = warm == expected;
        ok &= warm_identical;
        let t = engine.telemetry();
        ok &= t.cache_hits > 0;
        println!(
            "{} batch={max_batch}: warm pass identical, hit rate {:.3}",
            if warm_identical && t.cache_hits > 0 {
                "PASS"
            } else {
                "FAIL"
            },
            t.cache_hit_rate()
        );
        println!(
            "  qps={:.0} p50={:.3}ms p95={:.3}ms p99={:.3}ms batches={} wall={:.1}ms",
            t.qps, t.p50_ms, t.p95_ms, t.p99_ms, t.batches, t.wall_ms
        );

        rows.push(serde_json::json!({
            "max_batch": max_batch,
            "workers": 4,
            "qps": t.qps,
            "p50_ms": t.p50_ms,
            "p95_ms": t.p95_ms,
            "p99_ms": t.p99_ms,
            "wall_ms": t.wall_ms,
            "batches": t.batches,
            "cache_hit_rate": t.cache_hit_rate(),
            "bit_identical": identical && warm_identical,
        }));
    }

    // Optional trace export (`--trace FILE`): one traced serve pass over a
    // wave, dumped as a Chrome/Perfetto trace for ad-hoc inspection. The
    // traced results must stay bit-identical to the sequential reference.
    if let Some(trace_out) = &opts.trace {
        let obs = plp_obs::Observer::new("serve_load");
        let tracer = obs
            .attach_tracer(plp_obs::trace::TraceConfig::named("serve_load"))
            .expect("attach tracer");
        let engine = BatchEngine::with_observer(
            rec.clone(),
            ServeConfig {
                max_batch: 32,
                workers: 4,
                cache_capacity: 4096,
                ann: None,
            },
            obs,
        )
        .expect("traced engine");
        let subset = &queries[..queries.len().min(WAVE)];
        let traced = engine.serve(subset).expect("traced serve");
        let identical = traced == expected[..subset.len()];
        ok &= identical;
        let spans = tracer.snapshot().len();
        println!(
            "{} traced serve pass bit-identical ({} queries, {spans} spans)",
            if identical { "PASS" } else { "FAIL" },
            subset.len()
        );
        let tmp = std::env::temp_dir().join(format!("serve_trace_{}.jsonl", std::process::id()));
        tracer.dump_to(&tmp, "serve_load").expect("dump trace");
        let dump =
            plp_obs::trace::parse_dump_jsonl(&std::fs::read_to_string(&tmp).expect("read dump"))
                .expect("parse dump");
        std::fs::remove_file(&tmp).ok();
        std::fs::write(trace_out, plp_obs::trace::stitch_chrome_trace(&[dump]))
            .expect("write trace");
        println!("serve_load: wrote trace {trace_out}");
    }

    // Section 2: the 100k-location city, ANN vs exhaustive. The city is
    // built once and shared with the hot-swap section.
    let (world, city_rec) = build_city();
    let (ann_report, ann_ok) = run_ann_city_bench(&opts, &world, &city_rec);
    ok &= ann_ok;

    // Section 3 (`--swap`): zero-copy load timing and hot-swap under load.
    let swap_report = if opts.swap {
        let (report, swap_ok) = run_swap_bench(&opts, &city_rec);
        ok &= swap_ok;
        report
    } else {
        serde_json::Value::Null
    };

    let payload = serde_json::json!({
        "bench": "serve",
        "seed": SEED,
        "smoke": opts.smoke,
        "kernel_scheme_version": KERNEL_SCHEME_VERSION,
        "vocab": rec.vocab_size(),
        "dim": rec.dim(),
        "top_k": TOP_K,
        "queries_per_pass": queries.len(),
        "batch_sizes": rows,
        "ann": ann_report,
        "swap": swap_report,
    });
    let text = serde_json::to_string_pretty(&payload).expect("serialise payload");
    std::fs::write(&opts.out, text).expect("write output");
    println!("serve_load: wrote {}", opts.out);

    if ok {
        println!("serve_load: all checks passed");
        ExitCode::SUCCESS
    } else {
        println!("serve_load: FAILURES detected");
        ExitCode::FAILURE
    }
}
