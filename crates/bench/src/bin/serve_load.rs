//! Serving load generator: replays held-out test sequences through the
//! batched `plp-serve` engine, asserts the batched results are
//! bit-identical to the sequential `Recommender` path, and reports
//! throughput/latency/cache telemetry per batch size.
//!
//! Usage:
//!   cargo run --release -p plp-bench --bin serve_load            # full run
//!   cargo run --release -p plp-bench --bin serve_load -- --smoke # CI smoke
//!   ... -- --out path.json                                       # output path
//!
//! Writes `BENCH_serve.json` (or `--out`) and exits non-zero if any
//! batched result diverges from the sequential reference.

use std::process::ExitCode;

use plp_core::experiment::{ExperimentConfig, PreparedData};
use plp_model::metrics::leave_one_out_trials;
use plp_model::params::ModelParams;
use plp_model::Recommender;
use plp_serve::{BatchEngine, Query, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 42;
const EMBEDDING_DIM: usize = 32;
const TOP_K: usize = 10;
const WAVE: usize = 512;

struct Opts {
    smoke: bool,
    out: String,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    Opts { smoke, out }
}

/// Builds the query stream: leave-one-out test prefixes, alternating
/// between plain queries and queries that exclude the just-visited
/// locations (the paper's deployment pattern), cycled up to `target`.
fn build_queries(prep: &PreparedData, target: usize) -> Vec<Query> {
    let trials = leave_one_out_trials(&prep.test);
    assert!(!trials.is_empty(), "test split produced no trials");
    let mut queries = Vec::with_capacity(target);
    let ks = [TOP_K, 5, 20];
    for i in 0..target {
        let (recent, _target) = &trials[i % trials.len()];
        let k = ks[(i / trials.len()) % ks.len()];
        if i % 2 == 0 {
            queries.push(Query::new(recent.to_vec(), k));
        } else {
            queries.push(Query::with_exclusions(recent.to_vec(), k, recent.to_vec()));
        }
    }
    queries
}

fn sequential_reference(rec: &Recommender, queries: &[Query]) -> Vec<Vec<usize>> {
    queries
        .iter()
        .map(|q| {
            if q.exclude.is_empty() {
                rec.recommend(&q.recent, q.k).expect("sequential recommend")
            } else {
                rec.recommend_excluding(&q.recent, q.k, &q.exclude)
                    .expect("sequential recommend_excluding")
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let (config, num_queries) = if opts.smoke {
        let mut c = ExperimentConfig::small(SEED);
        c.generator.num_users = 150;
        c.generator.num_locations = 120;
        c.generator.target_checkins = 6_000;
        c.validation_users = 15;
        c.test_users = 15;
        (c, 384)
    } else {
        (ExperimentConfig::medium(SEED), 2_048)
    };

    println!(
        "serve_load: preparing data (smoke={}, queries={num_queries})",
        opts.smoke
    );
    let prep = PreparedData::generate(&config).expect("prepare data");
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5E27E);
    let params =
        ModelParams::init(&mut rng, prep.vocab_size(), EMBEDDING_DIM).expect("init params");
    let rec = Recommender::new(&params);
    let queries = build_queries(&prep, num_queries);
    println!(
        "serve_load: vocab={} dim={} queries={}",
        rec.vocab_size(),
        rec.dim(),
        queries.len()
    );

    let expected = sequential_reference(&rec, &queries);

    let mut ok = true;
    let mut rows = Vec::new();
    for max_batch in [1usize, 32, 256] {
        let engine = BatchEngine::new(
            rec.clone(),
            ServeConfig {
                max_batch,
                workers: 4,
                cache_capacity: 4096,
            },
        )
        .expect("engine config");

        // Pass 1: cold cache — every query is scored through the batched
        // kernel; results must be bit-identical to the sequential path.
        let mut got = Vec::with_capacity(queries.len());
        for wave in queries.chunks(WAVE) {
            got.extend(engine.serve(wave).expect("serve wave"));
        }
        let identical = got == expected;
        ok &= identical;
        println!(
            "{} batch={max_batch}: batched results {} sequential",
            if identical { "PASS" } else { "FAIL" },
            if identical {
                "bit-identical to"
            } else {
                "DIVERGED from"
            }
        );

        // Pass 2: warm cache — the same stream again, to exercise the LRU
        // path. Results must not change.
        let mut warm = Vec::with_capacity(queries.len());
        for wave in queries.chunks(WAVE) {
            warm.extend(engine.serve(wave).expect("serve warm wave"));
        }
        let warm_identical = warm == expected;
        ok &= warm_identical;
        let t = engine.telemetry();
        ok &= t.cache_hits > 0;
        println!(
            "{} batch={max_batch}: warm pass identical, hit rate {:.3}",
            if warm_identical && t.cache_hits > 0 {
                "PASS"
            } else {
                "FAIL"
            },
            t.cache_hit_rate()
        );
        println!(
            "  qps={:.0} p50={:.3}ms p95={:.3}ms p99={:.3}ms batches={} wall={:.1}ms",
            t.qps, t.p50_ms, t.p95_ms, t.p99_ms, t.batches, t.wall_ms
        );

        rows.push(serde_json::json!({
            "max_batch": max_batch,
            "workers": 4,
            "qps": t.qps,
            "p50_ms": t.p50_ms,
            "p95_ms": t.p95_ms,
            "p99_ms": t.p99_ms,
            "wall_ms": t.wall_ms,
            "batches": t.batches,
            "cache_hit_rate": t.cache_hit_rate(),
            "bit_identical": identical && warm_identical,
        }));
    }

    let payload = serde_json::json!({
        "bench": "serve",
        "seed": SEED,
        "smoke": opts.smoke,
        "vocab": rec.vocab_size(),
        "dim": rec.dim(),
        "top_k": TOP_K,
        "queries_per_pass": queries.len(),
        "batch_sizes": rows,
    });
    let text = serde_json::to_string_pretty(&payload).expect("serialise payload");
    std::fs::write(&opts.out, text).expect("write output");
    println!("serve_load: wrote {}", opts.out);

    if ok {
        println!("serve_load: all checks passed");
        ExitCode::SUCCESS
    } else {
        println!("serve_load: FAILURES detected");
        ExitCode::FAILURE
    }
}
