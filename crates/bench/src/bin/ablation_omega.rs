//! §4.2 Case-2 ablation: splitting each user's data across ω = 2 buckets
//! (with the mandatory ω² noise-variance scaling) vs ω = 1.
//!
//! The paper: "values of ω > 1 produced no positive effect … the marginally
//! improved signal from the split data is offset by the now quadrupled
//! noise variance."
//!
//! Usage: `cargo run --release -p plp-bench --bin ablation_omega
//! [--scale bench|figure] [--seed N] [--seeds N]`

use plp_bench::cli::parse_args;
use plp_bench::figures::ablation_omega;
use plp_bench::runner::drive_sweep;
use plp_core::experiment::PreparedData;

fn main() {
    let opts = parse_args();
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    let points = ablation_omega(opts.scale);
    drive_sweep(
        "ablation_omega",
        "HR@10 with split factor omega in {1, 2} (noise scaled by omega)",
        &prep,
        &points,
        opts.seed,
        opts.seeds,
    );
}
