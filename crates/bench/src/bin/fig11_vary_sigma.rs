//! Figure 11: effect of the noise scale σ on accuracy
//! (four (q, ε) settings, λ = 4).
//!
//! Usage: `cargo run --release -p plp-bench --bin fig11_vary_sigma
//! [--scale bench|figure] [--seed N] [--seeds N]`

use plp_bench::cli::parse_args;
use plp_bench::figures::fig11;
use plp_bench::runner::drive_sweep;
use plp_core::experiment::PreparedData;

fn main() {
    let opts = parse_args();
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    let points = fig11(opts.scale);
    drive_sweep(
        "fig11",
        "HR@10 vs noise scale sigma (lambda=4)",
        &prep,
        &points,
        opts.seed,
        opts.seeds,
    );
}
