//! Calibration probe: PLP vs DP-SGD with clip-fraction telemetry, used to
//! find the regime where the paper's grouping mechanism reproduces.
//!
//! Usage:
//! `cargo run --release -p plp-bench --bin probe [eps] [sigma] [locations] [server_lr] [dim]`

use rand::rngs::StdRng;
use rand::SeedableRng;

use plp_bench::runner::Scale;
use plp_core::config::ServerOptimizer;
use plp_core::dpsgd::train_dpsgd;
use plp_core::experiment::{evaluate, PreparedData};
use plp_core::plp::train_plp;
use plp_model::params::ModelParams;
use plp_privacy::PrivacyBudget;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let eps: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let sigma: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2.5);
    let locations: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(600);
    let server_lr: f64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0.06);
    let dim: usize = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(50);

    let scale = Scale::Figure;
    let mut cfg = scale.experiment_config(42);
    cfg.generator.num_locations = locations;
    cfg.generator.num_clusters = (locations / 60).max(4);
    let prep = PreparedData::generate(&cfg).unwrap();
    println!(
        "dataset: {} users, {} locations, {} check-ins, density {:.4}%",
        prep.stats.num_users,
        prep.stats.num_locations,
        prep.stats.num_checkins,
        prep.stats.density * 100.0
    );
    let counts = plp_model::metrics::token_counts(&prep.train);
    let pop = plp_model::metrics::popularity_hit_rate(&counts, &prep.test, &[10]);
    // Init-model floor.
    let mut rng0 = StdRng::seed_from_u64(7);
    let init = ModelParams::init(&mut rng0, prep.vocab_size(), dim).unwrap();
    let init_hr = evaluate(&init, &prep.test, &[10]).unwrap()[0].rate();
    println!(
        "popularity HR@10 {:.4} | init HR@10 {:.4} | eps={eps} sigma={sigma} lr={server_lr} dim={dim}",
        pop[0].rate(),
        init_hr
    );

    let mut hp = scale.hyperparameters();
    hp.embedding_dim = dim;
    hp.budget = PrivacyBudget::new(eps, 2e-4).unwrap();
    hp.noise_multiplier = sigma;
    hp.server_optimizer = ServerOptimizer::Adam {
        learning_rate: server_lr,
    };
    hp.max_steps = std::env::var("MAX_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);

    for lambda in [1usize, 2, 4, 5, 6] {
        let mut h = hp.clone();
        h.grouping_factor = lambda;
        let mut rng = StdRng::seed_from_u64(100 + lambda as u64);
        let start = std::time::Instant::now();
        let out = if lambda == 1 {
            train_dpsgd(&mut rng, &prep.train, None, &h).unwrap()
        } else {
            train_plp(&mut rng, &prep.train, None, &h).unwrap()
        };
        let hr = evaluate(&out.params, &prep.test, &[10]).unwrap();
        let mean_clip: f64 = out.telemetry.iter().map(|t| t.clip_fraction).sum::<f64>()
            / out.telemetry.len().max(1) as f64;
        let mean_loss_first = out
            .telemetry
            .first()
            .map(|t| t.mean_local_loss)
            .unwrap_or(0.0);
        let mean_loss_last = out
            .telemetry
            .last()
            .map(|t| t.mean_local_loss)
            .unwrap_or(0.0);
        println!(
            "lambda={lambda}: HR@10 {:.4} steps {} eps {:.3} clip-frac {:.3} loss {:.3}->{:.3} wall {:.1}s",
            hr[0].rate(),
            out.summary.steps,
            out.summary.epsilon_spent,
            mean_clip,
            mean_loss_first,
            mean_loss_last,
            start.elapsed().as_secs_f64()
        );
    }
}
