//! §4.1 ablation: random vs equal-frequency grouping.
//!
//! The paper: "we noticed no statistically significant benefit in model
//! accuracy from equal frequency grouping than with a random grouping."
//!
//! Usage: `cargo run --release -p plp-bench --bin ablation_grouping_strategy
//! [--scale bench|figure] [--seed N] [--seeds N]`

use plp_bench::cli::parse_args;
use plp_bench::figures::ablation_grouping;
use plp_bench::runner::drive_sweep;
use plp_core::experiment::PreparedData;

fn main() {
    let opts = parse_args();
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    let points = ablation_grouping(opts.scale);
    drive_sweep(
        "ablation_grouping_strategy",
        "HR@10: random vs equal-frequency bucketing (eps=2)",
        &prep,
        &points,
        opts.seed,
        opts.seeds,
    );
}
