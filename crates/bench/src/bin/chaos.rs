//! Crash-safety smoke drill: kill-and-resume determinism, fault-injected
//! training and torn-checkpoint detection, all at bench scale.
//!
//! Usage: `cargo run --release -p plp-bench --bin chaos`
//!
//! Exits non-zero if any drill fails, so it can gate CI.

use std::path::PathBuf;
use std::process::ExitCode;

use plp_bench::runner::{run_point_with, RunControl, Scale, SweepPoint};
use plp_core::checkpoint::load_checkpoint;
use plp_core::experiment::PreparedData;
use plp_core::faults::{FaultInjector, FaultPlan};
use plp_core::plp::{resume_plp, train_plp_resumable, CheckpointPolicy, TrainOptions};
use plp_core::telemetry::StopReason;
use plp_core::CoreError;
use plp_privacy::PrivacyBudget;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plp_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

/// Injected bucket panics are part of the drill; keep the default hook
/// for everything else so real bugs still print a backtrace.
fn silence_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected bucket-worker fault"));
        if !injected {
            previous(info);
        }
    }));
}

fn check(name: &str, ok: bool, detail: &str) -> bool {
    println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn main() -> ExitCode {
    silence_injected_panics();
    let scale = Scale::Bench;
    let prep = PreparedData::generate(&scale.experiment_config(42)).expect("prepare data");
    let mut hp = scale.hyperparameters();
    hp.grouping_factor = 4;
    hp.max_steps = 6;
    hp.noise_multiplier = 2.5;
    hp.budget = PrivacyBudget::new(8.0, 2e-4).expect("budget");
    let seed = 7u64;
    let mut all_ok = true;

    // Drill 1: kill after step 3, resume from the step-2 checkpoint, and
    // demand bit-identical parameters, ledger and ε.
    println!("== drill 1: kill -9 and resume ==");
    let reference = train_plp_resumable(seed, &prep.train, None, &hp, &TrainOptions::default())
        .expect("reference run");
    let path = scratch("kill.plpc");
    let crash = TrainOptions {
        checkpoint: Some(CheckpointPolicy {
            path: path.clone(),
            every: 2,
        }),
        halt_after: Some(3),
        ..TrainOptions::default()
    };
    let interrupted =
        train_plp_resumable(seed, &prep.train, None, &hp, &crash).expect("interrupted run");
    all_ok &= check(
        "interrupt",
        interrupted.summary.stop_reason == StopReason::Interrupted
            && interrupted.summary.steps == 3,
        &format!(
            "halted at step {} ({:?})",
            interrupted.summary.steps, interrupted.summary.stop_reason
        ),
    );
    let ckpt = load_checkpoint(&path).expect("load checkpoint");
    all_ok &= check(
        "checkpoint",
        ckpt.step == 2,
        &format!("newest surviving save is step {}", ckpt.step),
    );
    let resumed =
        resume_plp(ckpt, &prep.train, None, &hp, &TrainOptions::default()).expect("resumed run");
    all_ok &= check(
        "bit-identity",
        resumed.params == reference.params
            && resumed.ledger.entries() == reference.ledger.entries()
            && resumed.summary.epsilon_spent.to_bits() == reference.summary.epsilon_spent.to_bits(),
        &format!(
            "resumed ε={:.6} vs reference ε={:.6} over {} steps",
            resumed.summary.epsilon_spent, reference.summary.epsilon_spent, resumed.summary.steps
        ),
    );

    // Drill 2: poisoned buckets and panicking workers must be dropped
    // without breaking the run or the privacy accounting. A higher
    // sampling rate forms enough buckets per step that the run survives
    // the faults instead of diverging.
    println!("== drill 2: poisoned buckets and panicking workers ==");
    let mut degraded_hp = hp.clone();
    degraded_hp.sampling_prob = 0.3;
    let faulty = TrainOptions {
        faults: FaultInjector::with_plan(FaultPlan {
            nan_delta_rate: 0.25,
            panic_rate: 0.15,
            ..FaultPlan::quiet(99)
        }),
        ..TrainOptions::default()
    };
    let degraded =
        train_plp_resumable(seed, &prep.train, None, &degraded_hp, &faulty).expect("degraded run");
    let skipped: usize = degraded.telemetry.iter().map(|t| t.skipped_buckets).sum();
    all_ok &= check(
        "degraded-mode",
        skipped > 0
            && degraded.params.all_finite()
            && degraded.summary.stop_reason == StopReason::MaxSteps,
        &format!(
            "{skipped} buckets dropped across {} steps, finished with {:?}",
            degraded.summary.steps, degraded.summary.stop_reason
        ),
    );
    all_ok &= check(
        "dp-accounting",
        degraded.summary.epsilon_spent < degraded_hp.budget.epsilon
            && degraded.ledger.total_steps() == degraded.summary.steps,
        &format!(
            "ε={:.4} ≤ budget {:.4}, every step in the ledger",
            degraded.summary.epsilon_spent, degraded_hp.budget.epsilon
        ),
    );

    // Drill 3: a torn checkpoint write must be caught by the integrity
    // checks, and the auto-resuming runner must fall back to a fresh run.
    println!("== drill 3: torn checkpoint write ==");
    let torn_path = scratch("torn.plpc");
    let torn = TrainOptions {
        faults: FaultInjector::with_plan(FaultPlan {
            truncate_write_rate: 1.0,
            ..FaultPlan::quiet(4)
        }),
        checkpoint: Some(CheckpointPolicy {
            path: torn_path.clone(),
            every: 1,
        }),
        ..TrainOptions::default()
    };
    train_plp_resumable(seed, &prep.train, None, &hp, &torn).expect("torn run");
    let detected = matches!(
        load_checkpoint(&torn_path),
        Err(CoreError::CheckpointCorrupt { .. })
    );
    all_ok &= check(
        "torn-write",
        detected,
        "CRC/structure checks rejected the torn file",
    );
    let point = SweepPoint {
        method: "PLP λ=4".into(),
        x: 0.0,
        hp: hp.clone(),
        dpsgd: false,
    };
    let control = RunControl::checkpointed(torn_path.clone(), 0);
    let recovered = run_point_with(&prep, &point, seed, &control);
    all_ok &= check(
        "auto-restart",
        recovered.as_ref().map(|r| r.steps).unwrap_or(0) == hp.max_steps as u64,
        &format!("runner restarted from scratch: {recovered:?}"),
    );

    if all_ok {
        println!("chaos: all drills passed");
        ExitCode::SUCCESS
    } else {
        println!("chaos: FAILURES above");
        ExitCode::FAILURE
    }
}
