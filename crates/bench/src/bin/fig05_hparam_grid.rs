//! Figure 5: non-private hyper-parameter tuning — validation HR@{5,10,20}
//! while varying one of {dim, win, b, neg} around the defaults.
//!
//! Usage: `cargo run --release -p plp-bench --bin fig05_hparam_grid
//! [--scale bench|figure] [--seed N]`

use rand::rngs::StdRng;
use rand::SeedableRng;

use plp_bench::cli::parse_args;
use plp_bench::runner::Scale;
use plp_core::experiment::{ExperimentConfig, PreparedData};
use plp_core::nonprivate::{train_nonprivate, NonPrivateConfig};
use plp_core::Hyperparameters;
use plp_model::metrics::evaluate_hit_rate;
use plp_model::Recommender;

fn epochs_for(scale: Scale) -> usize {
    match scale {
        Scale::Bench => 2,
        Scale::Figure => 10,
    }
}

fn run_one(prep: &PreparedData, hp: &Hyperparameters, epochs: usize, seed: u64) -> (f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let out = train_nonprivate(
        &mut rng,
        &prep.train,
        None,
        hp,
        &NonPrivateConfig {
            epochs,
            ..NonPrivateConfig::default()
        },
    )
    .expect("training");
    let rec = Recommender::new(&out.params);
    let hr = evaluate_hit_rate(&rec, &prep.validation, &[5, 10, 20]).expect("evaluation");
    (hr[0].rate(), hr[1].rate(), hr[2].rate())
}

fn main() {
    let opts = parse_args();
    let cfg: ExperimentConfig = opts.scale.experiment_config(opts.seed);
    let prep = PreparedData::generate(&cfg).expect("data preparation");
    let epochs = epochs_for(opts.scale);
    let base = opts.scale.hyperparameters();
    println!("== fig05: non-private hyperparameter grid (validation HR) ==");
    println!(
        "dataset: {} users, {} locations, {} check-ins; {} epochs per point",
        prep.stats.num_users, prep.stats.num_locations, prep.stats.num_checkins, epochs
    );
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "panel", "value", "HR@5", "HR@10", "HR@20"
    );

    let mut json_rows = Vec::new();
    // Panel 1: embedding dimension.
    for &dim in &[25usize, 50, 75, 100, 125] {
        let mut hp = base.clone();
        hp.embedding_dim = dim;
        let (h5, h10, h20) = run_one(&prep, &hp, epochs, opts.seed + 1);
        println!(
            "{:<10} {:>8} {:>8.4} {:>8.4} {:>8.4}",
            "dim", dim, h5, h10, h20
        );
        json_rows.push(
            serde_json::json!({"panel": "dim", "value": dim, "hr5": h5, "hr10": h10, "hr20": h20}),
        );
    }
    // Panel 2: skip window.
    for &win in &[1usize, 2, 3, 4, 5] {
        let mut hp = base.clone();
        hp.context_window = win;
        let (h5, h10, h20) = run_one(&prep, &hp, epochs, opts.seed + 2);
        println!(
            "{:<10} {:>8} {:>8.4} {:>8.4} {:>8.4}",
            "win", win, h5, h10, h20
        );
        json_rows.push(
            serde_json::json!({"panel": "win", "value": win, "hr5": h5, "hr10": h10, "hr20": h20}),
        );
    }
    // Panel 3: batch size.
    for &b in &[16usize, 32, 64, 128, 256] {
        let mut hp = base.clone();
        hp.batch_size = b;
        let (h5, h10, h20) = run_one(&prep, &hp, epochs, opts.seed + 3);
        println!(
            "{:<10} {:>8} {:>8.4} {:>8.4} {:>8.4}",
            "batch", b, h5, h10, h20
        );
        json_rows.push(
            serde_json::json!({"panel": "batch", "value": b, "hr5": h5, "hr10": h10, "hr20": h20}),
        );
    }
    // Panel 4: negative samples.
    for &neg in &[4usize, 8, 16, 32, 64] {
        let mut hp = base.clone();
        hp.negative_samples = neg;
        let (h5, h10, h20) = run_one(&prep, &hp, epochs, opts.seed + 4);
        println!(
            "{:<10} {:>8} {:>8.4} {:>8.4} {:>8.4}",
            "neg", neg, h5, h10, h20
        );
        json_rows.push(
            serde_json::json!({"panel": "neg", "value": neg, "hr5": h5, "hr10": h10, "hr20": h20}),
        );
    }
    println!(
        "JSON {}",
        serde_json::json!({"figure": "fig05", "rows": json_rows})
    );
}
