//! Figure 7: PLP vs DP-SGD — prediction accuracy vs privacy budget ε.
//!
//! Paper series: PLP (λ = 6), PLP (λ = 4) and DP-SGD over
//! ε ∈ {0.5, 1, 2, 3, 4}, for q = 0.06 and q = 0.10, σ = 1.5.
//!
//! Usage: `cargo run --release -p plp-bench --bin fig07_plp_vs_dpsgd_eps
//! [--scale bench|figure] [--seed N] [--seeds N]`

use plp_bench::cli::parse_args;
use plp_bench::figures::fig07;
use plp_bench::runner::drive_sweep;
use plp_core::experiment::PreparedData;

fn main() {
    let opts = parse_args();
    let prep =
        PreparedData::generate(&opts.scale.experiment_config(opts.seed)).expect("data preparation");
    for q in [0.06, 0.10] {
        let points = fig07(opts.scale, q);
        drive_sweep(
            &format!("fig07(q={q})"),
            "HR@10 vs privacy budget eps (sigma=1.5)",
            &prep,
            &points,
            opts.seed.wrapping_add((q * 1000.0) as u64),
            opts.seeds,
        );
    }
}
