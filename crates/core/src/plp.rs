//! Algorithm 1: `TrainPrivateLocationEmbedding` — Private Location
//! Prediction with user-level differential privacy.
//!
//! Each step: Poisson-sample users (line 5), group into buckets of λ
//! (line 6), compute a clipped local-SGD delta per bucket (lines 7–8 /
//! 15–22), sum and perturb with `N(0, σ²ω²C²I)` (line 9), average by the
//! fixed denominator `|H|` and update the model (line 10), then track the
//! step in the privacy ledger (line 11) and stop once the moments
//! accountant reaches ε (lines 12–13).
//!
//! Differences from the paper's pseudo-code, all behaviour-preserving:
//! * The budget check *peeks* at the ε a step would cost before running it,
//!   so the released model never exceeds the budget (the pseudo-code runs
//!   the step and returns θ_{t−1}; peeking returns the same parameters
//!   without paying for a discarded step).
//! * Bucket updates may run on several worker threads; every bucket derives
//!   its own RNG from the step seed, so the result is bit-identical to the
//!   sequential execution.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use plp_data::dataset::TokenizedDataset;
use plp_data::grouping::{group_data, group_data_split, realized_split_factor, Bucket};
use plp_data::sampling::sample_users;
use plp_data::DataError;
use plp_linalg::ops;
use plp_linalg::sample::NormalSampler;
use plp_model::clip::clip_per_layer;
use plp_model::grad::SparseGrad;
use plp_model::metrics::evaluate_hit_rate;
use plp_model::negative::NegativeSampler;
use plp_model::optimizer::{ServerAdam, ServerSgd};
use plp_model::params::ModelParams;
use plp_model::train::train_on_tokens;
use plp_model::Recommender;
use plp_privacy::accountant::MomentsAccountant;
use plp_privacy::PrivacyLedger;

use crate::config::{Hyperparameters, ServerOptimizer};
use crate::error::CoreError;
use crate::telemetry::{RunSummary, StepTelemetry, StopReason};

/// Result of a private training run.
#[derive(Debug, Clone)]
pub struct PlpOutcome {
    /// The trained (and DP-protected) model parameters.
    pub params: ModelParams,
    /// Per-step observations.
    pub telemetry: Vec<StepTelemetry>,
    /// Run summary (steps, ε spent, stop reason).
    pub summary: RunSummary,
    /// The auditable privacy ledger.
    pub ledger: PrivacyLedger,
}

/// One bucket's contribution to the Gaussian sum query.
struct BucketUpdate {
    index: usize,
    grad: SparseGrad,
    mean_loss: f64,
    clipped: bool,
}

/// `ModelUpdateFromBucket` (Algorithm 1, lines 15–22): local SGD from θ_t,
/// delta extraction and per-layer clipping.
fn model_update_from_bucket(
    theta: &ModelParams,
    bucket: &Bucket,
    hp: &Hyperparameters,
    seed: u64,
    index: usize,
) -> Result<BucketUpdate, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut phi = theta.clone();
    let stats = train_on_tokens(
        &mut rng,
        &mut phi,
        &bucket.tokens,
        &hp.local_sgd(),
        &NegativeSampler::Uniform,
    )?;
    let mut grad = SparseGrad::from_delta(
        theta,
        &phi,
        stats.touched.embedding.iter().copied(),
        stats.touched.context.iter().copied(),
        stats.touched.bias.iter().copied(),
    );
    let report = clip_per_layer(&mut grad, hp.clip_norm)?;
    Ok(BucketUpdate { index, grad, mean_loss: stats.mean_loss, clipped: report.any_clipped() })
}

/// Computes all bucket updates, optionally on worker threads. Results are
/// sorted by bucket index so the floating-point accumulation order (and
/// hence the output) is identical for any thread count.
fn compute_bucket_updates(
    theta: &ModelParams,
    buckets: &[Bucket],
    hp: &Hyperparameters,
    step_seed: u64,
) -> Result<Vec<BucketUpdate>, CoreError> {
    let threads = hp.threads.min(buckets.len().max(1));
    let mut updates: Vec<BucketUpdate> = if threads <= 1 {
        buckets
            .iter()
            .enumerate()
            .map(|(i, b)| model_update_from_bucket(theta, b, hp, step_seed, i))
            .collect::<Result<_, _>>()?
    } else {
        let results = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let theta_ref = &*theta;
                let hp_ref = &*hp;
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::new();
                    for (i, b) in buckets.iter().enumerate() {
                        if i % threads == w {
                            local.push(model_update_from_bucket(
                                theta_ref, b, hp_ref, step_seed, i,
                            ));
                        }
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("bucket worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("crossbeam scope");
        results.into_iter().collect::<Result<Vec<_>, _>>()?
    };
    updates.sort_by_key(|u| u.index);
    Ok(updates)
}

fn scale_params(p: &mut ModelParams, alpha: f64) {
    ops::scale(alpha, p.embedding.as_mut_slice());
    ops::scale(alpha, p.context.as_mut_slice());
    ops::scale(alpha, &mut p.bias);
}

enum Server {
    Sgd(ServerSgd),
    Adam(Box<ServerAdam>),
}

impl Server {
    fn new(opt: ServerOptimizer, template: &ModelParams) -> Result<Self, CoreError> {
        Ok(match opt {
            ServerOptimizer::Sgd { learning_rate } => Server::Sgd(ServerSgd::new(learning_rate)?),
            ServerOptimizer::Adam { learning_rate } => {
                Server::Adam(Box::new(ServerAdam::new(template, learning_rate)?))
            }
        })
    }

    fn step(&mut self, params: &mut ModelParams, update: &ModelParams) -> Result<(), CoreError> {
        match self {
            Server::Sgd(s) => s.step(params, update)?,
            Server::Adam(a) => a.step(params, update)?,
        }
        Ok(())
    }
}

/// Trains a skip-gram model on `train` under user-level (ε, δ)-DP.
///
/// `validation` (held-out users) is only consulted when
/// `hp.eval_every > 0`, to record HR@10 telemetry; it never influences
/// training.
///
/// # Errors
/// Propagates configuration, data, model and privacy errors. A model is
/// always returned on `Ok`, even if zero steps fit in the budget.
pub fn train_plp<R: Rng + ?Sized>(
    rng: &mut R,
    train: &TokenizedDataset,
    validation: Option<&TokenizedDataset>,
    hp: &Hyperparameters,
) -> Result<PlpOutcome, CoreError> {
    hp.validate()?;
    if train.vocab_size < 2 {
        return Err(CoreError::BadConfig { name: "train.vocab_size", expected: ">= 2" });
    }
    let num_users = train.num_users();
    let mut params = ModelParams::init(rng, train.vocab_size, hp.embedding_dim)?;
    let mut server = Server::new(hp.server_optimizer, &params)?;
    let mut accountant = MomentsAccountant::new(hp.budget.delta)?;
    let mut noise = NormalSampler::new();
    let omega = hp.split_factor;
    let noise_std = hp.noise_multiplier * hp.clip_norm * omega as f64;

    let mut telemetry = Vec::new();
    let run_start = std::time::Instant::now();
    let mut stop_reason = StopReason::MaxSteps;

    for step in 1..=hp.max_steps as u64 {
        // Peek: would this step overshoot the budget?
        let eps_next =
            accountant.epsilon_after_hypothetical_step(hp.sampling_prob, hp.noise_multiplier)?;
        if eps_next >= hp.budget.epsilon {
            stop_reason = StopReason::BudgetExhausted;
            break;
        }
        let step_start = std::time::Instant::now();

        // Line 5: Poisson user sampling.
        let sampled = sample_users(rng, num_users, hp.sampling_prob)?;
        // Line 6: data grouping.
        let buckets = if omega == 1 {
            group_data(rng, &sampled, train, hp.grouping_factor, hp.grouping_strategy.into())?
        } else {
            match group_data_split(rng, &sampled, train, hp.grouping_factor, omega) {
                Ok(b) => b,
                // Too few sampled users to split across omega buckets this
                // step (depends only on the public sample size): fall back
                // to unsplit grouping. Noise stays scaled to omega, which
                // over-protects and is therefore safe.
                Err(DataError::BadConfig { name: "omega", .. }) => group_data(
                    rng,
                    &sampled,
                    train,
                    hp.grouping_factor,
                    hp.grouping_strategy.into(),
                )?,
                Err(e) => return Err(e.into()),
            }
        };
        debug_assert!(realized_split_factor(&buckets) <= omega);

        // Lines 7-8, 15-22: per-bucket clipped deltas.
        let step_seed: u64 = rng.random();
        let updates = compute_bucket_updates(&params, &buckets, hp, step_seed)?;

        // Line 9: Gaussian sum query over the *whole* parameter vector.
        let mut aggregate = ModelParams::zeros(params.vocab_size(), params.dim());
        for u in &updates {
            u.grad.accumulate_into(&mut aggregate)?;
        }
        noise.perturb(rng, noise_std, aggregate.embedding.as_mut_slice());
        noise.perturb(rng, noise_std, aggregate.context.as_mut_slice());
        noise.perturb(rng, noise_std, &mut aggregate.bias);
        // Fixed-denominator average.
        let denom = buckets.len().max(1) as f64;
        scale_params(&mut aggregate, 1.0 / denom);

        // Line 10: model update.
        server.step(&mut params, &aggregate)?;

        // Line 11: ledger tracking. The effective noise multiplier stays σ
        // for any ω: noise std σCω over sensitivity ωC.
        accountant.step(hp.sampling_prob, hp.noise_multiplier)?;

        let validation_hr10 = match validation {
            Some(v) if hp.eval_every > 0 && step % hp.eval_every as u64 == 0 => {
                let rec = Recommender::new(&params);
                let hr = evaluate_hit_rate(&rec, v, &[10])?;
                Some(hr[0].rate())
            }
            _ => None,
        };

        let clipped = updates.iter().filter(|u| u.clipped).count();
        telemetry.push(StepTelemetry {
            step,
            sampled_users: sampled.len(),
            buckets: buckets.len(),
            mean_local_loss: if updates.is_empty() {
                0.0
            } else {
                updates.iter().map(|u| u.mean_loss).sum::<f64>() / updates.len() as f64
            },
            clip_fraction: if updates.is_empty() {
                0.0
            } else {
                clipped as f64 / updates.len() as f64
            },
            epsilon_spent: accountant.epsilon()?,
            wall_ms: step_start.elapsed().as_secs_f64() * 1e3,
            validation_hr10,
        });
    }

    let summary = RunSummary {
        steps: accountant.steps(),
        epsilon_spent: accountant.epsilon()?,
        delta: hp.budget.delta,
        total_wall_ms: run_start.elapsed().as_secs_f64() * 1e3,
        stop_reason,
    };
    Ok(PlpOutcome {
        params,
        telemetry,
        summary,
        ledger: accountant.ledger().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_data::checkin::UserId;
    use plp_data::dataset::UserSequences;
    use plp_privacy::PrivacyBudget;

    /// A tiny corpus with two token communities, enough users for sampling.
    fn tiny_dataset(num_users: usize) -> TokenizedDataset {
        let users = (0..num_users)
            .map(|i| {
                let base = if i % 2 == 0 { 0 } else { 8 };
                UserSequences {
                    user: UserId(i as u32),
                    sessions: vec![(0..12).map(|t| base + (t + i) % 6).collect()],
                }
            })
            .collect();
        TokenizedDataset { users, vocab_size: 16 }
    }

    fn fast_hp() -> Hyperparameters {
        Hyperparameters {
            embedding_dim: 8,
            negative_samples: 4,
            sampling_prob: 0.3,
            grouping_factor: 2,
            max_steps: 5,
            budget: PrivacyBudget { epsilon: 50.0, delta: 1e-3 },
            ..Hyperparameters::default()
        }
    }

    #[test]
    fn runs_and_respects_max_steps() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = tiny_dataset(30);
        let out = train_plp(&mut rng, &ds, None, &fast_hp()).unwrap();
        assert_eq!(out.summary.steps, 5);
        assert_eq!(out.summary.stop_reason, StopReason::MaxSteps);
        assert_eq!(out.telemetry.len(), 5);
        assert!(out.params.all_finite());
        assert_eq!(out.ledger.total_steps(), 5);
        assert!(out.summary.epsilon_spent > 0.0);
    }

    #[test]
    fn budget_stop_never_exceeds_epsilon() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = tiny_dataset(30);
        let mut hp = fast_hp();
        hp.budget = PrivacyBudget { epsilon: 2.0, delta: 1e-3 };
        hp.sampling_prob = 0.2;
        hp.noise_multiplier = 1.5;
        hp.max_steps = 10_000;
        let out = train_plp(&mut rng, &ds, None, &hp).unwrap();
        assert_eq!(out.summary.stop_reason, StopReason::BudgetExhausted);
        assert!(out.summary.epsilon_spent < 2.0, "eps {}", out.summary.epsilon_spent);
        assert!(out.summary.steps > 0);
        // The ledger independently verifies the spend.
        let replay = out.ledger.epsilon(1e-3).unwrap();
        assert!((replay - out.summary.epsilon_spent).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let ds = tiny_dataset(20);
        let hp = fast_hp();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            train_plp(&mut rng, &ds, None, &hp).unwrap().params
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = tiny_dataset(24);
        let mut hp = fast_hp();
        hp.threads = 1;
        let mut rng = StdRng::seed_from_u64(5);
        let seq = train_plp(&mut rng, &ds, None, &hp).unwrap();
        hp.threads = 4;
        let mut rng = StdRng::seed_from_u64(5);
        let par = train_plp(&mut rng, &ds, None, &hp).unwrap();
        assert_eq!(seq.params, par.params, "threading must not change results");
    }

    #[test]
    fn telemetry_epsilon_is_monotone() {
        let mut rng = StdRng::seed_from_u64(6);
        let ds = tiny_dataset(20);
        let out = train_plp(&mut rng, &ds, None, &fast_hp()).unwrap();
        for w in out.telemetry.windows(2) {
            assert!(w[1].epsilon_spent > w[0].epsilon_spent);
        }
    }

    #[test]
    fn omega_two_runs_with_scaled_noise() {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = tiny_dataset(30);
        let mut hp = fast_hp();
        hp.split_factor = 2;
        hp.grouping_factor = 1;
        let out = train_plp(&mut rng, &ds, None, &hp).unwrap();
        assert!(out.params.all_finite());
        assert_eq!(out.summary.steps, 5);
    }

    #[test]
    fn eval_telemetry_present_when_requested() {
        let mut rng = StdRng::seed_from_u64(8);
        let ds = tiny_dataset(30);
        let val = tiny_dataset(4);
        let mut hp = fast_hp();
        hp.eval_every = 2;
        let out = train_plp(&mut rng, &ds, Some(&val), &hp).unwrap();
        let evals: Vec<_> =
            out.telemetry.iter().filter(|t| t.validation_hr10.is_some()).collect();
        assert_eq!(evals.len(), 2, "steps 2 and 4");
    }

    #[test]
    fn rejects_degenerate_vocab_and_config() {
        let mut rng = StdRng::seed_from_u64(9);
        let bad = TokenizedDataset { users: vec![], vocab_size: 1 };
        assert!(train_plp(&mut rng, &bad, None, &fast_hp()).is_err());
        let ds = tiny_dataset(10);
        let mut hp = fast_hp();
        hp.grouping_factor = 0;
        assert!(train_plp(&mut rng, &ds, None, &hp).is_err());
    }

    #[test]
    fn empty_population_still_consumes_budget() {
        // Zero users: every step is an empty Gaussian sum query (pure
        // noise) but the mechanism still runs and must be accounted.
        let mut rng = StdRng::seed_from_u64(10);
        let ds = TokenizedDataset { users: vec![], vocab_size: 4 };
        let out = train_plp(&mut rng, &ds, None, &fast_hp()).unwrap();
        assert_eq!(out.summary.steps, 5);
        assert!(out.summary.epsilon_spent > 0.0);
        assert!(out.telemetry.iter().all(|t| t.buckets == 0));
    }
}
