//! Algorithm 1: `TrainPrivateLocationEmbedding` — Private Location
//! Prediction with user-level differential privacy.
//!
//! Each step: Poisson-sample users (line 5), group into buckets of λ
//! (line 6), compute a clipped local-SGD delta per bucket (lines 7–8 /
//! 15–22), sum and perturb with `N(0, σ²ω²C²I)` (line 9), average by the
//! fixed denominator `q·W/λ` — the *expected* bucket count, see
//! [`fixed_denominator`] — and update the model (line 10), then track the
//! step in the privacy ledger (line 11) and stop once the moments
//! accountant reaches ε (lines 12–13).
//!
//! Differences from the paper's pseudo-code, all behaviour-preserving:
//! * The budget check *peeks* at the ε a step would cost before running it,
//!   so the released model never exceeds the budget (the pseudo-code runs
//!   the step and returns θ_{t−1}; peeking returns the same parameters
//!   without paying for a discarded step).
//! * Bucket updates may run on several worker threads; every bucket derives
//!   its own RNG from the step seed, so the result is bit-identical to the
//!   sequential execution.
//!
//! # Crash safety and degraded modes
//!
//! The loop is structured around a resumable [`TrainerState`]: all
//! per-step randomness derives from `(run_seed, step)`, so a run resumed
//! from a checkpoint is bit-identical to one that never crashed. With a
//! [`CheckpointPolicy`] installed, the trainer atomically persists a
//! [`TrainingCheckpoint`] every `every` steps; ε is always recomputed from
//! the restored privacy ledger, never trusted from a cached value.
//!
//! Buckets whose delta comes back non-finite, or whose worker panics, are
//! dropped from the Gaussian sum *before* noising. Each clipped bucket
//! contributes at most `ωC` to the sum, so dropping one (contributing 0
//! instead) never increases the query's sensitivity — the step's DP
//! accounting is unchanged, and the denominator stays the fixed `q·W/λ`
//! regardless. A step in which every bucket is poisoned stops
//! training with [`StopReason::Diverged`] after accounting the aborted
//! step conservatively (the step is paid for but its update discarded).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use plp_data::dataset::TokenizedDataset;
use plp_data::grouping::{group_data, group_data_split, realized_split_factor, Bucket};
use plp_data::sampling::sample_users;
use plp_data::DataError;
use plp_linalg::sample::mix64;
use plp_model::clip::clip_per_layer;
use plp_model::grad::SparseGrad;
use plp_model::journal::{CowParams, RowJournal};
use plp_model::metrics::evaluate_hit_rate_threaded;
use plp_model::negative::NegativeSampler;
use plp_model::optimizer::{ServerAdam, ServerSgd};
use plp_model::params::ModelParams;
use plp_model::train::{train_on_tokens_with_scratch, TrainScratch};
use plp_model::Recommender;
use plp_obs::trace::{derive_span_id, derive_trace_id, TraceContext, DOMAIN_TRAIN_STEP};
use plp_obs::{Counter, Gauge, HistogramHandle, Observer};
use plp_privacy::accountant::MomentsAccountant;
use plp_privacy::mechanism::GaussianMechanism;
use plp_privacy::PrivacyLedger;
use serde_json::json;

use crate::checkpoint::{
    config_fingerprint, encode_checkpoint, write_atomic, ServerState, TrainingCheckpoint,
};
use crate::config::{Hyperparameters, ServerOptimizer};
use crate::error::CoreError;
use crate::faults::FaultInjector;
use crate::noise::{perturb_and_scale_threaded, step_noise_seed};
use crate::telemetry::{RunSummary, StepTelemetry, StopReason};

/// Result of a private training run.
#[derive(Debug, Clone)]
pub struct PlpOutcome {
    /// The trained (and DP-protected) model parameters.
    pub params: ModelParams,
    /// Per-step observations (resumed runs report only their own steps).
    pub telemetry: Vec<StepTelemetry>,
    /// Run summary (steps, ε spent, stop reason).
    pub summary: RunSummary,
    /// The auditable privacy ledger.
    pub ledger: PrivacyLedger,
}

/// Where and how often to persist checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (overwritten atomically on every save).
    pub path: PathBuf,
    /// Save after every `every` completed steps (0 disables periodic
    /// saves; a final checkpoint is still written when training stops).
    pub every: u64,
}

/// Knobs of a resumable training run beyond the hyper-parameters.
#[derive(Debug, Clone, Default)]
pub struct TrainOptions {
    /// Fault injector (inert by default).
    pub faults: FaultInjector,
    /// Checkpointing policy; `None` disables persistence.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Stop with [`StopReason::Interrupted`] after this many *total*
    /// completed steps — a deterministic stand-in for `kill -9` in crash
    /// drills. No final checkpoint is written (a killed process would not
    /// have written one either); only periodic saves survive.
    pub halt_after: Option<u64>,
    /// Observability context: phase-latency histograms
    /// (`plp_train_phase_ms{phase=…}`), privacy-budget gauges
    /// (`plp_epsilon_spent` / `plp_epsilon_budget` / `plp_delta`),
    /// step/fault counters and the JSONL event stream. Inert by default,
    /// and never able to change what the trainer computes — only what it
    /// reports.
    pub observer: Observer,
}

/// The fixed denominator `q·W/λ` of the averaging estimator (Algorithm 1,
/// line 10): the *expected* number of buckets a step forms, which — unlike
/// the realised `|H_t|` — does not depend on the Poisson draw.
///
/// Using the expectation keeps the estimator's scale constant across
/// steps, so the degenerate step in which the sampler selects zero users
/// (or zero buckets survive) is still divided by the same `q·W/λ`, still
/// pays its RDP cost in the ledger, and never divides by zero: only a
/// population of `W = 0` users makes the expectation vanish, and that case
/// degenerates to a denominator of 1 (the update is pure noise either
/// way).
pub fn fixed_denominator(sampling_prob: f64, num_users: usize, lambda: usize) -> f64 {
    let expected = sampling_prob * num_users as f64 / lambda.max(1) as f64;
    if expected > 0.0 {
        expected
    } else {
        1.0
    }
}

/// The RNG driving step `step` (step 0 is parameter initialization).
/// Deriving from `(run_seed, step)` rather than one sequential stream is
/// what makes resumption bit-identical: step `k` draws the same variates
/// whether or not steps `1..k` ran in this process.
fn step_rng(run_seed: u64, step: u64) -> StdRng {
    StdRng::seed_from_u64(mix64(run_seed ^ mix64(step)))
}

/// One bucket's contribution to the Gaussian sum query.
///
/// Public so alternative [`BucketExecutor`]s (the federated coordinator)
/// can reconstruct updates computed in another process; the fields are
/// exactly what crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketUpdate {
    /// The bucket's position in the step's bucket list. Updates are
    /// aggregated in ascending index order, which is what makes the
    /// floating-point sum independent of who computed each bucket.
    pub index: usize,
    /// The clipped local-SGD delta Φ − θ.
    pub grad: SparseGrad,
    /// Mean local training loss over the bucket's pairs (telemetry only).
    pub mean_loss: f64,
    /// Whether per-layer clipping actually rescaled the delta.
    pub clipped: bool,
}

/// Per-bucket phase histograms, resolved once per step and shared by all
/// bucket workers (recording is thread-safe and cannot influence the
/// bucket's RNG or result).
struct BucketPhases {
    local_sgd: HistogramHandle,
    clip: HistogramHandle,
    pairs: Counter,
}

impl BucketPhases {
    fn resolve(obs: &Observer) -> Self {
        BucketPhases {
            local_sgd: obs.histogram_with("plp_train_phase_ms", "phase", "local_sgd"),
            clip: obs.histogram_with("plp_train_phase_ms", "phase", "clip"),
            pairs: obs.counter("plp_train_pairs_total"),
        }
    }
}

/// Per-worker reusable buffers for the bucket hot path: the copy-on-write
/// row journal that replaces the per-bucket `θ.clone()` and the local-SGD
/// training scratch. One instance lives per worker thread for a whole
/// step, so steady-state bucket processing performs no heap allocation
/// beyond first-touch growth.
#[derive(Default)]
struct BucketScratch {
    journal: RowJournal,
    train: TrainScratch,
}

/// Per-step context shared by every bucket worker: the step identity and
/// seed, the fault injector and the per-bucket phase histograms.
struct BucketCtx<'a> {
    step: u64,
    step_seed: u64,
    faults: &'a FaultInjector,
    phases: BucketPhases,
}

/// `ModelUpdateFromBucket` (Algorithm 1, lines 15–22): local SGD from θ_t,
/// delta extraction and per-layer clipping.
///
/// Φ is never materialised as a dense clone of θ: local SGD runs on a
/// [`CowParams`] overlay whose [`RowJournal`] snapshots only the rows the
/// bucket touches, and the sparse delta Φ − θ is drained straight from the
/// journal — bit-identical to the dense clone-and-subtract it replaced
/// (see the journal's determinism tests), at O(touched rows) instead of
/// O(L·dim) per bucket.
fn model_update_from_bucket(
    theta: &ModelParams,
    bucket: &Bucket,
    hp: &Hyperparameters,
    seed: u64,
    index: usize,
    phases: &BucketPhases,
    scratch: &mut BucketScratch,
) -> Result<BucketUpdate, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let BucketScratch { journal, train } = scratch;
    // A previous bucket on this worker may have panicked mid-update and
    // left stale Φ rows in the overlay; the next bucket must start clean.
    journal.reset();
    let span = phases.local_sgd.start_span();
    let stats = {
        let mut phi = CowParams::new(theta, journal);
        train_on_tokens_with_scratch(
            &mut rng,
            &mut phi,
            &bucket.tokens,
            &hp.local_sgd(),
            &NegativeSampler::Uniform,
            train,
            None,
        )?
    };
    span.finish();
    phases.pairs.add(stats.pairs as u64);
    let mut grad = journal.take_delta(theta);
    let span = phases.clip.start_span();
    let report = clip_per_layer(&mut grad, hp.clip_norm)?;
    span.finish();
    Ok(BucketUpdate {
        index,
        grad,
        mean_loss: stats.mean_loss,
        clipped: report.any_clipped(),
    })
}

/// Computes one bucket update behind a panic barrier. Returns `Ok(None)`
/// when the bucket must be dropped from the Gaussian sum: its worker
/// panicked or its clipped delta is non-finite. Dropping is DP-safe (the
/// bucket contributes 0 ≤ ωC instead of its delta), so training proceeds.
/// Systematic errors (bad config, shape mismatches) still propagate.
fn guarded_bucket_update(
    theta: &ModelParams,
    bucket: &Bucket,
    hp: &Hyperparameters,
    index: usize,
    ctx: &BucketCtx<'_>,
    scratch: &mut BucketScratch,
) -> Result<Option<BucketUpdate>, CoreError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if ctx.faults.panic_bucket(ctx.step, index) {
            panic!("injected bucket-worker fault");
        }
        let mut update = model_update_from_bucket(
            theta,
            bucket,
            hp,
            ctx.step_seed,
            index,
            &ctx.phases,
            scratch,
        );
        if let Ok(u) = &mut update {
            if ctx.faults.poison_delta(ctx.step, index) {
                u.grad.add_bias(0, f64::NAN);
            }
        }
        update
    }));
    match outcome {
        Err(_) => Ok(None),
        Ok(Err(e)) => Err(e),
        Ok(Ok(u)) if !u.grad.all_finite() => Ok(None),
        Ok(Ok(u)) => Ok(Some(u)),
    }
}

/// Computes all bucket updates, optionally on worker threads, dropping
/// poisoned buckets (second return value counts the drops). Results are
/// sorted by bucket index so the floating-point accumulation order (and
/// hence the output) is identical for any thread count.
fn compute_bucket_updates(
    theta: &ModelParams,
    buckets: &[Bucket],
    hp: &Hyperparameters,
    step_seed: u64,
    step: u64,
    faults: &FaultInjector,
    obs: &Observer,
) -> Result<(Vec<BucketUpdate>, usize), CoreError> {
    let ctx = BucketCtx {
        step,
        step_seed,
        faults,
        phases: BucketPhases::resolve(obs),
    };
    let threads = hp.effective_threads().min(buckets.len().max(1));
    let results: Vec<Option<BucketUpdate>> = if threads <= 1 {
        let mut scratch = BucketScratch::default();
        buckets
            .iter()
            .enumerate()
            .map(|(i, b)| guarded_bucket_update(theta, b, hp, i, &ctx, &mut scratch))
            .collect::<Result<_, _>>()?
    } else {
        let collected = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let theta_ref = &*theta;
                let hp_ref = &*hp;
                let ctx_ref = &ctx;
                handles.push(scope.spawn(move |_| {
                    // One scratch per worker: buckets on the same worker
                    // reuse its journal and training buffers.
                    let mut scratch = BucketScratch::default();
                    let mut local = Vec::new();
                    for (i, b) in buckets.iter().enumerate() {
                        if i % threads == w {
                            local.push(guarded_bucket_update(
                                theta_ref,
                                b,
                                hp_ref,
                                i,
                                ctx_ref,
                                &mut scratch,
                            ));
                        }
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("bucket worker escaped its panic barrier"))
                .collect::<Vec<_>>()
        })
        .expect("crossbeam scope");
        collected.into_iter().collect::<Result<Vec<_>, _>>()?
    };
    let skipped = results.iter().filter(|r| r.is_none()).count();
    let mut updates: Vec<BucketUpdate> = results.into_iter().flatten().collect();
    updates.sort_by_key(|u| u.index);
    Ok((updates, skipped))
}

/// Computes single bucket updates outside the training loop — the worker
/// side of the federated protocol. Wraps the same scratch buffers and
/// panic barrier as the in-process path, so a bucket computed through a
/// runner in another process is bit-identical to one computed inline: the
/// result is a pure function of `(θ, bucket, step_seed, index)`.
#[derive(Default)]
pub struct BucketRunner {
    scratch: BucketScratch,
}

impl BucketRunner {
    /// A runner with fresh scratch buffers (they grow on first use and are
    /// reused across buckets).
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the update for the bucket at global position `index` in
    /// step `step`'s bucket list. `Ok(None)` means the bucket was dropped
    /// (injected panic or non-finite delta) — the caller must fold it into
    /// the DP-safe skipped count, exactly like the in-process path.
    ///
    /// # Errors
    /// Systematic errors (bad config, shape mismatch) propagate.
    #[allow(clippy::too_many_arguments)]
    pub fn run_bucket(
        &mut self,
        theta: &ModelParams,
        bucket: &Bucket,
        hp: &Hyperparameters,
        step: u64,
        step_seed: u64,
        index: usize,
        faults: &FaultInjector,
        obs: &Observer,
    ) -> Result<Option<BucketUpdate>, CoreError> {
        let ctx = BucketCtx {
            step,
            step_seed,
            faults,
            phases: BucketPhases::resolve(obs),
        };
        guarded_bucket_update(theta, bucket, hp, index, &ctx, &mut self.scratch)
    }
}

/// The seam between the training loop and whoever computes bucket updates.
///
/// [`run_loop`]-based trainers own everything *around* the buckets —
/// sampling, grouping, noise, the server update, accounting and
/// checkpointing — and delegate only lines 7–8 of Algorithm 1 through this
/// trait. An executor must return, for the given `(θ, buckets, step_seed,
/// step)`, updates sorted by ascending bucket index plus the number of
/// dropped buckets; because each bucket's result is a pure function of
/// `(θ, bucket, step_seed, index)`, any executor that computes the same
/// buckets — in process, on threads, or across worker processes — yields a
/// bit-identical training trajectory. Dropping extra buckets (e.g. a
/// worker that died past its retry budget) is DP-safe but changes the
/// trained bits, exactly like an in-process poisoned bucket.
pub trait BucketExecutor {
    /// Computes the surviving bucket updates for one step.
    ///
    /// # Errors
    /// Systematic failures (config, shape, I/O in distributed
    /// implementations) propagate and abort training.
    #[allow(clippy::too_many_arguments)]
    fn execute_step(
        &mut self,
        theta: &ModelParams,
        buckets: &[Bucket],
        hp: &Hyperparameters,
        step_seed: u64,
        step: u64,
        faults: &FaultInjector,
        obs: &Observer,
    ) -> Result<(Vec<BucketUpdate>, usize), CoreError>;
}

/// The in-process executor: buckets run on `hp.threads` worker threads in
/// this process. This is the reference implementation every alternative
/// executor must match bit-for-bit.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalExecutor;

impl BucketExecutor for LocalExecutor {
    fn execute_step(
        &mut self,
        theta: &ModelParams,
        buckets: &[Bucket],
        hp: &Hyperparameters,
        step_seed: u64,
        step: u64,
        faults: &FaultInjector,
        obs: &Observer,
    ) -> Result<(Vec<BucketUpdate>, usize), CoreError> {
        compute_bucket_updates(theta, buckets, hp, step_seed, step, faults, obs)
    }
}

enum Server {
    Sgd(ServerSgd),
    Adam(Box<ServerAdam>),
}

impl Server {
    fn new(opt: ServerOptimizer, template: &ModelParams) -> Result<Self, CoreError> {
        Ok(match opt {
            ServerOptimizer::Sgd { learning_rate } => Server::Sgd(ServerSgd::new(learning_rate)?),
            ServerOptimizer::Adam { learning_rate } => {
                Server::Adam(Box::new(ServerAdam::new(template, learning_rate)?))
            }
        })
    }

    fn snapshot(&self) -> ServerState {
        match self {
            Server::Sgd(s) => ServerState::of_sgd(s),
            Server::Adam(a) => ServerState::of_adam(a),
        }
    }

    fn restore(opt: ServerOptimizer, state: ServerState) -> Result<Self, CoreError> {
        match (opt, state) {
            (ServerOptimizer::Sgd { .. }, ServerState::Sgd { learning_rate }) => {
                Ok(Server::Sgd(ServerSgd::new(learning_rate)?))
            }
            (
                ServerOptimizer::Adam { .. },
                ServerState::Adam {
                    learning_rate,
                    beta1,
                    beta2,
                    eps,
                    t,
                    m,
                    v,
                },
            ) => Ok(Server::Adam(Box::new(ServerAdam::from_state(
                learning_rate,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            )?))),
            _ => Err(CoreError::CheckpointMismatch {
                what: "server optimizer kind",
            }),
        }
    }

    /// Applies the server update over `threads` workers; both optimisers'
    /// threaded steps are bit-identical to their sequential ones for every
    /// thread count (the update is element-wise).
    fn step_threaded(
        &mut self,
        params: &mut ModelParams,
        update: &ModelParams,
        threads: usize,
    ) -> Result<(), CoreError> {
        match self {
            Server::Sgd(s) => s.step_threaded(params, update, threads)?,
            Server::Adam(a) => a.step_threaded(params, update, threads)?,
        }
        Ok(())
    }
}

/// The complete mutable state of a private training run between steps.
struct TrainerState {
    fingerprint: u64,
    run_seed: u64,
    step: u64,
    params: ModelParams,
    server: Server,
    accountant: MomentsAccountant,
}

impl TrainerState {
    /// Step-0 state of a fresh run.
    fn fresh(
        run_seed: u64,
        train: &TokenizedDataset,
        hp: &Hyperparameters,
    ) -> Result<Self, CoreError> {
        let fingerprint = config_fingerprint(hp, train.vocab_size)?;
        let mut init_rng = step_rng(run_seed, 0);
        let params = ModelParams::init(&mut init_rng, train.vocab_size, hp.embedding_dim)?;
        let server = Server::new(hp.server_optimizer, &params)?;
        let accountant = MomentsAccountant::new(hp.budget.delta)?;
        Ok(TrainerState {
            fingerprint,
            run_seed,
            step: 0,
            params,
            server,
            accountant,
        })
    }

    /// Rehydrates a run from a checkpoint, refusing configuration drift.
    /// ε is recomputed from the restored ledger — the ledger, not any
    /// cached number, is the source of truth for the privacy spend.
    fn from_checkpoint(
        ckpt: TrainingCheckpoint,
        train: &TokenizedDataset,
        hp: &Hyperparameters,
    ) -> Result<Self, CoreError> {
        let fingerprint = config_fingerprint(hp, train.vocab_size)?;
        if fingerprint != ckpt.fingerprint {
            return Err(CoreError::CheckpointMismatch {
                what: "hyperparameters or vocabulary differ from the checkpointed run",
            });
        }
        if ckpt.params.vocab_size() != train.vocab_size || ckpt.params.dim() != hp.embedding_dim {
            return Err(CoreError::CheckpointMismatch {
                what: "parameter shape",
            });
        }
        let server = Server::restore(hp.server_optimizer, ckpt.server)?;
        let accountant = MomentsAccountant::from_ledger(hp.budget.delta, ckpt.ledger)?;
        Ok(TrainerState {
            fingerprint,
            run_seed: ckpt.run_seed,
            step: ckpt.step,
            params: ckpt.params,
            server,
            accountant,
        })
    }

    fn checkpoint(&self) -> TrainingCheckpoint {
        TrainingCheckpoint {
            fingerprint: self.fingerprint,
            run_seed: self.run_seed,
            step: self.step,
            params: self.params.clone(),
            server: self.server.snapshot(),
            ledger: self.accountant.ledger().clone(),
        }
    }

    /// Serializes and atomically persists the current state, routing the
    /// bytes through the fault injector (which may simulate a torn or
    /// bit-flipped write).
    fn persist(&self, policy: &CheckpointPolicy, faults: &FaultInjector) -> Result<(), CoreError> {
        let bytes = encode_checkpoint(&self.checkpoint()).to_vec();
        let (bytes, _corrupted) = faults.corrupt_checkpoint_bytes(self.step, bytes);
        write_atomic(&policy.path, &bytes)
    }
}

/// Trains a skip-gram model on `train` under user-level (ε, δ)-DP.
///
/// `validation` (held-out users) is only consulted when
/// `hp.eval_every > 0`, to record HR@10 telemetry; it never influences
/// training.
///
/// # Errors
/// Propagates configuration, data, model and privacy errors. A model is
/// always returned on `Ok`, even if zero steps fit in the budget.
pub fn train_plp<R: Rng + ?Sized>(
    rng: &mut R,
    train: &TokenizedDataset,
    validation: Option<&TokenizedDataset>,
    hp: &Hyperparameters,
) -> Result<PlpOutcome, CoreError> {
    let run_seed: u64 = rng.random();
    train_plp_resumable(run_seed, train, validation, hp, &TrainOptions::default())
}

/// [`train_plp`] with an explicit run seed plus checkpointing and fault
/// injection. The same `run_seed` always produces the same run, crash or
/// no crash.
///
/// # Errors
/// As [`train_plp`], plus [`CoreError::Io`] on checkpoint-write failures.
pub fn train_plp_resumable(
    run_seed: u64,
    train: &TokenizedDataset,
    validation: Option<&TokenizedDataset>,
    hp: &Hyperparameters,
    opts: &TrainOptions,
) -> Result<PlpOutcome, CoreError> {
    train_plp_with_executor(run_seed, train, validation, hp, opts, &mut LocalExecutor)
}

/// [`train_plp_resumable`] with an explicit [`BucketExecutor`] — the entry
/// point distributed trainers build on. With [`LocalExecutor`] this *is*
/// `train_plp_resumable`.
///
/// # Errors
/// As [`train_plp_resumable`], plus whatever the executor surfaces.
pub fn train_plp_with_executor(
    run_seed: u64,
    train: &TokenizedDataset,
    validation: Option<&TokenizedDataset>,
    hp: &Hyperparameters,
    opts: &TrainOptions,
    executor: &mut dyn BucketExecutor,
) -> Result<PlpOutcome, CoreError> {
    hp.validate()?;
    check_dataset(train)?;
    let state = TrainerState::fresh(run_seed, train, hp)?;
    run_loop(state, train, validation, hp, opts, executor)
}

/// Resumes a run from a decoded checkpoint. The result (parameters,
/// ledger, ε) is bit-identical to the uninterrupted run with the same
/// seed; telemetry covers only the steps executed after resumption.
///
/// # Errors
/// [`CoreError::CheckpointMismatch`] when `hp`/`train` differ from the
/// checkpointed configuration; otherwise as [`train_plp_resumable`].
pub fn resume_plp(
    ckpt: TrainingCheckpoint,
    train: &TokenizedDataset,
    validation: Option<&TokenizedDataset>,
    hp: &Hyperparameters,
    opts: &TrainOptions,
) -> Result<PlpOutcome, CoreError> {
    resume_plp_with_executor(ckpt, train, validation, hp, opts, &mut LocalExecutor)
}

/// [`resume_plp`] with an explicit [`BucketExecutor`]: a coordinator that
/// crashed mid-run restores the v2 checkpoint and continues distributing
/// buckets, bit-identical to the uninterrupted run.
///
/// # Errors
/// As [`resume_plp`], plus whatever the executor surfaces.
pub fn resume_plp_with_executor(
    ckpt: TrainingCheckpoint,
    train: &TokenizedDataset,
    validation: Option<&TokenizedDataset>,
    hp: &Hyperparameters,
    opts: &TrainOptions,
    executor: &mut dyn BucketExecutor,
) -> Result<PlpOutcome, CoreError> {
    hp.validate()?;
    check_dataset(train)?;
    let state = TrainerState::from_checkpoint(ckpt, train, hp)?;
    opts.observer.emit(
        "checkpoint_resumed",
        json!({ "step": state.step, "run_seed": state.run_seed }),
    );
    run_loop(state, train, validation, hp, opts, executor)
}

fn check_dataset(train: &TokenizedDataset) -> Result<(), CoreError> {
    if train.vocab_size < 2 {
        return Err(CoreError::BadConfig {
            name: "train.vocab_size",
            expected: ">= 2",
        });
    }
    Ok(())
}

/// Per-step privacy-budget burn telemetry: ε after the step, the step's
/// marginal ε (the burn rate), and the active RDP order, as both gauges
/// and a `privacy_burn` event. Reads the same accountant that feeds
/// [`RunSummary::epsilon_spent`], so the final event is bit-identical to
/// the summary.
fn emit_privacy_burn(
    obs: &Observer,
    g_burn: &Gauge,
    g_order: &Gauge,
    step: u64,
    prev_eps: &mut f64,
    accountant: &MomentsAccountant,
) -> Result<(), CoreError> {
    let eps = accountant.epsilon()?;
    let order = accountant.optimal_order()?;
    let burn = eps - *prev_eps;
    *prev_eps = eps;
    g_burn.set(burn);
    g_order.set(order as f64);
    obs.emit(
        "privacy_burn",
        json!({
            "step": step,
            "epsilon_spent": eps,
            "epsilon_step": burn,
            "rdp_order": order,
        }),
    );
    Ok(())
}

fn run_loop(
    mut state: TrainerState,
    train: &TokenizedDataset,
    validation: Option<&TokenizedDataset>,
    hp: &Hyperparameters,
    opts: &TrainOptions,
    executor: &mut dyn BucketExecutor,
) -> Result<PlpOutcome, CoreError> {
    let num_users = train.num_users();
    let omega = hp.split_factor;
    // The Gaussian sum query's mechanism: noise std σ·(Cω) — sensitivity
    // grows to ωC when a user's data may span ω buckets (§4.2, Case 2).
    let mechanism = GaussianMechanism::new(hp.noise_multiplier, hp.clip_norm * omega as f64)?;
    // Fixed-denominator estimator scale: constant for the whole run, paid
    // even by steps whose Poisson draw comes back empty.
    let denom = fixed_denominator(hp.sampling_prob, num_users, hp.grouping_factor);

    let mut telemetry = Vec::new();
    let run_start = std::time::Instant::now();
    let mut stop_reason = StopReason::MaxSteps;

    // Observability: resolve every handle once, outside the step loop.
    // Disabled observers hand back disconnected no-op handles, so the hot
    // loop pays only a branch per phase. None of this touches the RNG
    // stream — instrumentation must never change the trained model.
    let obs = &opts.observer;
    let ph_sample = obs.histogram_with("plp_train_phase_ms", "phase", "sample");
    let ph_group = obs.histogram_with("plp_train_phase_ms", "phase", "group");
    let ph_noise = obs.histogram_with("plp_train_phase_ms", "phase", "noise");
    let ph_server = obs.histogram_with("plp_train_phase_ms", "phase", "server_update");
    let ph_accountant = obs.histogram_with("plp_train_phase_ms", "phase", "accountant");
    let ph_eval = obs.histogram_with("plp_train_phase_ms", "phase", "eval");
    let ph_checkpoint = obs.histogram_with("plp_train_phase_ms", "phase", "checkpoint");
    let g_eps_spent = obs.gauge("plp_epsilon_spent");
    let g_eps_budget = obs.gauge("plp_epsilon_budget");
    let g_delta = obs.gauge("plp_delta");
    let g_step = obs.gauge("plp_train_step");
    let g_burn = obs.gauge("plp_privacy_epsilon_burn_rate");
    let g_order = obs.gauge("plp_privacy_rdp_order");
    let c_steps = obs.counter("plp_train_steps_total");
    let c_skipped = obs.counter("plp_train_skipped_buckets_total");
    // Tracing (optional, deterministic): every id below is a pure
    // function of `(run_seed, step)` via the same mix64 discipline as
    // the noise streams — never the clock, never `rand` — so attaching a
    // tracer cannot perturb a single trained bit.
    let tracer = obs.tracer();
    let mut prev_eps = state.accountant.epsilon()?;
    g_eps_budget.set(hp.budget.epsilon);
    g_delta.set(hp.budget.delta);
    g_step.set(state.step as f64);
    obs.emit(
        "run_start",
        json!({
            "start_step": state.step,
            "max_steps": hp.max_steps,
            "epsilon_budget": hp.budget.epsilon,
            "delta": hp.budget.delta,
            "num_users": num_users,
            "split_factor": omega,
        }),
    );

    while state.step < hp.max_steps as u64 {
        // Peek: would this step overshoot the budget?
        let eps_next = state
            .accountant
            .epsilon_after_hypothetical_step(hp.sampling_prob, hp.noise_multiplier)?;
        if eps_next >= hp.budget.epsilon {
            stop_reason = StopReason::BudgetExhausted;
            break;
        }
        let step = state.step + 1;
        let step_start = std::time::Instant::now();
        let mut rng = step_rng(state.run_seed, step);

        // `(&tracer, trace_id, step span id)` for this step, or None.
        let step_trace = tracer.as_ref().map(|t| {
            let trace_id = derive_trace_id(state.run_seed, DOMAIN_TRAIN_STEP, step);
            (t, trace_id, derive_span_id(trace_id, "step", step))
        });
        let t_step =
            step_trace.map(|(t, tid, sid)| t.span("step", "train", tid, sid, 0).arg("step", step));

        // Line 5: Poisson user sampling.
        let sample_span = ph_sample.start_span();
        let t_sample = step_trace.map(|(t, tid, sid)| {
            t.span(
                "sample",
                "train",
                tid,
                derive_span_id(tid, "sample", step),
                sid,
            )
        });
        let sampled = sample_users(&mut rng, num_users, hp.sampling_prob)?;
        drop(t_sample);
        sample_span.finish();
        // Line 6: data grouping.
        let group_span = ph_group.start_span();
        let t_group = step_trace.map(|(t, tid, sid)| {
            t.span(
                "group",
                "train",
                tid,
                derive_span_id(tid, "group", step),
                sid,
            )
        });
        let buckets = if omega == 1 {
            group_data(
                &mut rng,
                &sampled,
                train,
                hp.grouping_factor,
                hp.grouping_strategy.into(),
            )?
        } else {
            match group_data_split(&mut rng, &sampled, train, hp.grouping_factor, omega) {
                Ok(b) => b,
                // Too few sampled users to split across omega buckets this
                // step (depends only on the public sample size): fall back
                // to unsplit grouping. Noise stays scaled to omega, which
                // over-protects and is therefore safe.
                Err(DataError::BadConfig { name: "omega", .. }) => group_data(
                    &mut rng,
                    &sampled,
                    train,
                    hp.grouping_factor,
                    hp.grouping_strategy.into(),
                )?,
                Err(e) => return Err(e.into()),
            }
        };
        drop(t_group);
        group_span.finish();
        debug_assert!(realized_split_factor(&buckets) <= omega);

        // Lines 7-8, 15-22: per-bucket clipped deltas, each behind a panic
        // barrier; poisoned buckets are dropped (DP-safe, see module docs).
        // The local_sgd span is published as the trace *scope* so a
        // multi-process executor can parent its round under it — the
        // step_seed is drawn after sampling, so the executor could not
        // re-derive this step's trace id on its own.
        let step_seed: u64 = rng.random();
        let t_local = step_trace.map(|(t, tid, sid)| {
            let local_id = derive_span_id(tid, "local_sgd", step);
            obs.set_trace_scope(Some(TraceContext {
                trace_id: tid,
                parent_span: local_id,
            }));
            t.span("local_sgd", "train", tid, local_id, sid)
                .arg("buckets", buckets.len() as u64)
        });
        let (updates, skipped) = executor.execute_step(
            &state.params,
            &buckets,
            hp,
            step_seed,
            step,
            &opts.faults,
            obs,
        )?;
        if t_local.is_some() {
            obs.set_trace_scope(None);
        }
        drop(t_local);

        if !buckets.is_empty() && updates.is_empty() && skipped > 0 {
            // Every formed bucket was poisoned: no signal survives, so the
            // update would be pure noise. Account the step conservatively
            // (it is paid for even though its update is discarded — never
            // under-reports ε), record it, and stop.
            state
                .accountant
                .step(hp.sampling_prob, hp.noise_multiplier)?;
            emit_privacy_burn(
                obs,
                &g_burn,
                &g_order,
                step,
                &mut prev_eps,
                &state.accountant,
            )?;
            state.step = step;
            telemetry.push(StepTelemetry {
                step,
                sampled_users: sampled.len(),
                buckets: buckets.len(),
                skipped_buckets: skipped,
                mean_local_loss: 0.0,
                clip_fraction: 0.0,
                epsilon_spent: state.accountant.epsilon()?,
                wall_ms: step_start.elapsed().as_secs_f64() * 1e3,
                validation_hr10: None,
            });
            c_steps.inc();
            c_skipped.add(skipped as u64);
            g_step.set(step as f64);
            g_eps_spent.set(state.accountant.epsilon()?);
            obs.emit(
                "skipped_buckets",
                json!({ "step": step, "skipped": skipped, "buckets": buckets.len() }),
            );
            if let Some(t) = telemetry.last() {
                obs.emit("step", serde_json::to_value_of(t));
            }
            stop_reason = StopReason::Diverged;
            // A Diverged stop is a fault event: keep the flight recorder.
            if let Some(t) = &tracer {
                t.dump_on_fault("diverged");
            }
            break;
        }

        // Line 9: Gaussian sum query over the *whole* parameter vector.
        // Counter-based per-row noise streams (see `crate::noise`): seeded
        // from `(run_seed, step)` and fanned over `hp.threads` workers,
        // bit-identical for every thread count. The fixed-denominator
        // average by the expected bucket count q·W/λ — never the realised
        // (sample-dependent) |H_t| — rides the same row pass.
        let noise_span = ph_noise.start_span();
        let t_noise = step_trace.map(|(t, tid, sid)| {
            t.span(
                "noise",
                "train",
                tid,
                derive_span_id(tid, "noise", step),
                sid,
            )
        });
        let mut aggregate = ModelParams::zeros(state.params.vocab_size(), state.params.dim());
        for u in &updates {
            u.grad.accumulate_into(&mut aggregate)?;
        }
        let noise_seed = step_noise_seed(state.run_seed, step);
        perturb_and_scale_threaded(
            &mut aggregate,
            &mechanism,
            noise_seed,
            1.0 / denom,
            hp.effective_threads(),
        );
        drop(t_noise);
        noise_span.finish();

        // Line 10: model update, fanned over the same worker count.
        let server_span = ph_server.start_span();
        let t_server = step_trace.map(|(t, tid, sid)| {
            t.span(
                "server_update",
                "train",
                tid,
                derive_span_id(tid, "server_update", step),
                sid,
            )
        });
        state
            .server
            .step_threaded(&mut state.params, &aggregate, hp.effective_threads())?;
        drop(t_server);
        server_span.finish();

        // Line 11: ledger tracking. The effective noise multiplier stays σ
        // for any ω: noise std σCω over sensitivity ωC.
        let accountant_span = ph_accountant.start_span();
        let t_acct = step_trace.map(|(t, tid, sid)| {
            t.span(
                "accountant",
                "train",
                tid,
                derive_span_id(tid, "accountant", step),
                sid,
            )
        });
        state
            .accountant
            .step(hp.sampling_prob, hp.noise_multiplier)?;
        drop(t_acct);
        accountant_span.finish();
        emit_privacy_burn(
            obs,
            &g_burn,
            &g_order,
            step,
            &mut prev_eps,
            &state.accountant,
        )?;
        state.step = step;

        let validation_hr10 = match validation {
            Some(v) if hp.eval_every > 0 && step.is_multiple_of(hp.eval_every as u64) => {
                let eval_span = ph_eval.start_span();
                let t_eval = step_trace.map(|(t, tid, sid)| {
                    t.span("eval", "train", tid, derive_span_id(tid, "eval", step), sid)
                });
                let rec = Recommender::new(&state.params);
                // Leave-one-out trials fan out over `hp.threads` workers;
                // the ordered integer-count reduction makes the metric
                // identical for any thread count.
                let hr = evaluate_hit_rate_threaded(&rec, v, &[10], hp.effective_threads())?;
                drop(t_eval);
                eval_span.finish();
                Some(hr[0].rate())
            }
            _ => None,
        };

        let clipped = updates.iter().filter(|u| u.clipped).count();
        telemetry.push(StepTelemetry {
            step,
            sampled_users: sampled.len(),
            buckets: buckets.len(),
            skipped_buckets: skipped,
            mean_local_loss: if updates.is_empty() {
                0.0
            } else {
                updates.iter().map(|u| u.mean_loss).sum::<f64>() / updates.len() as f64
            },
            clip_fraction: if updates.is_empty() {
                0.0
            } else {
                clipped as f64 / updates.len() as f64
            },
            epsilon_spent: state.accountant.epsilon()?,
            wall_ms: step_start.elapsed().as_secs_f64() * 1e3,
            validation_hr10,
        });
        c_steps.inc();
        g_step.set(step as f64);
        g_eps_spent.set(state.accountant.epsilon()?);
        if skipped > 0 {
            c_skipped.add(skipped as u64);
            obs.emit(
                "skipped_buckets",
                json!({ "step": step, "skipped": skipped, "buckets": buckets.len() }),
            );
        }
        if let Some(t) = telemetry.last() {
            obs.emit("step", serde_json::to_value_of(t));
        }

        if let Some(policy) = &opts.checkpoint {
            if policy.every > 0 && step.is_multiple_of(policy.every) {
                let ckpt_span = ph_checkpoint.start_span();
                let t_ckpt = step_trace.map(|(t, tid, sid)| {
                    t.span(
                        "checkpoint",
                        "train",
                        tid,
                        derive_span_id(tid, "checkpoint", step),
                        sid,
                    )
                });
                state.persist(policy, &opts.faults)?;
                drop(t_ckpt);
                ckpt_span.finish();
                obs.emit("checkpoint_saved", json!({ "step": step }));
            }
        }
        drop(t_step);
        if opts.halt_after.is_some_and(|k| step >= k) {
            stop_reason = StopReason::Interrupted;
            break;
        }
    }

    // Final save so a finished (or diverged) run restores to its terminal
    // state. An interrupted run deliberately skips this: it simulates a
    // killed process, which would only have its periodic saves on disk.
    if stop_reason != StopReason::Interrupted {
        if let Some(policy) = &opts.checkpoint {
            let ckpt_span = ph_checkpoint.start_span();
            state.persist(policy, &opts.faults)?;
            ckpt_span.finish();
            obs.emit("checkpoint_saved", json!({ "step": state.step }));
        }
    }

    let summary = RunSummary {
        steps: state.accountant.steps(),
        epsilon_spent: state.accountant.epsilon()?,
        delta: hp.budget.delta,
        total_wall_ms: run_start.elapsed().as_secs_f64() * 1e3,
        stop_reason,
    };
    // Terminal metric state: the ε gauge must match the summary exactly
    // (same accountant read feeds both), and the stop reason is counted so
    // dashboards can alert on Diverged/Interrupted runs.
    obs.counter_with("plp_train_stop_total", "reason", stop_reason.name())
        .inc();
    g_eps_spent.set(summary.epsilon_spent);
    obs.emit("run_end", serde_json::to_value_of(&summary));
    Ok(PlpOutcome {
        params: state.params,
        telemetry,
        summary,
        ledger: state.accountant.ledger().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::load_checkpoint;
    use crate::faults::FaultPlan;
    use plp_data::checkin::UserId;
    use plp_data::dataset::UserSequences;
    use plp_privacy::PrivacyBudget;

    /// A tiny corpus with two token communities, enough users for sampling.
    fn tiny_dataset(num_users: usize) -> TokenizedDataset {
        let users = (0..num_users)
            .map(|i| {
                let base = if i % 2 == 0 { 0 } else { 8 };
                UserSequences {
                    user: UserId(i as u32),
                    sessions: vec![(0..12).map(|t| base + (t + i) % 6).collect()],
                }
            })
            .collect();
        TokenizedDataset {
            users,
            vocab_size: 16,
        }
    }

    fn fast_hp() -> Hyperparameters {
        Hyperparameters {
            embedding_dim: 8,
            negative_samples: 4,
            sampling_prob: 0.3,
            grouping_factor: 2,
            max_steps: 5,
            budget: PrivacyBudget {
                epsilon: 50.0,
                delta: 1e-3,
            },
            ..Hyperparameters::default()
        }
    }

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plp_{}_{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn runs_and_respects_max_steps() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = tiny_dataset(30);
        let out = train_plp(&mut rng, &ds, None, &fast_hp()).unwrap();
        assert_eq!(out.summary.steps, 5);
        assert_eq!(out.summary.stop_reason, StopReason::MaxSteps);
        assert_eq!(out.telemetry.len(), 5);
        assert!(out.params.all_finite());
        assert_eq!(out.ledger.total_steps(), 5);
        assert!(out.summary.epsilon_spent > 0.0);
        assert!(out.telemetry.iter().all(|t| t.skipped_buckets == 0));
    }

    #[test]
    fn budget_stop_never_exceeds_epsilon() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = tiny_dataset(30);
        let mut hp = fast_hp();
        hp.budget = PrivacyBudget {
            epsilon: 2.0,
            delta: 1e-3,
        };
        hp.sampling_prob = 0.2;
        hp.noise_multiplier = 1.5;
        hp.max_steps = 10_000;
        let out = train_plp(&mut rng, &ds, None, &hp).unwrap();
        assert_eq!(out.summary.stop_reason, StopReason::BudgetExhausted);
        assert!(
            out.summary.epsilon_spent < 2.0,
            "eps {}",
            out.summary.epsilon_spent
        );
        assert!(out.summary.steps > 0);
        // The ledger independently verifies the spend.
        let replay = out.ledger.epsilon(1e-3).unwrap();
        assert!((replay - out.summary.epsilon_spent).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let ds = tiny_dataset(20);
        let hp = fast_hp();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            train_plp(&mut rng, &ds, None, &hp).unwrap().params
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = tiny_dataset(24);
        let mut hp = fast_hp();
        hp.threads = 1;
        let mut rng = StdRng::seed_from_u64(5);
        let seq = train_plp(&mut rng, &ds, None, &hp).unwrap();
        hp.threads = 4;
        let mut rng = StdRng::seed_from_u64(5);
        let par = train_plp(&mut rng, &ds, None, &hp).unwrap();
        assert_eq!(seq.params, par.params, "threading must not change results");
    }

    #[test]
    fn telemetry_epsilon_is_monotone() {
        let mut rng = StdRng::seed_from_u64(6);
        let ds = tiny_dataset(20);
        let out = train_plp(&mut rng, &ds, None, &fast_hp()).unwrap();
        for w in out.telemetry.windows(2) {
            assert!(w[1].epsilon_spent > w[0].epsilon_spent);
        }
    }

    #[test]
    fn omega_two_runs_with_scaled_noise() {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = tiny_dataset(30);
        let mut hp = fast_hp();
        hp.split_factor = 2;
        hp.grouping_factor = 1;
        let out = train_plp(&mut rng, &ds, None, &hp).unwrap();
        assert!(out.params.all_finite());
        assert_eq!(out.summary.steps, 5);
    }

    #[test]
    fn eval_telemetry_present_when_requested() {
        let mut rng = StdRng::seed_from_u64(8);
        let ds = tiny_dataset(30);
        let val = tiny_dataset(4);
        let mut hp = fast_hp();
        hp.eval_every = 2;
        let out = train_plp(&mut rng, &ds, Some(&val), &hp).unwrap();
        let evals: Vec<_> = out
            .telemetry
            .iter()
            .filter(|t| t.validation_hr10.is_some())
            .collect();
        assert_eq!(evals.len(), 2, "steps 2 and 4");
    }

    #[test]
    fn rejects_degenerate_vocab_and_config() {
        let mut rng = StdRng::seed_from_u64(9);
        let bad = TokenizedDataset {
            users: vec![],
            vocab_size: 1,
        };
        assert!(train_plp(&mut rng, &bad, None, &fast_hp()).is_err());
        let ds = tiny_dataset(10);
        let mut hp = fast_hp();
        hp.grouping_factor = 0;
        assert!(train_plp(&mut rng, &ds, None, &hp).is_err());
    }

    #[test]
    fn fixed_denominator_is_expected_bucket_count() {
        // q·W/λ, independent of any realised sample.
        assert!((fixed_denominator(0.1, 1000, 5) - 20.0).abs() < 1e-12);
        assert!((fixed_denominator(0.06, 4602, 6) - 46.02).abs() < 1e-12);
        assert!((fixed_denominator(1.0, 7, 1) - 7.0).abs() < 1e-12);
        // Sub-unit expectations are *not* clamped: the estimator stays
        // q·W/λ even when fewer than one bucket is expected per step.
        assert!((fixed_denominator(0.01, 10, 1) - 0.1).abs() < 1e-12);
        // Only a zero expectation (empty population) degenerates, to 1 —
        // never to a division by zero.
        assert_eq!(fixed_denominator(0.3, 0, 2), 1.0);
        assert_eq!(fixed_denominator(0.3, 10, 0), 3.0, "λ floor of 1");
        assert!(fixed_denominator(0.5, usize::MAX >> 12, 1).is_finite());
    }

    #[test]
    fn empty_sample_steps_pay_rdp_and_keep_denominator_fixed() {
        // q so small that (seeded) steps routinely sample zero users: every
        // such step must still appear in the ledger at full cost, produce a
        // finite (noise-only) update scaled by the same fixed q·W/λ, and
        // never divide by zero.
        let ds = tiny_dataset(5);
        let mut hp = fast_hp();
        hp.sampling_prob = 0.01;
        hp.max_steps = 4;
        let out = train_plp_resumable(13, &ds, None, &hp, &TrainOptions::default()).unwrap();
        assert_eq!(out.summary.steps, 4);
        assert_eq!(out.ledger.total_steps(), 4, "empty steps are accounted");
        assert!(out.params.all_finite());
        let empty_steps = out
            .telemetry
            .iter()
            .filter(|t| t.sampled_users == 0)
            .count();
        assert!(
            empty_steps > 0,
            "q = 0.01 over 5 users must leave some steps empty (seeded)"
        );
        for w in out.telemetry.windows(2) {
            assert!(
                w[1].epsilon_spent > w[0].epsilon_spent,
                "every step, empty or not, spends budget"
            );
        }
        // The noise-only update went through: parameters moved away from
        // their init even on a run whose steps were all-empty.
        let mut all_empty_hp = hp.clone();
        all_empty_hp.sampling_prob = 1e-9;
        let moved =
            train_plp_resumable(13, &ds, None, &all_empty_hp, &TrainOptions::default()).unwrap();
        let init =
            ModelParams::init(&mut step_rng(13, 0), ds.vocab_size, hp.embedding_dim).unwrap();
        assert_ne!(moved.params, init, "noise-only steps still update θ");
        assert!(moved.params.all_finite());
    }

    #[test]
    fn empty_population_still_consumes_budget() {
        // Zero users: every step is an empty Gaussian sum query (pure
        // noise) but the mechanism still runs and must be accounted.
        let mut rng = StdRng::seed_from_u64(10);
        let ds = TokenizedDataset {
            users: vec![],
            vocab_size: 4,
        };
        let out = train_plp(&mut rng, &ds, None, &fast_hp()).unwrap();
        assert_eq!(out.summary.steps, 5);
        assert!(out.summary.epsilon_spent > 0.0);
        assert!(out.telemetry.iter().all(|t| t.buckets == 0));
    }

    #[test]
    fn killed_and_resumed_run_is_bit_identical() {
        let ds = tiny_dataset(24);
        let hp = fast_hp();
        let dir = scratch_dir("kill_resume");
        let path = dir.join("run.plpc");
        let seed = 42u64;

        // Uninterrupted reference run.
        let full = train_plp_resumable(seed, &ds, None, &hp, &TrainOptions::default()).unwrap();
        assert_eq!(full.summary.stop_reason, StopReason::MaxSteps);

        // Same run, checkpointed every 2 steps and "killed" after step 3:
        // the newest surviving checkpoint is from step 2, so resumption
        // must re-execute step 3 and still land on identical bits.
        let crash_opts = TrainOptions {
            checkpoint: Some(CheckpointPolicy {
                path: path.clone(),
                every: 2,
            }),
            halt_after: Some(3),
            ..TrainOptions::default()
        };
        let interrupted = train_plp_resumable(seed, &ds, None, &hp, &crash_opts).unwrap();
        assert_eq!(interrupted.summary.stop_reason, StopReason::Interrupted);
        assert_eq!(interrupted.summary.steps, 3);

        let ckpt = load_checkpoint(&path).unwrap();
        assert_eq!(ckpt.step, 2, "kill at 3 leaves the step-2 checkpoint");
        let resumed = resume_plp(ckpt, &ds, None, &hp, &TrainOptions::default()).unwrap();

        assert_eq!(
            resumed.params, full.params,
            "parameters must be bit-identical"
        );
        assert_eq!(resumed.ledger.entries(), full.ledger.entries());
        assert_eq!(
            resumed.summary.epsilon_spent.to_bits(),
            full.summary.epsilon_spent.to_bits(),
            "ε recomputed from the restored ledger must match exactly"
        );
        assert_eq!(resumed.summary.steps, full.summary.steps);
        assert_eq!(
            resumed.telemetry.len(),
            3,
            "resumed run re-executes steps 3..=5"
        );
    }

    #[test]
    fn resume_at_different_thread_count_is_bit_identical() {
        // The counter-based noise streams and element-wise server updates
        // make the whole trajectory thread-count invariant, and the config
        // fingerprint normalises `threads` out — so a run checkpointed at
        // one thread count may resume at another on identical bits.
        let ds = tiny_dataset(24);
        let dir = scratch_dir("thread_resume");
        let path = dir.join("run.plpc");
        let seed = 77u64;

        // Uninterrupted reference run at threads=4.
        let mut hp4 = fast_hp();
        hp4.threads = 4;
        let full = train_plp_resumable(seed, &ds, None, &hp4, &TrainOptions::default()).unwrap();
        assert_eq!(full.summary.stop_reason, StopReason::MaxSteps);

        // Crash a single-threaded run mid-training...
        let mut hp1 = fast_hp();
        hp1.threads = 1;
        let crash_opts = TrainOptions {
            checkpoint: Some(CheckpointPolicy {
                path: path.clone(),
                every: 2,
            }),
            halt_after: Some(3),
            ..TrainOptions::default()
        };
        let interrupted = train_plp_resumable(seed, &ds, None, &hp1, &crash_opts).unwrap();
        assert_eq!(interrupted.summary.stop_reason, StopReason::Interrupted);

        // ...and resume it at threads=4.
        let ckpt = load_checkpoint(&path).unwrap();
        assert_eq!(ckpt.step, 2);
        let resumed = resume_plp(ckpt, &ds, None, &hp4, &TrainOptions::default()).unwrap();

        assert_eq!(
            resumed.params, full.params,
            "resume at a different thread count must stay on the same bits"
        );
        assert_eq!(resumed.ledger.entries(), full.ledger.entries());
        assert_eq!(
            resumed.summary.epsilon_spent.to_bits(),
            full.summary.epsilon_spent.to_bits()
        );
    }

    #[test]
    fn resume_refuses_mismatched_config() {
        let ds = tiny_dataset(20);
        let hp = fast_hp();
        let dir = scratch_dir("mismatch");
        let path = dir.join("run.plpc");
        let opts = TrainOptions {
            checkpoint: Some(CheckpointPolicy {
                path: path.clone(),
                every: 2,
            }),
            halt_after: Some(2),
            ..TrainOptions::default()
        };
        train_plp_resumable(3, &ds, None, &hp, &opts).unwrap();
        let ckpt = load_checkpoint(&path).unwrap();

        let mut other = hp.clone();
        other.noise_multiplier += 0.5;
        let err = resume_plp(ckpt, &ds, None, &other, &TrainOptions::default());
        assert!(
            matches!(err, Err(CoreError::CheckpointMismatch { .. })),
            "resuming under different hyperparameters must be refused, got {err:?}"
        );
    }

    #[test]
    fn injected_faults_skip_buckets_without_breaking_dp() {
        let ds = tiny_dataset(30);
        let hp = fast_hp();
        let faults = FaultInjector::with_plan(FaultPlan {
            nan_delta_rate: 0.3,
            panic_rate: 0.2,
            ..FaultPlan::quiet(99)
        });
        let opts = TrainOptions {
            faults,
            ..TrainOptions::default()
        };
        let out = train_plp_resumable(7, &ds, None, &hp, &opts).unwrap();
        let skipped: usize = out.telemetry.iter().map(|t| t.skipped_buckets).sum();
        assert!(skipped > 0, "at these rates some buckets must be poisoned");
        assert!(
            out.params.all_finite(),
            "poisoned deltas must never reach the model"
        );
        assert!(out.summary.epsilon_spent < hp.budget.epsilon);
        // Dropping buckets never skips accounting: every executed step is
        // in the ledger.
        assert_eq!(out.ledger.total_steps(), out.summary.steps);
    }

    #[test]
    fn fully_poisoned_step_stops_with_diverged() {
        let ds = tiny_dataset(30);
        let hp = fast_hp();
        let faults = FaultInjector::with_plan(FaultPlan {
            nan_delta_rate: 1.0,
            ..FaultPlan::quiet(1)
        });
        let opts = TrainOptions {
            faults,
            ..TrainOptions::default()
        };
        let out = train_plp_resumable(11, &ds, None, &hp, &opts).unwrap();
        assert_eq!(out.summary.stop_reason, StopReason::Diverged);
        assert_eq!(out.summary.steps, 1, "stops after the first poisoned step");
        assert_eq!(
            out.ledger.total_steps(),
            1,
            "the aborted step is still accounted"
        );
        let t = &out.telemetry[0];
        assert!(t.skipped_buckets > 0 && t.skipped_buckets == t.buckets);
    }

    #[test]
    fn corrupted_checkpoint_write_is_detected_on_load() {
        let ds = tiny_dataset(20);
        let hp = fast_hp();
        let dir = scratch_dir("corrupt_write");
        let path = dir.join("run.plpc");
        let faults = FaultInjector::with_plan(FaultPlan {
            truncate_write_rate: 1.0,
            ..FaultPlan::quiet(4)
        });
        let opts = TrainOptions {
            faults,
            checkpoint: Some(CheckpointPolicy {
                path: path.clone(),
                every: 1,
            }),
            ..TrainOptions::default()
        };
        train_plp_resumable(5, &ds, None, &hp, &opts).unwrap();
        let err = load_checkpoint(&path);
        assert!(
            matches!(err, Err(CoreError::CheckpointCorrupt { .. })),
            "a torn write must fail integrity checks, got {err:?}"
        );
    }

    #[test]
    fn instrumentation_never_changes_the_trained_model() {
        let ds = tiny_dataset(24);
        let hp = fast_hp();
        let plain = train_plp_resumable(21, &ds, None, &hp, &TrainOptions::default()).unwrap();
        let opts = TrainOptions {
            observer: Observer::with_memory_sink("instrumented"),
            ..TrainOptions::default()
        };
        let observed = train_plp_resumable(21, &ds, None, &hp, &opts).unwrap();
        assert_eq!(
            plain.params, observed.params,
            "an enabled observer must be invisible to the math"
        );
        assert_eq!(plain.telemetry.len(), observed.telemetry.len());
        assert!(!opts.observer.captured_events().is_empty());
    }

    #[test]
    fn observer_emits_parseable_run_events_in_order() {
        let ds = tiny_dataset(24);
        let hp = fast_hp();
        let opts = TrainOptions {
            observer: Observer::with_memory_sink("events"),
            ..TrainOptions::default()
        };
        let out = train_plp_resumable(9, &ds, None, &hp, &opts).unwrap();

        let events = opts.observer.captured_events();
        let mut kinds = Vec::new();
        for (i, line) in events.iter().enumerate() {
            let v: serde_json::Value = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("line {i} is not valid JSON: {e:?}"));
            let obj = v.as_object().unwrap();
            assert_eq!(
                obj.get("seq").and_then(serde_json::Value::as_f64),
                Some(i as f64),
                "event sequence numbers must be gapless"
            );
            let serde_json::Value::Str(kind) = &obj["kind"] else {
                panic!("kind must be a string")
            };
            kinds.push(kind.clone());
        }
        assert_eq!(kinds.first().map(String::as_str), Some("run_start"));
        assert_eq!(kinds.last().map(String::as_str), Some("run_end"));
        assert_eq!(
            kinds.iter().filter(|k| *k == "step").count() as u64,
            out.summary.steps,
            "one step event per executed step"
        );

        // The run_end payload carries the summary, ε included.
        let last: serde_json::Value = serde_json::from_str(events.last().unwrap()).unwrap();
        let eps = last.as_object().unwrap()["payload"].as_object().unwrap()["epsilon_spent"]
            .as_f64()
            .unwrap();
        assert_eq!(eps.to_bits(), out.summary.epsilon_spent.to_bits());
    }

    #[test]
    fn epsilon_gauge_matches_summary_exactly_and_renders() {
        let ds = tiny_dataset(24);
        let hp = fast_hp();
        let opts = TrainOptions {
            observer: Observer::new("gauges"),
            ..TrainOptions::default()
        };
        let out = train_plp_resumable(13, &ds, None, &hp, &opts).unwrap();

        let obs = &opts.observer;
        assert_eq!(
            obs.gauge("plp_epsilon_spent").get().to_bits(),
            out.summary.epsilon_spent.to_bits(),
            "terminal ε gauge must be bit-identical to the run summary"
        );
        assert_eq!(
            obs.gauge("plp_epsilon_budget").get().to_bits(),
            hp.budget.epsilon.to_bits()
        );
        assert_eq!(
            obs.gauge("plp_delta").get().to_bits(),
            hp.budget.delta.to_bits()
        );
        assert_eq!(
            obs.counter("plp_train_steps_total").get(),
            out.summary.steps
        );

        let text = obs.render_prometheus();
        for phase in [
            "sample",
            "group",
            "local_sgd",
            "clip",
            "noise",
            "accountant",
        ] {
            assert!(
                text.contains(&format!("plp_train_phase_ms_bucket{{phase=\"{phase}\"")),
                "missing phase {phase} in:\n{text}"
            );
        }
    }

    #[test]
    fn injected_faults_surface_as_events_and_counters() {
        let ds = tiny_dataset(30);
        let hp = fast_hp();
        let faults = FaultInjector::with_plan(FaultPlan {
            nan_delta_rate: 0.3,
            panic_rate: 0.2,
            ..FaultPlan::quiet(99)
        });
        let opts = TrainOptions {
            faults,
            observer: Observer::with_memory_sink("faults"),
            ..TrainOptions::default()
        };
        let out = train_plp_resumable(7, &ds, None, &hp, &opts).unwrap();
        let skipped: u64 = out.telemetry.iter().map(|t| t.skipped_buckets as u64).sum();
        assert!(skipped > 0, "this seeded plan must poison some buckets");
        assert_eq!(
            opts.observer
                .counter("plp_train_skipped_buckets_total")
                .get(),
            skipped,
            "the counter must agree with telemetry"
        );
        let fault_events = opts
            .observer
            .captured_events()
            .iter()
            .filter(|l| {
                let v: serde_json::Value = serde_json::from_str(l).unwrap();
                v.as_object().unwrap().get("kind")
                    == Some(&serde_json::Value::Str("skipped_buckets".into()))
            })
            .count();
        assert!(fault_events > 0, "skipped buckets must emit events");
    }

    #[test]
    fn stop_reasons_are_counted_by_label() {
        let ds = tiny_dataset(30);
        let hp = fast_hp();

        // Interrupted: driver halt.
        let halted = TrainOptions {
            halt_after: Some(2),
            observer: Observer::new("halt"),
            ..TrainOptions::default()
        };
        let out = train_plp_resumable(3, &ds, None, &hp, &halted).unwrap();
        assert_eq!(out.summary.stop_reason, StopReason::Interrupted);
        assert_eq!(
            halted
                .observer
                .counter_with("plp_train_stop_total", "reason", "interrupted")
                .get(),
            1
        );

        // Diverged: every bucket poisoned.
        let poisoned = TrainOptions {
            faults: FaultInjector::with_plan(FaultPlan {
                nan_delta_rate: 1.0,
                ..FaultPlan::quiet(1)
            }),
            observer: Observer::with_memory_sink("poison"),
            ..TrainOptions::default()
        };
        let out = train_plp_resumable(11, &ds, None, &hp, &poisoned).unwrap();
        assert_eq!(out.summary.stop_reason, StopReason::Diverged);
        assert_eq!(
            poisoned
                .observer
                .counter_with("plp_train_stop_total", "reason", "diverged")
                .get(),
            1
        );
        let text = poisoned.observer.render_prometheus();
        assert!(
            text.contains("plp_train_stop_total{reason=\"diverged\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn resumed_run_appends_to_the_same_event_log() {
        let ds = tiny_dataset(24);
        let hp = fast_hp();
        let dir = scratch_dir("obs_resume");
        let path = dir.join("run.plpc");
        let log = dir.join("events.jsonl");

        let crash_opts = TrainOptions {
            checkpoint: Some(CheckpointPolicy {
                path: path.clone(),
                every: 2,
            }),
            halt_after: Some(3),
            observer: Observer::with_jsonl_file("crash", &log).unwrap(),
            ..TrainOptions::default()
        };
        train_plp_resumable(42, &ds, None, &hp, &crash_opts).unwrap();

        let ckpt = load_checkpoint(&path).unwrap();
        let resume_opts = TrainOptions {
            observer: Observer::with_jsonl_file("resume", &log).unwrap(),
            ..TrainOptions::default()
        };
        resume_plp(ckpt, &ds, None, &hp, &resume_opts).unwrap();

        let text = std::fs::read_to_string(&log).unwrap();
        let mut kinds = Vec::new();
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("every line parses");
            let serde_json::Value::Str(kind) = &v.as_object().unwrap()["kind"] else {
                panic!("kind must be a string")
            };
            kinds.push(kind.clone());
        }
        assert_eq!(
            kinds.iter().filter(|k| *k == "run_start").count(),
            2,
            "both the crashed and the resumed run log run_start"
        );
        assert_eq!(
            kinds.iter().filter(|k| *k == "checkpoint_resumed").count(),
            1
        );
        assert!(kinds.iter().any(|k| k == "checkpoint_saved"));
    }

    #[test]
    fn privacy_burn_events_track_the_accountant_exactly() {
        let ds = tiny_dataset(24);
        let hp = fast_hp();
        let opts = TrainOptions {
            observer: Observer::with_memory_sink("burn"),
            ..TrainOptions::default()
        };
        let out = train_plp_resumable(11, &ds, None, &hp, &opts).unwrap();

        let mut burns = Vec::new();
        for line in opts.observer.captured_events() {
            let v: serde_json::Value = serde_json::from_str(&line).unwrap();
            let obj = v.as_object().unwrap().clone();
            if matches!(&obj["kind"], serde_json::Value::Str(k) if k == "privacy_burn") {
                burns.push(obj["payload"].as_object().unwrap().clone());
            }
        }
        assert_eq!(
            burns.len() as u64,
            out.summary.steps,
            "one privacy_burn event per accounted step"
        );
        let last = burns.last().unwrap();
        assert_eq!(
            last["epsilon_spent"].as_f64().unwrap().to_bits(),
            out.summary.epsilon_spent.to_bits(),
            "the final burn event must agree with the run summary bit-for-bit"
        );
        assert!(last["rdp_order"].as_f64().unwrap() >= 1.0);

        // The burn events partition the total spend: per-step deltas sum
        // back to the final ε (up to float addition error), and every
        // delta is positive.
        let mut acc = 0.0;
        for b in &burns {
            let d = b["epsilon_step"].as_f64().unwrap();
            assert!(d > 0.0, "every private step burns budget");
            acc += d;
        }
        assert!((acc - out.summary.epsilon_spent).abs() < 1e-9);

        // The gauge holds the last step's burn rate.
        assert_eq!(
            opts.observer
                .gauge("plp_privacy_epsilon_burn_rate")
                .get()
                .to_bits(),
            last["epsilon_step"].as_f64().unwrap().to_bits()
        );
    }

    #[test]
    fn tracing_is_invisible_to_the_trained_bits_and_deterministic() {
        use plp_obs::trace::TraceConfig;

        let ds = tiny_dataset(24);
        let hp = fast_hp();
        let plain = train_plp_resumable(33, &ds, None, &hp, &TrainOptions::default()).unwrap();

        let opts = TrainOptions {
            observer: Observer::new("traced"),
            ..TrainOptions::default()
        };
        let tracer = opts
            .observer
            .attach_tracer(TraceConfig::named("trainer"))
            .unwrap();
        let traced = train_plp_resumable(33, &ds, None, &hp, &opts).unwrap();

        assert_eq!(
            plain.params, traced.params,
            "an attached tracer must be invisible to the math"
        );
        assert_eq!(
            plain.summary.epsilon_spent.to_bits(),
            traced.summary.epsilon_spent.to_bits()
        );
        assert_eq!(plain.ledger, traced.ledger);

        // Span ids are pure functions of (run_seed, step): recompute the
        // first step's ids independently and find them in the recorder.
        let spans = tracer.snapshot();
        let tid = derive_trace_id(33, DOMAIN_TRAIN_STEP, 1);
        let step_span = derive_span_id(tid, "step", 1);
        assert!(spans
            .iter()
            .any(|s| s.name == "step" && s.trace_id == tid && s.span_id == step_span));
        for phase in ["sample", "group", "local_sgd", "noise", "server_update"] {
            assert!(
                spans.iter().any(|s| s.name == phase
                    && s.trace_id == tid
                    && s.span_id == derive_span_id(tid, phase, 1)
                    && s.parent_id == step_span),
                "missing phase span {phase} for step 1"
            );
        }
        assert_eq!(
            spans.iter().filter(|s| s.name == "step").count() as u64,
            traced.summary.steps,
            "one step span per executed step"
        );
    }
}
