//! Membership-inference evaluation.
//!
//! The paper motivates DP training with the membership-inference threat
//! (§1: "an adversary who has access to the model … can learn whether the
//! target's data was used to train the model" [25, 52]). This module
//! implements the standard *loss-threshold* attack (Yeom et al. 2018):
//! members of the training set tend to incur lower model loss than
//! non-members, so the attacker thresholds the per-user loss. We report the
//! attack's AUC — 0.5 means the attacker learns nothing, which is what DP
//! training should (approximately) enforce and what the integration tests
//! assert.

use rand::Rng;
use serde::{Deserialize, Serialize};

use plp_data::dataset::TokenizedDataset;
use plp_model::negative::NegativeSampler;
use plp_model::params::ModelParams;
use plp_model::train::validation_loss;

use crate::config::Hyperparameters;
use crate::error::CoreError;

/// Outcome of a loss-threshold membership-inference attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MembershipReport {
    /// Area under the ROC curve of the attacker (0.5 = no leakage; 1.0 =
    /// perfect membership recovery).
    pub auc: f64,
    /// Membership advantage `2·AUC − 1` (Yeom et al.).
    pub advantage: f64,
    /// Mean per-user loss over training members.
    pub member_mean_loss: f64,
    /// Mean per-user loss over non-members.
    pub nonmember_mean_loss: f64,
    /// Number of member users scored.
    pub members: usize,
    /// Number of non-member users scored.
    pub nonmembers: usize,
}

/// Per-user mean skip-gram loss under `params` (the attacker's score).
///
/// # Errors
/// Propagates model errors.
pub fn per_user_losses<R: Rng + ?Sized>(
    rng: &mut R,
    params: &ModelParams,
    data: &TokenizedDataset,
    hp: &Hyperparameters,
) -> Result<Vec<f64>, CoreError> {
    let local = hp.local_sgd();
    let mut out = Vec::with_capacity(data.num_users());
    for u in &data.users {
        let tokens = u.flattened();
        if tokens.len() < 2 {
            continue;
        }
        out.push(validation_loss(
            rng,
            params,
            &tokens,
            &local,
            &NegativeSampler::Uniform,
        )?);
    }
    Ok(out)
}

/// AUC of separating `member_scores` (expected *lower*) from
/// `nonmember_scores` via the Mann–Whitney U statistic: the probability
/// that a random member scores below a random non-member (ties count ½).
pub fn auc_lower_is_member(member_scores: &[f64], nonmember_scores: &[f64]) -> f64 {
    if member_scores.is_empty() || nonmember_scores.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &m in member_scores {
        for &n in nonmember_scores {
            if m < n {
                wins += 1.0;
            } else if m == n {
                wins += 0.5;
            }
        }
    }
    wins / (member_scores.len() * nonmember_scores.len()) as f64
}

/// Runs the loss-threshold membership-inference attack against a trained
/// model.
///
/// `members` should be (a sample of) the training users; `nonmembers` the
/// held-out users. Both are scored with fresh uniform negatives.
///
/// # Errors
/// Propagates model errors.
pub fn loss_threshold_attack<R: Rng + ?Sized>(
    rng: &mut R,
    params: &ModelParams,
    members: &TokenizedDataset,
    nonmembers: &TokenizedDataset,
    hp: &Hyperparameters,
) -> Result<MembershipReport, CoreError> {
    let member_losses = per_user_losses(rng, params, members, hp)?;
    let nonmember_losses = per_user_losses(rng, params, nonmembers, hp)?;
    let auc = auc_lower_is_member(&member_losses, &nonmember_losses);
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    Ok(MembershipReport {
        auc,
        advantage: 2.0 * auc - 1.0,
        member_mean_loss: mean(&member_losses),
        nonmember_mean_loss: mean(&nonmember_losses),
        members: member_losses.len(),
        nonmembers: nonmember_losses.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_data::checkin::UserId;
    use plp_data::dataset::UserSequences;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn auc_of_separated_distributions_is_one() {
        let members = [0.1, 0.2, 0.3];
        let nonmembers = [1.0, 2.0];
        assert_eq!(auc_lower_is_member(&members, &nonmembers), 1.0);
        assert_eq!(auc_lower_is_member(&nonmembers, &members), 0.0);
    }

    #[test]
    fn auc_of_identical_distributions_is_half() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(auc_lower_is_member(&a, &a), 0.5);
        assert_eq!(auc_lower_is_member(&[], &a), 0.5);
        assert_eq!(auc_lower_is_member(&a, &[]), 0.5);
    }

    #[test]
    fn attack_runs_end_to_end_on_untrained_model() {
        let make = |base: usize, n: usize| TokenizedDataset {
            users: (0..n)
                .map(|i| UserSequences {
                    user: UserId(i as u32),
                    sessions: vec![(0..10).map(|t| (base + t + i) % 12).collect()],
                })
                .collect(),
            vocab_size: 12,
        };
        let members = make(0, 8);
        let nonmembers = make(3, 6);
        let mut rng = StdRng::seed_from_u64(3);
        let params = ModelParams::init(&mut rng, 12, 6).unwrap();
        let hp = Hyperparameters {
            embedding_dim: 6,
            negative_samples: 3,
            ..Hyperparameters::default()
        };
        let r = loss_threshold_attack(&mut rng, &params, &members, &nonmembers, &hp).unwrap();
        assert_eq!(r.members, 8);
        assert_eq!(r.nonmembers, 6);
        // An untrained model leaks (almost) nothing.
        assert!((r.auc - 0.5).abs() < 0.25, "auc {}", r.auc);
        assert!((r.advantage - (2.0 * r.auc - 1.0)).abs() < 1e-12);
        assert!(r.member_mean_loss > 0.0 && r.nonmember_mean_loss > 0.0);
    }

    #[test]
    fn short_histories_are_skipped() {
        let ds = TokenizedDataset {
            users: vec![UserSequences {
                user: UserId(0),
                sessions: vec![vec![1]],
            }],
            vocab_size: 4,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let params = ModelParams::init(&mut rng, 4, 3).unwrap();
        let hp = Hyperparameters {
            embedding_dim: 3,
            negative_samples: 2,
            ..Hyperparameters::default()
        };
        let losses = per_user_losses(&mut rng, &params, &ds, &hp).unwrap();
        assert!(losses.is_empty());
    }
}
