//! The non-private skip-gram trainer — the accuracy upper bound of
//! Figures 5 and 6.
//!
//! Standard epoch-based SGD: every epoch visits every user (in a shuffled
//! order) and runs mini-batch SGD over the user's token array. No clipping,
//! no noise, no sampling — this is the "non-private learning approach using
//! SGD" baseline of §5.2, whose best HR@10 the paper reports as 29.5%.

use rand::seq::SliceRandom;
use rand::Rng;

use plp_data::dataset::TokenizedDataset;
use plp_model::metrics::{evaluate_hit_rate, HitRate};
use plp_model::negative::NegativeSampler;
use plp_model::params::ModelParams;
use plp_model::train::{train_on_tokens, validation_loss};
use plp_model::Recommender;
use serde::{Deserialize, Serialize};

use crate::config::Hyperparameters;
use crate::error::CoreError;

/// Configuration of a non-private run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonPrivateConfig {
    /// Data epochs to run (the paper plots up to 250).
    pub epochs: usize,
    /// Evaluate HR@k every this many epochs (0 = only at the end).
    pub eval_every: usize,
    /// Cutoffs to evaluate (paper: 5, 10, 20).
    pub ks: Vec<usize>,
    /// Negative sampler (uniform by default; unigram allowed here because
    /// the non-private setting has no leakage constraint).
    pub unigram_negatives: bool,
    /// Linearly decay the learning rate to 10% of its initial value over
    /// the configured epochs (word2vec-style; prevents the late-epoch
    /// degradation a constant rate causes).
    pub lr_decay: bool,
}

impl Default for NonPrivateConfig {
    fn default() -> Self {
        NonPrivateConfig {
            epochs: 20,
            eval_every: 0,
            ks: vec![5, 10, 20],
            unigram_negatives: false,
            lr_decay: true,
        }
    }
}

/// Telemetry of one non-private epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochTelemetry {
    /// 1-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Validation HR@k (one entry per configured k), when evaluated.
    pub validation: Option<Vec<HitRate>>,
}

/// Result of a non-private run.
#[derive(Debug, Clone)]
pub struct NonPrivateOutcome {
    /// Trained parameters.
    pub params: ModelParams,
    /// Per-epoch telemetry.
    pub telemetry: Vec<EpochTelemetry>,
}

/// Trains without privacy for `cfg.epochs` epochs.
///
/// Uses the skip-gram hyper-parameters of `hp` (dim, window, batch, neg,
/// learning rate); the privacy fields of `hp` are ignored.
///
/// # Errors
/// Propagates configuration, data and model errors.
pub fn train_nonprivate<R: Rng + ?Sized>(
    rng: &mut R,
    train: &TokenizedDataset,
    validation: Option<&TokenizedDataset>,
    hp: &Hyperparameters,
    cfg: &NonPrivateConfig,
) -> Result<NonPrivateOutcome, CoreError> {
    hp.validate()?;
    if cfg.epochs == 0 {
        return Err(CoreError::BadConfig {
            name: "epochs",
            expected: ">= 1",
        });
    }
    if train.vocab_size < 2 {
        return Err(CoreError::BadConfig {
            name: "train.vocab_size",
            expected: ">= 2",
        });
    }
    let sampler = if cfg.unigram_negatives {
        let counts = plp_model::metrics::token_counts(train);
        NegativeSampler::unigram(&counts, 0.75)?
    } else {
        NegativeSampler::Uniform
    };
    let mut params = ModelParams::init(rng, train.vocab_size, hp.embedding_dim)?;
    let base_local = hp.local_sgd();
    let mut order: Vec<usize> = (0..train.num_users()).collect();
    let mut telemetry = Vec::with_capacity(cfg.epochs);

    for epoch in 1..=cfg.epochs {
        let mut local = base_local;
        if cfg.lr_decay && cfg.epochs > 1 {
            // Linear decay from 100% to 10% of the initial rate.
            let progress = (epoch - 1) as f64 / (cfg.epochs - 1) as f64;
            local.learning_rate = base_local.learning_rate * (1.0 - 0.9 * progress);
        }
        order.shuffle(rng);
        let mut loss_sum = 0.0;
        let mut pair_count = 0usize;
        for &u in &order {
            let tokens = train.users[u].flattened();
            let stats = train_on_tokens(rng, &mut params, &tokens, &local, &sampler)?;
            loss_sum += stats.mean_loss * stats.pairs as f64;
            pair_count += stats.pairs;
        }
        let evaluate = match (validation, cfg.eval_every) {
            (Some(_), 0) => epoch == cfg.epochs,
            (Some(_), n) => epoch % n == 0 || epoch == cfg.epochs,
            (None, _) => false,
        };
        let validation_hr = if evaluate {
            let v = validation.expect("checked above");
            let rec = Recommender::new(&params);
            Some(evaluate_hit_rate(&rec, v, &cfg.ks)?)
        } else {
            None
        };
        telemetry.push(EpochTelemetry {
            epoch,
            train_loss: if pair_count == 0 {
                0.0
            } else {
                loss_sum / pair_count as f64
            },
            validation: validation_hr,
        });
    }
    Ok(NonPrivateOutcome { params, telemetry })
}

/// Mean validation loss of the model over held-out users (Figure 6's loss
/// curve on the validation side).
///
/// # Errors
/// Propagates model errors.
pub fn heldout_loss<R: Rng + ?Sized>(
    rng: &mut R,
    params: &ModelParams,
    data: &TokenizedDataset,
    hp: &Hyperparameters,
) -> Result<f64, CoreError> {
    let local = hp.local_sgd();
    let mut total = 0.0;
    let mut n = 0usize;
    for u in &data.users {
        let tokens = u.flattened();
        if tokens.len() < 2 {
            continue;
        }
        total += validation_loss(rng, params, &tokens, &local, &NegativeSampler::Uniform)?;
        n += 1;
    }
    Ok(if n == 0 { 0.0 } else { total / n as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_data::checkin::UserId;
    use plp_data::dataset::UserSequences;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Strongly-structured corpus: token communities {0..5} and {8..13}.
    fn dataset(num_users: usize) -> TokenizedDataset {
        let users = (0..num_users)
            .map(|i| {
                let base = if i % 2 == 0 { 0 } else { 8 };
                UserSequences {
                    user: UserId(i as u32),
                    sessions: vec![(0..20).map(|t| base + (t + i) % 6).collect()],
                }
            })
            .collect();
        TokenizedDataset {
            users,
            vocab_size: 16,
        }
    }

    fn hp() -> Hyperparameters {
        Hyperparameters {
            embedding_dim: 12,
            negative_samples: 5,
            learning_rate: 0.08,
            ..Hyperparameters::default()
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = train_nonprivate(
            &mut rng,
            &dataset(20),
            None,
            &hp(),
            &NonPrivateConfig {
                epochs: 8,
                ..NonPrivateConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.telemetry.len(), 8);
        let first = out.telemetry.first().unwrap().train_loss;
        let last = out.telemetry.last().unwrap().train_loss;
        assert!(last < first, "loss {last} !< {first}");
    }

    #[test]
    fn learned_model_beats_random_guessing() {
        let mut rng = StdRng::seed_from_u64(2);
        let train = dataset(30);
        let test = dataset(6);
        let out = train_nonprivate(
            &mut rng,
            &train,
            Some(&test),
            &hp(),
            &NonPrivateConfig {
                epochs: 12,
                ..NonPrivateConfig::default()
            },
        )
        .unwrap();
        let hr = out.telemetry.last().unwrap().validation.as_ref().unwrap();
        let hr5 = hr[0].rate();
        let random = plp_model::metrics::random_baseline(5, 16);
        assert!(hr5 > 2.0 * random, "hr5 {hr5} vs random {random}");
    }

    #[test]
    fn eval_every_controls_cadence() {
        let mut rng = StdRng::seed_from_u64(3);
        let out = train_nonprivate(
            &mut rng,
            &dataset(10),
            Some(&dataset(2)),
            &hp(),
            &NonPrivateConfig {
                epochs: 5,
                eval_every: 2,
                ..NonPrivateConfig::default()
            },
        )
        .unwrap();
        let evaluated: Vec<usize> = out
            .telemetry
            .iter()
            .filter(|t| t.validation.is_some())
            .map(|t| t.epoch)
            .collect();
        assert_eq!(
            evaluated,
            vec![2, 4, 5],
            "every 2 epochs plus the final one"
        );
    }

    #[test]
    fn unigram_negatives_also_learn() {
        let mut rng = StdRng::seed_from_u64(4);
        let out = train_nonprivate(
            &mut rng,
            &dataset(16),
            None,
            &hp(),
            &NonPrivateConfig {
                epochs: 4,
                unigram_negatives: true,
                ..NonPrivateConfig::default()
            },
        )
        .unwrap();
        assert!(out.params.all_finite());
        let first = out.telemetry.first().unwrap().train_loss;
        let last = out.telemetry.last().unwrap().train_loss;
        assert!(last < first);
    }

    #[test]
    fn heldout_loss_is_finite_and_positive() {
        let mut rng = StdRng::seed_from_u64(5);
        let train = dataset(10);
        let out = train_nonprivate(
            &mut rng,
            &train,
            None,
            &hp(),
            &NonPrivateConfig {
                epochs: 2,
                ..NonPrivateConfig::default()
            },
        )
        .unwrap();
        let l = heldout_loss(&mut rng, &out.params, &dataset(3), &hp()).unwrap();
        assert!(l.is_finite() && l > 0.0);
        let empty = TokenizedDataset {
            users: vec![],
            vocab_size: 16,
        };
        assert_eq!(
            heldout_loss(&mut rng, &out.params, &empty, &hp()).unwrap(),
            0.0
        );
    }

    #[test]
    fn rejects_zero_epochs() {
        let mut rng = StdRng::seed_from_u64(6);
        let r = train_nonprivate(
            &mut rng,
            &dataset(4),
            None,
            &hp(),
            &NonPrivateConfig {
                epochs: 0,
                ..NonPrivateConfig::default()
            },
        );
        assert!(r.is_err());
    }
}
