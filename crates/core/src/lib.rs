//! Private Location Prediction (PLP) — the paper's contribution.
//!
//! This crate implements Algorithm 1 of *Differentially-Private
//! Next-Location Prediction with Neural Networks* (EDBT 2020) end to end:
//!
//! 1. Poisson-sample users with rate `q` ([`plp_data::sampling`]),
//! 2. group the sampled users into buckets of λ ([`plp_data::grouping`]),
//! 3. compute one local-SGD model delta per bucket
//!    ([`plp_model::train`]), clipped per layer to total norm `C`
//!    ([`plp_model::clip`]),
//! 4. sum the clipped deltas and add Gaussian noise `N(0, σ²ω²C²I)` over
//!    the *entire* flattened parameter vector,
//! 5. average by the fixed denominator `q·W/λ` (the expected bucket
//!    count; see [`plp::fixed_denominator`]) and apply a server-side
//!    (DP-)Adam step ([`plp_model::optimizer`]),
//! 6. track `(q, σ)` in the privacy ledger and stop when the moments
//!    accountant reports ε reaching the budget
//!    ([`plp_privacy::accountant`]).
//!
//! Three trainers are exposed:
//! * [`plp::train_plp`] — the full algorithm (grouping factor λ ≥ 1),
//! * [`dpsgd::train_dpsgd`] — the user-level DP-SGD baseline of
//!   McMahan et al. (one clipped delta per *user*, i.e. λ = 1),
//! * [`nonprivate::train_nonprivate`] — the noise-free skip-gram upper
//!   bound (Figures 5 and 6).
//!
//! [`experiment`] wires dataset generation → preprocessing → splitting →
//! training → HR@k evaluation into one reproducible harness used by every
//! figure bench. [`attacks`] evaluates the membership-inference threat the
//! paper's DP guarantee is meant to blunt.
//!
//! Training is crash-safe: [`checkpoint`] persists versioned, CRC-guarded
//! [`checkpoint::TrainingCheckpoint`]s atomically, [`plp::resume_plp`]
//! restores them bit-identically (ε recomputed from the restored ledger),
//! and [`faults`] provides the deterministic fault injector used by the
//! robustness drills.
//!
//! Training is also observable: pass a `plp_obs::Observer` in
//! [`plp::TrainOptions`] to get per-phase latency histograms
//! (`plp_train_phase_ms{phase=…}` for every stage of Algorithm 1),
//! privacy-budget gauges (`plp_epsilon_spent`, bit-identical to
//! [`telemetry::RunSummary::epsilon_spent`] at run end), stop-reason and
//! skipped-bucket counters, and a JSONL event stream (`run_start`,
//! `step`, `skipped_buckets`, `checkpoint_saved`, `checkpoint_resumed`,
//! `run_end`). The default observer is inert, and an enabled one never
//! changes what training computes.

pub mod attacks;
pub mod checkpoint;
pub mod config;
pub mod dpsgd;
pub mod error;
pub mod experiment;
pub mod faults;
pub mod noise;
pub mod nonprivate;
pub mod plp;
pub mod telemetry;

pub use config::{Hyperparameters, ServerOptimizer};
pub use error::CoreError;
pub use plp::{
    resume_plp, resume_plp_with_executor, train_plp, train_plp_resumable, train_plp_with_executor,
    BucketExecutor, BucketRunner, BucketUpdate, CheckpointPolicy, LocalExecutor, PlpOutcome,
    TrainOptions,
};
