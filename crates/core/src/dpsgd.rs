//! The user-level DP-SGD baseline (§5.2).
//!
//! "We evaluate our proposed Private Location Prediction (PLP) approach in
//! comparison with DP-SGD [2], … adapted to work on user-partitioned data,
//! so that it guarantees user-level privacy" — i.e. the McMahan et al.
//! federated-averaging formulation: one clipped model delta per *user*,
//! which is exactly Algorithm 1 with a grouping factor of λ = 1.
//!
//! Keeping it as a thin wrapper (rather than a fork of the training loop)
//! guarantees that every accuracy difference measured between PLP and
//! DP-SGD is attributable to data grouping alone.

use rand::Rng;

use plp_data::dataset::TokenizedDataset;

use crate::config::{GroupingStrategyConfig, Hyperparameters};
use crate::error::CoreError;
use crate::plp::{train_plp, PlpOutcome};

/// The λ = 1 configuration [`train_dpsgd`] actually runs: `hp` with the
/// grouping knobs forced to one user per bucket. Exposed so resumable
/// drivers can checkpoint the baseline through the same code path.
pub fn baseline_hyperparameters(hp: &Hyperparameters) -> Hyperparameters {
    let mut baseline = hp.clone();
    baseline.grouping_factor = 1;
    baseline.split_factor = 1;
    baseline.grouping_strategy = GroupingStrategyConfig::Random;
    baseline
}

/// Trains the user-level DP-SGD baseline: Algorithm 1 with λ = 1
/// (one clipped, noised delta per sampled user).
///
/// The `grouping_factor` and `grouping_strategy` fields of `hp` are
/// ignored and forced to `1` / `Random`.
///
/// # Errors
/// Same contract as [`train_plp`].
pub fn train_dpsgd<R: Rng + ?Sized>(
    rng: &mut R,
    train: &TokenizedDataset,
    validation: Option<&TokenizedDataset>,
    hp: &Hyperparameters,
) -> Result<PlpOutcome, CoreError> {
    train_plp(rng, train, validation, &baseline_hyperparameters(hp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_data::checkin::UserId;
    use plp_data::dataset::UserSequences;
    use plp_privacy::PrivacyBudget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(num_users: usize) -> TokenizedDataset {
        let users = (0..num_users)
            .map(|i| UserSequences {
                user: UserId(i as u32),
                sessions: vec![(0..10).map(|t| (t + i) % 8).collect()],
            })
            .collect();
        TokenizedDataset {
            users,
            vocab_size: 8,
        }
    }

    fn hp() -> Hyperparameters {
        Hyperparameters {
            embedding_dim: 6,
            negative_samples: 3,
            sampling_prob: 0.4,
            grouping_factor: 4, // must be overridden to 1
            max_steps: 3,
            budget: PrivacyBudget {
                epsilon: 100.0,
                delta: 1e-3,
            },
            ..Hyperparameters::default()
        }
    }

    #[test]
    fn baseline_uses_one_user_per_bucket() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = train_dpsgd(&mut rng, &dataset(20), None, &hp()).unwrap();
        for t in &out.telemetry {
            assert_eq!(
                t.buckets, t.sampled_users,
                "lambda = 1 means |H| = |sample|"
            );
        }
    }

    #[test]
    fn baseline_matches_plp_with_lambda_one() {
        let ds = dataset(16);
        let mut plp_hp = hp();
        plp_hp.grouping_factor = 1;
        let mut rng1 = StdRng::seed_from_u64(3);
        let a = crate::plp::train_plp(&mut rng1, &ds, None, &plp_hp).unwrap();
        let mut rng2 = StdRng::seed_from_u64(3);
        let b = train_dpsgd(&mut rng2, &ds, None, &hp()).unwrap();
        assert_eq!(a.params, b.params);
    }

    #[test]
    fn baseline_consumes_budget_identically_to_plp() {
        // Grouping does not change the privacy accounting: same q, sigma,
        // steps => same epsilon.
        let ds = dataset(16);
        let mut rng1 = StdRng::seed_from_u64(5);
        let base = train_dpsgd(&mut rng1, &ds, None, &hp()).unwrap();
        let mut rng2 = StdRng::seed_from_u64(6);
        let mut plp_hp = hp();
        plp_hp.grouping_factor = 4;
        let plp = crate::plp::train_plp(&mut rng2, &ds, None, &plp_hp).unwrap();
        assert!((base.summary.epsilon_spent - plp.summary.epsilon_spent).abs() < 1e-12);
    }
}
