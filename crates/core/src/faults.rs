//! Deterministic fault injection for crash-safety and robustness drills.
//!
//! A [`FaultInjector`] is compiled into the trainer unconditionally and is
//! inert by default — every decision method returns "no fault" until a
//! [`FaultPlan`] is installed. Decisions are pure functions of
//! `(plan seed, fault kind, step, index)`, so a faulty run is exactly
//! reproducible: re-running with the same plan poisons the same buckets
//! and corrupts the same checkpoint writes.

/// Which faults to inject, and how often.
///
/// All rates are probabilities in `[0, 1]` evaluated independently per
/// decision point (per bucket for delta/panic faults, per checkpoint write
/// for storage faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's deterministic decision stream.
    pub seed: u64,
    /// Probability a bucket's clipped delta is poisoned with `NaN`.
    pub nan_delta_rate: f64,
    /// Probability a bucket worker panics mid-update.
    pub panic_rate: f64,
    /// Probability a checkpoint write is truncated (crash mid-write).
    pub truncate_write_rate: f64,
    /// Probability a checkpoint write has one bit flipped (silent
    /// corruption).
    pub bitflip_write_rate: f64,
}

impl FaultPlan {
    /// A plan with every rate zero — equivalent to no plan at all.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            nan_delta_rate: 0.0,
            panic_rate: 0.0,
            truncate_write_rate: 0.0,
            bitflip_write_rate: 0.0,
        }
    }
}

/// How a checkpoint write should be corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Keep only the first `keep` bytes.
    Truncate {
        /// Bytes surviving the simulated crash.
        keep: usize,
    },
    /// Flip one bit at byte `at`.
    BitFlip {
        /// Byte offset of the flipped bit.
        at: usize,
    },
}

/// Injects (or, by default, does not inject) deterministic faults.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultInjector {
    plan: Option<FaultPlan>,
}

/// SplitMix64 finalizer: a high-quality 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-fault-kind domain separators.
const KIND_NAN: u64 = 1;
const KIND_PANIC: u64 = 2;
const KIND_TRUNCATE: u64 = 3;
const KIND_BITFLIP: u64 = 4;

impl FaultInjector {
    /// The default injector: never injects anything.
    pub fn inert() -> Self {
        FaultInjector { plan: None }
    }

    /// An injector following `plan`.
    pub fn with_plan(plan: FaultPlan) -> Self {
        FaultInjector { plan: Some(plan) }
    }

    /// `true` iff this injector can never fire.
    pub fn is_inert(&self) -> bool {
        match self.plan {
            None => true,
            Some(p) => {
                p.nan_delta_rate <= 0.0
                    && p.panic_rate <= 0.0
                    && p.truncate_write_rate <= 0.0
                    && p.bitflip_write_rate <= 0.0
            }
        }
    }

    /// Deterministic Bernoulli draw for one decision point; also returns
    /// the raw hash so callers can derive fault parameters from it.
    fn draw(&self, kind: u64, step: u64, index: u64, rate: f64) -> Option<u64> {
        let plan = self.plan?;
        if rate <= 0.0 {
            return None;
        }
        let h = mix(plan.seed ^ mix(kind ^ mix(step) ^ mix(index).rotate_left(17)));
        // Map the top 53 bits to [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (u < rate).then_some(mix(h))
    }

    /// Should bucket `index` of `step` get a `NaN`-poisoned delta?
    pub fn poison_delta(&self, step: u64, index: usize) -> bool {
        let rate = self.plan.map_or(0.0, |p| p.nan_delta_rate);
        self.draw(KIND_NAN, step, index as u64, rate).is_some()
    }

    /// Should the worker computing bucket `index` of `step` panic?
    pub fn panic_bucket(&self, step: u64, index: usize) -> bool {
        let rate = self.plan.map_or(0.0, |p| p.panic_rate);
        self.draw(KIND_PANIC, step, index as u64, rate).is_some()
    }

    /// How (if at all) the checkpoint written after `step` should be
    /// corrupted. Truncation wins when both faults fire.
    pub fn checkpoint_write_fault(&self, step: u64, len: usize) -> Option<WriteFault> {
        if len == 0 {
            return None;
        }
        let trunc_rate = self.plan.map_or(0.0, |p| p.truncate_write_rate);
        if let Some(h) = self.draw(KIND_TRUNCATE, step, 0, trunc_rate) {
            return Some(WriteFault::Truncate {
                keep: (h as usize) % len,
            });
        }
        let flip_rate = self.plan.map_or(0.0, |p| p.bitflip_write_rate);
        if let Some(h) = self.draw(KIND_BITFLIP, step, 0, flip_rate) {
            return Some(WriteFault::BitFlip {
                at: (h as usize) % len,
            });
        }
        None
    }

    /// Applies [`FaultInjector::checkpoint_write_fault`] to a serialized
    /// checkpoint, returning the (possibly corrupted) bytes to write and
    /// whether a fault fired.
    pub fn corrupt_checkpoint_bytes(&self, step: u64, mut bytes: Vec<u8>) -> (Vec<u8>, bool) {
        match self.checkpoint_write_fault(step, bytes.len()) {
            None => (bytes, false),
            Some(WriteFault::Truncate { keep }) => {
                bytes.truncate(keep);
                (bytes, true)
            }
            Some(WriteFault::BitFlip { at }) => {
                bytes[at] ^= 1 << (at % 8);
                (bytes, true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_by_default_and_when_rates_are_zero() {
        let quiet = FaultInjector::default();
        assert!(quiet.is_inert());
        assert!(FaultInjector::with_plan(FaultPlan::quiet(5)).is_inert());
        for step in 0..50 {
            for b in 0..8 {
                assert!(!quiet.poison_delta(step, b));
                assert!(!quiet.panic_bucket(step, b));
            }
            assert!(quiet.checkpoint_write_fault(step, 1024).is_none());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan {
            nan_delta_rate: 0.3,
            panic_rate: 0.3,
            ..FaultPlan::quiet(7)
        };
        let a = FaultInjector::with_plan(plan);
        let b = FaultInjector::with_plan(plan);
        let c = FaultInjector::with_plan(FaultPlan { seed: 8, ..plan });
        let decisions = |inj: &FaultInjector| -> Vec<bool> {
            (0..200)
                .map(|i| inj.poison_delta(i / 10, (i % 10) as usize))
                .collect()
        };
        assert_eq!(decisions(&a), decisions(&b));
        assert_ne!(
            decisions(&a),
            decisions(&c),
            "seed must steer the fault stream"
        );
        let fired = decisions(&a).iter().filter(|&&x| x).count();
        assert!(
            (20..100).contains(&fired),
            "rate 0.3 of 200 draws, got {fired}"
        );
    }

    #[test]
    fn nan_and_panic_streams_are_independent() {
        let plan = FaultPlan {
            nan_delta_rate: 0.5,
            panic_rate: 0.5,
            ..FaultPlan::quiet(3)
        };
        let inj = FaultInjector::with_plan(plan);
        let nan: Vec<bool> = (0..128).map(|i| inj.poison_delta(1, i)).collect();
        let panic: Vec<bool> = (0..128).map(|i| inj.panic_bucket(1, i)).collect();
        assert_ne!(nan, panic, "kinds must not share one decision stream");
    }

    #[test]
    fn write_faults_stay_in_bounds() {
        let plan = FaultPlan {
            truncate_write_rate: 0.5,
            bitflip_write_rate: 0.5,
            ..FaultPlan::quiet(11)
        };
        let inj = FaultInjector::with_plan(plan);
        let mut fired = 0;
        for step in 0..100 {
            let payload = vec![0xABu8; 257];
            let (out, corrupted) = inj.corrupt_checkpoint_bytes(step, payload.clone());
            if corrupted {
                fired += 1;
                assert!(out.len() < payload.len() || out.iter().zip(&payload).any(|(a, b)| a != b));
            } else {
                assert_eq!(out, payload);
            }
        }
        assert!(fired > 20, "write faults should fire often at these rates");
        assert!(
            inj.checkpoint_write_fault(1, 0).is_none(),
            "empty write has no fault"
        );
    }
}
