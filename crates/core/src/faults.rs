//! Deterministic fault injection for crash-safety and robustness drills.
//!
//! A [`FaultInjector`] is compiled into the trainer unconditionally and is
//! inert by default — every decision method returns "no fault" until a
//! [`FaultPlan`] is installed. Decisions are pure functions of
//! `(plan seed, fault kind, step, index)`, so a faulty run is exactly
//! reproducible: re-running with the same plan poisons the same buckets
//! and corrupts the same checkpoint writes — and a federated cohort
//! replays the same worker stalls, exits and garbled frames no matter how
//! buckets are partitioned across workers (see the purity property tests).

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// Which faults to inject, and how often.
///
/// All rates are probabilities in `[0, 1]` evaluated independently per
/// decision point (per bucket for delta/panic faults, per checkpoint write
/// for storage faults, per worker incarnation or reply for the federated
/// worker faults). Install a plan with [`FaultInjector::try_with_plan`],
/// which validates every rate up front.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the injector's deterministic decision stream.
    pub seed: u64,
    /// Probability a bucket's clipped delta is poisoned with `NaN`.
    pub nan_delta_rate: f64,
    /// Probability a bucket worker panics mid-update.
    pub panic_rate: f64,
    /// Probability a checkpoint write is truncated (crash mid-write).
    pub truncate_write_rate: f64,
    /// Probability a checkpoint write has one bit flipped (silent
    /// corruption).
    pub bitflip_write_rate: f64,
    /// Probability a federated worker stalls (sleeps) before answering a
    /// round, evaluated per `(step, worker incarnation)`.
    pub worker_stall_rate: f64,
    /// How long a stalling worker sleeps, in milliseconds. Drills set this
    /// beyond the coordinator's round deadline so the straggler path fires
    /// deterministically.
    pub worker_stall_ms: u64,
    /// Probability a federated worker exits mid-round (simulated crash),
    /// evaluated per `(step, worker incarnation)`.
    pub worker_exit_rate: f64,
    /// Probability a federated worker corrupts one byte of a reply frame
    /// (after sealing its CRC), evaluated per `(step, reply sequence)`.
    pub corrupt_frame_rate: f64,
    /// Probability a federated worker sends a reply frame twice,
    /// evaluated per `(step, reply sequence)`.
    pub duplicate_reply_rate: f64,
}

impl FaultPlan {
    /// A plan with every rate zero — equivalent to no plan at all.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            nan_delta_rate: 0.0,
            panic_rate: 0.0,
            truncate_write_rate: 0.0,
            bitflip_write_rate: 0.0,
            worker_stall_rate: 0.0,
            worker_stall_ms: 0,
            worker_exit_rate: 0.0,
            corrupt_frame_rate: 0.0,
            duplicate_reply_rate: 0.0,
        }
    }

    /// Every `(name, value)` rate field, for validation and diagnostics.
    fn rates(&self) -> [(&'static str, f64); 8] {
        [
            ("nan_delta_rate", self.nan_delta_rate),
            ("panic_rate", self.panic_rate),
            ("truncate_write_rate", self.truncate_write_rate),
            ("bitflip_write_rate", self.bitflip_write_rate),
            ("worker_stall_rate", self.worker_stall_rate),
            ("worker_exit_rate", self.worker_exit_rate),
            ("corrupt_frame_rate", self.corrupt_frame_rate),
            ("duplicate_reply_rate", self.duplicate_reply_rate),
        ]
    }

    /// Validates that every rate is finite and in `[0, 1]`.
    ///
    /// A NaN rate would make every Bernoulli comparison false (silently
    /// inert), and a rate above 1 or below 0 misrepresents what the drill
    /// exercises — both are configuration bugs, caught at install time.
    ///
    /// # Errors
    /// [`CoreError::BadConfig`] naming the first out-of-domain rate.
    pub fn validate(&self) -> Result<(), CoreError> {
        for (name, rate) in self.rates() {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(CoreError::BadConfig {
                    name,
                    expected: "a finite probability in [0, 1]",
                });
            }
        }
        Ok(())
    }
}

/// How a checkpoint write should be corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Keep only the first `keep` bytes.
    Truncate {
        /// Bytes surviving the simulated crash.
        keep: usize,
    },
    /// Flip one bit at byte `at`.
    BitFlip {
        /// Byte offset of the flipped bit.
        at: usize,
    },
}

/// Injects (or, by default, does not inject) deterministic faults.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultInjector {
    plan: Option<FaultPlan>,
}

/// SplitMix64 finalizer: a high-quality 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-fault-kind domain separators.
const KIND_NAN: u64 = 1;
const KIND_PANIC: u64 = 2;
const KIND_TRUNCATE: u64 = 3;
const KIND_BITFLIP: u64 = 4;
const KIND_STALL: u64 = 5;
const KIND_EXIT: u64 = 6;
const KIND_FRAME: u64 = 7;
const KIND_DUP: u64 = 8;

impl FaultInjector {
    /// The default injector: never injects anything.
    pub fn inert() -> Self {
        FaultInjector { plan: None }
    }

    /// An injector following `plan`.
    ///
    /// # Panics
    /// Panics if the plan fails [`FaultPlan::validate`]; use
    /// [`FaultInjector::try_with_plan`] to handle invalid plans as a typed
    /// error instead.
    pub fn with_plan(plan: FaultPlan) -> Self {
        FaultInjector::try_with_plan(plan).expect("invalid FaultPlan")
    }

    /// An injector following `plan`, validating it at install time.
    ///
    /// # Errors
    /// [`CoreError::BadConfig`] naming the first rate that is not a finite
    /// probability in `[0, 1]`.
    pub fn try_with_plan(plan: FaultPlan) -> Result<Self, CoreError> {
        plan.validate()?;
        Ok(FaultInjector { plan: Some(plan) })
    }

    /// The installed plan, if any (federated coordinators forward it to
    /// worker processes so both sides draw from the same decision stream).
    pub fn plan(&self) -> Option<FaultPlan> {
        self.plan
    }

    /// `true` iff this injector can never fire.
    pub fn is_inert(&self) -> bool {
        match self.plan {
            None => true,
            Some(p) => p.rates().iter().all(|&(_, r)| r <= 0.0),
        }
    }

    /// Deterministic Bernoulli draw for one decision point; also returns
    /// the raw hash so callers can derive fault parameters from it.
    fn draw(&self, kind: u64, step: u64, index: u64, rate: f64) -> Option<u64> {
        let plan = self.plan?;
        if rate <= 0.0 {
            return None;
        }
        let h = mix(plan.seed ^ mix(kind ^ mix(step) ^ mix(index).rotate_left(17)));
        // Map the top 53 bits to [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (u < rate).then_some(mix(h))
    }

    /// Should bucket `index` of `step` get a `NaN`-poisoned delta?
    pub fn poison_delta(&self, step: u64, index: usize) -> bool {
        let rate = self.plan.map_or(0.0, |p| p.nan_delta_rate);
        self.draw(KIND_NAN, step, index as u64, rate).is_some()
    }

    /// Should the worker computing bucket `index` of `step` panic?
    pub fn panic_bucket(&self, step: u64, index: usize) -> bool {
        let rate = self.plan.map_or(0.0, |p| p.panic_rate);
        self.draw(KIND_PANIC, step, index as u64, rate).is_some()
    }

    /// How (if at all) the checkpoint written after `step` should be
    /// corrupted. Truncation wins when both faults fire.
    pub fn checkpoint_write_fault(&self, step: u64, len: usize) -> Option<WriteFault> {
        if len == 0 {
            return None;
        }
        let trunc_rate = self.plan.map_or(0.0, |p| p.truncate_write_rate);
        if let Some(h) = self.draw(KIND_TRUNCATE, step, 0, trunc_rate) {
            return Some(WriteFault::Truncate {
                keep: (h as usize) % len,
            });
        }
        let flip_rate = self.plan.map_or(0.0, |p| p.bitflip_write_rate);
        if let Some(h) = self.draw(KIND_BITFLIP, step, 0, flip_rate) {
            return Some(WriteFault::BitFlip {
                at: (h as usize) % len,
            });
        }
        None
    }

    /// Should the worker incarnation answering `step` stall before
    /// replying? Returns the stall duration in milliseconds when it fires.
    ///
    /// Keyed on the *incarnation* (a coordinator-wide counter bumped on
    /// every spawn), not the worker slot: a respawned replacement draws a
    /// fresh decision, so a stall can never wedge a slot forever.
    pub fn stall_worker(&self, step: u64, incarnation: u64) -> Option<u64> {
        let plan = self.plan?;
        self.draw(KIND_STALL, step, incarnation, plan.worker_stall_rate)
            .map(|_| plan.worker_stall_ms)
    }

    /// Should the worker incarnation answering `step` exit mid-round
    /// (simulated `kill -9`)? Keyed on the incarnation like
    /// [`FaultInjector::stall_worker`], so the respawned replacement
    /// survives to answer the retry.
    pub fn exit_worker(&self, step: u64, incarnation: u64) -> bool {
        let rate = self.plan.map_or(0.0, |p| p.worker_exit_rate);
        self.draw(KIND_EXIT, step, incarnation, rate).is_some()
    }

    /// Should reply number `seq` of `step` be corrupted after its CRC was
    /// sealed? Returns a hash the worker maps to a byte offset. Keyed on
    /// the worker's monotone reply sequence number, so the re-requested
    /// reply draws a fresh decision instead of corrupting forever.
    pub fn corrupt_reply_frame(&self, step: u64, seq: u64) -> Option<u64> {
        let rate = self.plan.map_or(0.0, |p| p.corrupt_frame_rate);
        self.draw(KIND_FRAME, step, seq, rate)
    }

    /// Should reply number `seq` of `step` be sent twice? The coordinator
    /// must treat the duplicate as idempotent.
    pub fn duplicate_reply(&self, step: u64, seq: u64) -> bool {
        let rate = self.plan.map_or(0.0, |p| p.duplicate_reply_rate);
        self.draw(KIND_DUP, step, seq, rate).is_some()
    }

    /// Applies [`FaultInjector::checkpoint_write_fault`] to a serialized
    /// checkpoint, returning the (possibly corrupted) bytes to write and
    /// whether a fault fired.
    pub fn corrupt_checkpoint_bytes(&self, step: u64, mut bytes: Vec<u8>) -> (Vec<u8>, bool) {
        match self.checkpoint_write_fault(step, bytes.len()) {
            None => (bytes, false),
            Some(WriteFault::Truncate { keep }) => {
                bytes.truncate(keep);
                (bytes, true)
            }
            Some(WriteFault::BitFlip { at }) => {
                bytes[at] ^= 1 << (at % 8);
                (bytes, true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_by_default_and_when_rates_are_zero() {
        let quiet = FaultInjector::default();
        assert!(quiet.is_inert());
        assert!(FaultInjector::with_plan(FaultPlan::quiet(5)).is_inert());
        for step in 0..50 {
            for b in 0..8 {
                assert!(!quiet.poison_delta(step, b));
                assert!(!quiet.panic_bucket(step, b));
            }
            assert!(quiet.checkpoint_write_fault(step, 1024).is_none());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan {
            nan_delta_rate: 0.3,
            panic_rate: 0.3,
            ..FaultPlan::quiet(7)
        };
        let a = FaultInjector::with_plan(plan);
        let b = FaultInjector::with_plan(plan);
        let c = FaultInjector::with_plan(FaultPlan { seed: 8, ..plan });
        let decisions = |inj: &FaultInjector| -> Vec<bool> {
            (0..200)
                .map(|i| inj.poison_delta(i / 10, (i % 10) as usize))
                .collect()
        };
        assert_eq!(decisions(&a), decisions(&b));
        assert_ne!(
            decisions(&a),
            decisions(&c),
            "seed must steer the fault stream"
        );
        let fired = decisions(&a).iter().filter(|&&x| x).count();
        assert!(
            (20..100).contains(&fired),
            "rate 0.3 of 200 draws, got {fired}"
        );
    }

    #[test]
    fn nan_and_panic_streams_are_independent() {
        let plan = FaultPlan {
            nan_delta_rate: 0.5,
            panic_rate: 0.5,
            ..FaultPlan::quiet(3)
        };
        let inj = FaultInjector::with_plan(plan);
        let nan: Vec<bool> = (0..128).map(|i| inj.poison_delta(1, i)).collect();
        let panic: Vec<bool> = (0..128).map(|i| inj.panic_bucket(1, i)).collect();
        assert_ne!(nan, panic, "kinds must not share one decision stream");
    }

    #[test]
    fn install_time_validation_rejects_bad_rates() {
        let bad_values = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.1, 1.1];
        type Setter = fn(&mut FaultPlan, f64);
        let setters: [(&str, Setter); 8] = [
            ("nan_delta_rate", |p, v| p.nan_delta_rate = v),
            ("panic_rate", |p, v| p.panic_rate = v),
            ("truncate_write_rate", |p, v| p.truncate_write_rate = v),
            ("bitflip_write_rate", |p, v| p.bitflip_write_rate = v),
            ("worker_stall_rate", |p, v| p.worker_stall_rate = v),
            ("worker_exit_rate", |p, v| p.worker_exit_rate = v),
            ("corrupt_frame_rate", |p, v| p.corrupt_frame_rate = v),
            ("duplicate_reply_rate", |p, v| p.duplicate_reply_rate = v),
        ];
        for (name, set) in setters {
            for v in bad_values {
                let mut plan = FaultPlan::quiet(1);
                set(&mut plan, v);
                match FaultInjector::try_with_plan(plan) {
                    Err(crate::error::CoreError::BadConfig { name: got, .. }) => {
                        assert_eq!(got, name, "wrong field blamed for {v}");
                    }
                    other => panic!("{name}={v} must be rejected, got {other:?}"),
                }
            }
        }
        // Boundary values are legal, and a valid plan installs.
        let mut plan = FaultPlan::quiet(1);
        plan.nan_delta_rate = 1.0;
        plan.worker_stall_rate = 0.0;
        assert!(FaultInjector::try_with_plan(plan).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid FaultPlan")]
    fn with_plan_panics_on_invalid_rates() {
        let _ = FaultInjector::with_plan(FaultPlan {
            panic_rate: f64::NAN,
            ..FaultPlan::quiet(2)
        });
    }

    #[test]
    fn worker_faults_fire_deterministically_and_independently() {
        let plan = FaultPlan {
            worker_stall_rate: 0.5,
            worker_stall_ms: 750,
            worker_exit_rate: 0.5,
            corrupt_frame_rate: 0.5,
            duplicate_reply_rate: 0.5,
            ..FaultPlan::quiet(21)
        };
        let inj = FaultInjector::with_plan(plan);
        assert!(!inj.is_inert());
        let stalls: Vec<bool> = (0..128).map(|i| inj.stall_worker(3, i).is_some()).collect();
        let exits: Vec<bool> = (0..128).map(|i| inj.exit_worker(3, i)).collect();
        let frames: Vec<bool> = (0..128)
            .map(|i| inj.corrupt_reply_frame(3, i).is_some())
            .collect();
        let dups: Vec<bool> = (0..128).map(|i| inj.duplicate_reply(3, i)).collect();
        assert_ne!(stalls, exits, "kinds must not share one decision stream");
        assert_ne!(exits, frames);
        assert_ne!(frames, dups);
        for v in [&stalls, &exits, &frames, &dups] {
            let fired = v.iter().filter(|&&x| x).count();
            assert!((30..100).contains(&fired), "rate 0.5 of 128, got {fired}");
        }
        // The stall carries the configured duration, and replays exactly.
        let first_stall = (0..128).find(|&i| stalls[i as usize]).unwrap();
        assert_eq!(inj.stall_worker(3, first_stall), Some(750));
        // A quiet plan never fires a worker fault.
        let quiet = FaultInjector::with_plan(FaultPlan::quiet(21));
        assert!((0..64).all(|i| quiet.stall_worker(3, i).is_none()
            && !quiet.exit_worker(3, i)
            && quiet.corrupt_reply_frame(3, i).is_none()
            && !quiet.duplicate_reply(3, i)));
    }

    #[test]
    fn write_faults_stay_in_bounds() {
        let plan = FaultPlan {
            truncate_write_rate: 0.5,
            bitflip_write_rate: 0.5,
            ..FaultPlan::quiet(11)
        };
        let inj = FaultInjector::with_plan(plan);
        let mut fired = 0;
        for step in 0..100 {
            let payload = vec![0xABu8; 257];
            let (out, corrupted) = inj.corrupt_checkpoint_bytes(step, payload.clone());
            if corrupted {
                fired += 1;
                assert!(out.len() < payload.len() || out.iter().zip(&payload).any(|(a, b)| a != b));
            } else {
                assert_eq!(out, payload);
            }
        }
        assert!(fired > 20, "write faults should fire often at these rates");
        assert!(
            inj.checkpoint_write_fault(1, 0).is_none(),
            "empty write has no fault"
        );
    }
}

#[cfg(test)]
mod purity_props {
    //! Property tests: every injector decision is a pure function of
    //! `(plan seed, fault kind, step, index)`. Purity is what makes fault
    //! schedules replayable across runs *and* invariant to how work is
    //! partitioned across federated workers — a bucket keeps its fault no
    //! matter which worker (or how many workers) ends up computing it.

    use super::*;
    use proptest::prelude::*;

    fn plan_from(seed: u64, a: f64, b: f64, c: f64) -> FaultPlan {
        FaultPlan {
            nan_delta_rate: a,
            panic_rate: b,
            worker_stall_rate: c,
            worker_stall_ms: 100,
            worker_exit_rate: a,
            corrupt_frame_rate: b,
            duplicate_reply_rate: c,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Every decision the injector can make for one `(step, index)` point,
    /// flattened into a comparable vector.
    fn decisions_at(inj: &FaultInjector, step: u64, index: u64) -> Vec<bool> {
        vec![
            inj.poison_delta(step, index as usize),
            inj.panic_bucket(step, index as usize),
            inj.stall_worker(step, index).is_some(),
            inj.exit_worker(step, index),
            inj.corrupt_reply_frame(step, index).is_some(),
            inj.duplicate_reply(step, index),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn same_plan_replays_identical_schedules(
            seed in 0u64..u64::MAX,
            ra in 0.0f64..=1.0,
            rb in 0.0f64..=1.0,
            rc in 0.0f64..=1.0,
            step in 0u64..1000,
            index in 0u64..256,
        ) {
            let plan = plan_from(seed, ra, rb, rc);
            let a = FaultInjector::try_with_plan(plan).unwrap();
            let b = FaultInjector::try_with_plan(plan).unwrap();
            // Two independent injectors agree, and repeated queries of one
            // injector agree with themselves (no hidden mutable state).
            prop_assert_eq!(decisions_at(&a, step, index), decisions_at(&b, step, index));
            prop_assert_eq!(decisions_at(&a, step, index), decisions_at(&a, step, index));
        }

        #[test]
        fn schedules_are_invariant_to_worker_partitioning(
            seed in 0u64..u64::MAX,
            ra in 0.0f64..=1.0,
            rb in 0.0f64..=1.0,
            rc in 0.0f64..=1.0,
            step in 0u64..100,
            workers in 1usize..8,
        ) {
            let inj = FaultInjector::try_with_plan(plan_from(seed, ra, rb, rc)).unwrap();
            // Reference schedule: evaluate 64 decision points in order.
            let reference: Vec<Vec<bool>> =
                (0..64).map(|i| decisions_at(&inj, step, i)).collect();
            // Partitioned schedule: each "worker" evaluates only its strided
            // share, interleaved worker-by-worker (a different call order and
            // grouping than the reference). The union must match exactly.
            let mut partitioned: Vec<Option<Vec<bool>>> = vec![None; 64];
            for w in 0..workers {
                for i in (0..64u64).filter(|i| *i as usize % workers == w) {
                    partitioned[i as usize] = Some(decisions_at(&inj, step, i));
                }
            }
            for (i, got) in partitioned.into_iter().enumerate() {
                prop_assert_eq!(got.unwrap(), reference[i].clone());
            }
        }

        #[test]
        fn distinct_seeds_or_steps_decorrelate(
            seed in 0u64..u64::MAX - 1,
            step in 0u64..1000,
        ) {
            let plan = FaultPlan {
                nan_delta_rate: 0.5,
                ..FaultPlan::quiet(seed)
            };
            let a = FaultInjector::try_with_plan(plan).unwrap();
            let b = FaultInjector::try_with_plan(FaultPlan { seed: seed + 1, ..plan }).unwrap();
            let at = |inj: &FaultInjector, s: u64| -> Vec<bool> {
                (0..256).map(|i| inj.poison_delta(s, i)).collect()
            };
            // Not a hard guarantee per draw, but over 256 draws two streams
            // colliding bit-for-bit would indicate a broken mix.
            prop_assert!(at(&a, step) != at(&b, step), "seed must steer the stream");
            prop_assert!(at(&a, step) != at(&a, step + 1), "step must steer the stream");
        }
    }
}
