//! Error type unifying the substrate layers.

use std::fmt;

use plp_data::DataError;
use plp_model::ModelError;
use plp_privacy::PrivacyError;

/// Errors surfaced by the training loops and experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Data-layer failure.
    Data(DataError),
    /// Model-layer failure.
    Model(ModelError),
    /// Privacy-layer failure (including budget exhaustion).
    Privacy(PrivacyError),
    /// A trainer configuration was invalid.
    BadConfig {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the legal domain.
        expected: &'static str,
    },
    /// A checkpoint failed its integrity checks (truncation, bad magic or
    /// version, CRC mismatch, inconsistent tensors).
    CheckpointCorrupt {
        /// Which check failed.
        what: &'static str,
    },
    /// A checkpoint was written under a different configuration and must
    /// not seed a resumed run.
    CheckpointMismatch {
        /// Which aspect disagreed with the current run.
        what: &'static str,
    },
    /// A filesystem operation failed.
    Io {
        /// The underlying I/O error, stringified.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Privacy(e) => write!(f, "privacy error: {e}"),
            CoreError::BadConfig { name, expected } => {
                write!(f, "bad trainer config: {name} must be {expected}")
            }
            CoreError::CheckpointCorrupt { what } => {
                write!(f, "corrupt checkpoint: {what}")
            }
            CoreError::CheckpointMismatch { what } => {
                write!(f, "checkpoint/config mismatch: {what}")
            }
            CoreError::Io { message } => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<PrivacyError> for CoreError {
    fn from(e: PrivacyError) -> Self {
        CoreError::Privacy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let d: CoreError = DataError::UnknownUser { user: 1 }.into();
        assert!(d.to_string().contains("data error"));
        let m: CoreError = ModelError::NonFinite { at: "x" }.into();
        assert!(m.to_string().contains("model error"));
        let p: CoreError = PrivacyError::BudgetExhausted {
            spent: 2.0,
            budget: 1.0,
        }
        .into();
        assert!(p.to_string().contains("privacy error"));
        let c = CoreError::BadConfig {
            name: "lambda",
            expected: ">= 1",
        };
        assert!(c.to_string().contains("lambda"));
    }
}
