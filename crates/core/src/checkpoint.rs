//! Crash-safe training checkpoints (`PLPC` format).
//!
//! A [`TrainingCheckpoint`] captures everything a private training run
//! needs to resume bit-identically after a crash: the model parameters
//! (reusing the `PLPM` snapshot encoding), the server-optimizer state
//! (including Adam's moment estimates), the auditable privacy ledger, the
//! run seed and the number of completed steps.
//!
//! Integrity and safety properties:
//! * **Versioned**: a magic/version header rejects foreign or future files.
//! * **Config-fingerprinted**: the header carries a fingerprint of the
//!   hyper-parameters (and vocabulary size) that produced it; a resumed
//!   run refuses to start under a different configuration, because mixing
//!   configurations would silently invalidate both the model and the
//!   privacy accounting.
//! * **CRC-terminated**: a CRC-32 footer over the whole payload detects
//!   truncated or bit-flipped files before any field is trusted.
//! * **Atomically written**: [`save_checkpoint`] writes to a temporary
//!   file, fsyncs it, then renames over the destination, so a crash
//!   mid-write never destroys the previous good checkpoint.
//!
//! The privacy ledger inside the checkpoint is the source of truth for ε:
//! resuming rebuilds the moments accountant from the ledger entries
//! rather than trusting any cached ε value.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use plp_data::frame::{checked_frame_len, crc32};
use plp_model::optimizer::{ServerAdam, ServerSgd};
use plp_model::params::ModelParams;
use plp_model::snapshot;
use plp_privacy::accountant::LedgerEntry;
use plp_privacy::PrivacyLedger;

use crate::config::Hyperparameters;
use crate::error::CoreError;

const MAGIC: &[u8; 4] = b"PLPC";
/// Format version 3: the linalg reduction kernels run eight accumulator
/// lanes (see `plp_linalg::ops`) instead of version 2's four, which changes
/// the floating-point reduction order and thus every trained bit stream.
/// Version 2 itself replaced version 1's single sequential noise sampler
/// with counter-based per-row streams. A checkpoint from either older
/// version would resume onto a different trajectory, so both are refused
/// outright with explanatory errors.
const VERSION: u8 = 3;

/// Version of the noise-RNG scheme, folded into [`config_fingerprint`]:
/// any future change to how per-step noise is derived (stream seeding,
/// domains, bias chunking) must bump this so old checkpoints cannot
/// silently resume onto a different noise trajectory.
pub const RNG_SCHEME_VERSION: u64 = 2;

/// Version of the dense-kernel reduction scheme, folded into
/// [`config_fingerprint`] exactly like [`RNG_SCHEME_VERSION`]: the unrolled
/// lane count of `plp_linalg::ops` fixes the floating-point reduction order
/// of every dot product and norm, so changing it (scheme 1 = four lanes,
/// scheme 2 = eight lanes) forks the bit stream of every trained model.
/// Any future kernel-order change must bump this so old checkpoints cannot
/// silently resume under a different reduction order.
pub const KERNEL_SCHEME_VERSION: u64 = 2;

/// Server-optimizer state as stored in a checkpoint.
// A checkpoint holds exactly one of these, so the Sgd/Adam size gap is
// irrelevant; boxing the moment tensors would only complicate the codec.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ServerState {
    /// Plain averaging server (stateless beyond its rate).
    Sgd {
        /// Server learning rate.
        learning_rate: f64,
    },
    /// DP-Adam with its full moment state.
    Adam {
        /// Step size α.
        learning_rate: f64,
        /// First-moment decay β₁.
        beta1: f64,
        /// Second-moment decay β₂.
        beta2: f64,
        /// Numerical-stability constant ε.
        eps: f64,
        /// Steps taken (drives bias correction).
        t: u64,
        /// First-moment estimate.
        m: ModelParams,
        /// Second-moment estimate.
        v: ModelParams,
    },
}

impl ServerState {
    /// Captures the state of a live optimizer.
    pub fn of_sgd(sgd: &ServerSgd) -> Self {
        ServerState::Sgd {
            learning_rate: sgd.learning_rate,
        }
    }

    /// Captures the state of a live Adam optimizer.
    pub fn of_adam(adam: &ServerAdam) -> Self {
        let (t, m, v) = adam.state();
        ServerState::Adam {
            learning_rate: adam.learning_rate,
            beta1: adam.beta1,
            beta2: adam.beta2,
            eps: adam.eps,
            t,
            m: m.clone(),
            v: v.clone(),
        }
    }
}

/// Everything needed to resume a private training run bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingCheckpoint {
    /// Fingerprint of the configuration that produced this checkpoint
    /// (see [`config_fingerprint`]).
    pub fingerprint: u64,
    /// The run's base seed; per-step randomness derives from
    /// `(run_seed, step)`, which is what makes resumption bit-identical.
    pub run_seed: u64,
    /// Completed (and privacy-accounted) steps.
    pub step: u64,
    /// Model parameters after `step` steps.
    pub params: ModelParams,
    /// Server-optimizer state after `step` steps.
    pub server: ServerState,
    /// The auditable privacy ledger — the source of truth for ε.
    pub ledger: PrivacyLedger,
}

/// Fingerprints a training configuration: FNV-1a 64 over the canonical
/// JSON encoding of the hyper-parameters plus the vocabulary size, the
/// noise-RNG scheme version and the dense-kernel scheme version. Any change
/// to one of these yields a different fingerprint, so checkpoints cannot
/// silently resume under mismatched settings.
///
/// `threads` is deliberately normalised out: every phase of the trainer is
/// bit-identical across thread counts (strided partitions with ordered
/// reductions, counter-based noise streams, element-wise server updates),
/// so a run checkpointed at one thread count may resume at another and
/// stay on the exact same trajectory.
///
/// # Errors
/// Propagates (theoretical) serialization failures as [`CoreError::Io`].
pub fn config_fingerprint(hp: &Hyperparameters, vocab_size: usize) -> Result<u64, CoreError> {
    let mut canonical_hp = hp.clone();
    canonical_hp.threads = 1;
    let canonical = serde_json::to_string(&canonical_hp).map_err(|e| CoreError::Io {
        message: e.to_string(),
    })?;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(canonical.as_bytes());
    eat(&(vocab_size as u64).to_le_bytes());
    eat(&RNG_SCHEME_VERSION.to_le_bytes());
    eat(&KERNEL_SCHEME_VERSION.to_le_bytes());
    Ok(h)
}

fn put_blob(buf: &mut BytesMut, blob: &Bytes) {
    buf.put_u64_le(blob.len() as u64);
    buf.put_slice(blob.as_ref());
}

fn get_blob(data: &mut Bytes) -> Result<Bytes, CoreError> {
    if data.remaining() < 8 {
        return Err(CoreError::CheckpointCorrupt {
            what: "truncated blob header",
        });
    }
    let len = data.get_u64_le();
    // Shared frame ceiling: a garbled blob length fails explicitly instead
    // of driving a huge slice request.
    let len = checked_frame_len(len).ok_or(CoreError::CheckpointCorrupt {
        what: "blob length over max frame size",
    })?;
    if data.remaining() < len {
        return Err(CoreError::CheckpointCorrupt {
            what: "truncated blob body",
        });
    }
    let blob = data.slice(..len);
    *data = data.slice(len..);
    Ok(blob)
}

/// Serializes a checkpoint to its `PLPC` binary form (CRC footer
/// included).
pub fn encode_checkpoint(ckpt: &TrainingCheckpoint) -> Bytes {
    let params_blob = snapshot::encode_params(&ckpt.params);
    let mut buf = BytesMut::with_capacity(64 + params_blob.len() * 3);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(ckpt.fingerprint);
    buf.put_u64_le(ckpt.run_seed);
    buf.put_u64_le(ckpt.step);
    put_blob(&mut buf, &params_blob);
    match &ckpt.server {
        ServerState::Sgd { learning_rate } => {
            buf.put_u8(0);
            buf.put_f64_le(*learning_rate);
        }
        ServerState::Adam {
            learning_rate,
            beta1,
            beta2,
            eps,
            t,
            m,
            v,
        } => {
            buf.put_u8(1);
            buf.put_f64_le(*learning_rate);
            buf.put_f64_le(*beta1);
            buf.put_f64_le(*beta2);
            buf.put_f64_le(*eps);
            buf.put_u64_le(*t);
            put_blob(&mut buf, &snapshot::encode_params(m));
            put_blob(&mut buf, &snapshot::encode_params(v));
        }
    }
    let entries = ckpt.ledger.entries();
    buf.put_u32_le(entries.len() as u32);
    for e in entries {
        buf.put_f64_le(e.q);
        buf.put_f64_le(e.noise_multiplier);
        buf.put_u64_le(e.steps);
    }
    let body = buf.freeze();
    let mut with_crc = BytesMut::with_capacity(body.len() + 4);
    with_crc.put_slice(body.as_ref());
    with_crc.put_u32_le(crc32(body.as_ref()));
    with_crc.freeze()
}

fn get_f64(data: &mut Bytes, what: &'static str) -> Result<f64, CoreError> {
    if data.remaining() < 8 {
        return Err(CoreError::CheckpointCorrupt { what });
    }
    Ok(data.get_f64_le())
}

/// Deserializes and integrity-checks a `PLPC` checkpoint.
///
/// # Errors
/// [`CoreError::CheckpointCorrupt`] on any truncation, bad magic/version,
/// CRC mismatch, malformed tensor, invalid ledger entry, or a step count
/// disagreeing with the ledger.
pub fn decode_checkpoint(data: Bytes) -> Result<TrainingCheckpoint, CoreError> {
    if data.len() < 4 + 1 + 24 + 4 {
        return Err(CoreError::CheckpointCorrupt {
            what: "file shorter than a header",
        });
    }
    let body = data.slice(..data.len() - 4);
    let mut footer = data.slice(data.len() - 4..);
    if footer.get_u32_le() != crc32(body.as_ref()) {
        return Err(CoreError::CheckpointCorrupt {
            what: "CRC mismatch",
        });
    }
    let mut data = body;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CoreError::CheckpointCorrupt { what: "bad magic" });
    }
    match data.get_u8() {
        VERSION => {}
        1 => {
            // A v1 file is structurally readable but semantically dead: its
            // remaining steps were destined for the sequential-noise RNG
            // scheme, which the counter-based streams replaced. Resuming it
            // would fork the noise trajectory, so it gets a distinct error.
            return Err(CoreError::CheckpointCorrupt {
                what: "version 1 checkpoint (sequential-noise RNG scheme) cannot resume \
                       under counter-based noise streams; restart the run from scratch",
            });
        }
        2 => {
            // Same situation for v2: its parameters were trained under the
            // four-lane kernel reduction order, so every dot product of the
            // remaining steps would round differently under the eight-lane
            // kernels. Resuming would fork the bit stream.
            return Err(CoreError::CheckpointCorrupt {
                what: "version 2 checkpoint (four-lane kernel scheme) cannot resume \
                       under eight-lane reduction kernels; restart the run from scratch",
            });
        }
        _ => {
            return Err(CoreError::CheckpointCorrupt {
                what: "unsupported version",
            });
        }
    }
    let fingerprint = data.get_u64_le();
    let run_seed = data.get_u64_le();
    let step = data.get_u64_le();
    let params = snapshot::decode_params(get_blob(&mut data)?).map_err(|_| {
        CoreError::CheckpointCorrupt {
            what: "malformed parameter snapshot",
        }
    })?;
    if data.remaining() < 1 {
        return Err(CoreError::CheckpointCorrupt {
            what: "missing server tag",
        });
    }
    let server = match data.get_u8() {
        0 => ServerState::Sgd {
            learning_rate: get_f64(&mut data, "truncated sgd state")?,
        },
        1 => {
            let learning_rate = get_f64(&mut data, "truncated adam state")?;
            let beta1 = get_f64(&mut data, "truncated adam state")?;
            let beta2 = get_f64(&mut data, "truncated adam state")?;
            let eps = get_f64(&mut data, "truncated adam state")?;
            if data.remaining() < 8 {
                return Err(CoreError::CheckpointCorrupt {
                    what: "truncated adam state",
                });
            }
            let t = data.get_u64_le();
            let m = snapshot::decode_params(get_blob(&mut data)?).map_err(|_| {
                CoreError::CheckpointCorrupt {
                    what: "malformed adam m",
                }
            })?;
            let v = snapshot::decode_params(get_blob(&mut data)?).map_err(|_| {
                CoreError::CheckpointCorrupt {
                    what: "malformed adam v",
                }
            })?;
            ServerState::Adam {
                learning_rate,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            }
        }
        _ => {
            return Err(CoreError::CheckpointCorrupt {
                what: "unknown server tag",
            })
        }
    };
    if data.remaining() < 4 {
        return Err(CoreError::CheckpointCorrupt {
            what: "truncated ledger header",
        });
    }
    let n = data.get_u32_le() as usize;
    if data.remaining() != n * 24 {
        return Err(CoreError::CheckpointCorrupt {
            what: "ledger length mismatch",
        });
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(LedgerEntry {
            q: data.get_f64_le(),
            noise_multiplier: data.get_f64_le(),
            steps: data.get_u64_le(),
        });
    }
    let ledger =
        PrivacyLedger::from_entries(entries).map_err(|_| CoreError::CheckpointCorrupt {
            what: "invalid ledger entry",
        })?;
    if ledger.total_steps() != step {
        return Err(CoreError::CheckpointCorrupt {
            what: "step count disagrees with ledger",
        });
    }
    Ok(TrainingCheckpoint {
        fingerprint,
        run_seed,
        step,
        params,
        server,
        ledger,
    })
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the destination, then best-effort directory fsync.
///
/// # Errors
/// [`CoreError::Io`] on any filesystem failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CoreError> {
    let io = |e: std::io::Error| CoreError::Io {
        message: e.to_string(),
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    fs::rename(&tmp, path).map_err(io)?;
    // Persisting the rename itself needs a directory fsync; not every
    // platform supports opening a directory, so this part is best-effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Atomically writes a checkpoint to `path`.
///
/// # Errors
/// [`CoreError::Io`] on filesystem failures.
pub fn save_checkpoint(ckpt: &TrainingCheckpoint, path: &Path) -> Result<(), CoreError> {
    write_atomic(path, encode_checkpoint(ckpt).as_ref())
}

/// Reads and integrity-checks a checkpoint from `path`.
///
/// # Errors
/// [`CoreError::Io`] on filesystem failures, [`CoreError::CheckpointCorrupt`]
/// on a damaged file.
pub fn load_checkpoint(path: &Path) -> Result<TrainingCheckpoint, CoreError> {
    let data = fs::read(path).map_err(|e| CoreError::Io {
        message: e.to_string(),
    })?;
    decode_checkpoint(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_checkpoint(adam: bool) -> TrainingCheckpoint {
        let mut rng = StdRng::seed_from_u64(13);
        let params = ModelParams::init(&mut rng, 9, 4).unwrap();
        let server = if adam {
            let mut p = params.clone();
            let mut opt = ServerAdam::new(&params, 0.01).unwrap();
            let mut dir = ModelParams::zeros(9, 4);
            dir.bias[1] = 0.125;
            opt.step(&mut p, &dir).unwrap();
            ServerState::of_adam(&opt)
        } else {
            ServerState::of_sgd(&ServerSgd::new(0.5).unwrap())
        };
        let mut ledger = PrivacyLedger::new();
        for _ in 0..6 {
            ledger.track(0.06, 2.5).unwrap();
        }
        ledger.track(0.08, 2.5).unwrap();
        TrainingCheckpoint {
            fingerprint: 0xDEAD_BEEF_F00D_CAFE,
            run_seed: 42,
            step: 7,
            params,
            server,
            ledger,
        }
    }

    #[test]
    fn round_trip_preserves_every_field() {
        for adam in [false, true] {
            let ckpt = sample_checkpoint(adam);
            let back = decode_checkpoint(encode_checkpoint(&ckpt)).unwrap();
            assert_eq!(back, ckpt);
        }
    }

    #[test]
    fn corruption_is_always_detected() {
        let ckpt = sample_checkpoint(true);
        let bytes = encode_checkpoint(&ckpt);
        // Truncation at every plausible boundary.
        for cut in [0, 3, 8, 24, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_checkpoint(bytes.slice(..cut)).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }
        // A single flipped bit anywhere trips the CRC.
        for at in [
            0usize,
            4,
            20,
            bytes.len() / 3,
            bytes.len() - 5,
            bytes.len() - 1,
        ] {
            let mut raw = bytes.to_vec();
            raw[at] ^= 0x10;
            assert!(
                decode_checkpoint(Bytes::from(raw)).is_err(),
                "bit flip at {at}"
            );
        }
    }

    #[test]
    fn rejects_wrong_magic_and_version_behind_valid_crc() {
        let ckpt = sample_checkpoint(false);
        let bytes = encode_checkpoint(&ckpt);
        // Re-seal the CRC after tampering so only the semantic check trips.
        let reseal = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut raw = bytes.to_vec();
            raw.truncate(raw.len() - 4);
            mutate(&mut raw);
            let crc = crc32(&raw);
            raw.extend_from_slice(&crc.to_le_bytes());
            decode_checkpoint(Bytes::from(raw))
        };
        assert!(matches!(
            reseal(&|raw| raw[0] = b'X'),
            Err(CoreError::CheckpointCorrupt { what: "bad magic" })
        ));
        assert!(matches!(
            reseal(&|raw| raw[4] = 99),
            Err(CoreError::CheckpointCorrupt {
                what: "unsupported version"
            })
        ));
        // A v1 file (pre counter-based noise streams) gets its own message
        // explaining *why* it cannot resume, not a generic version error.
        let v1 = reseal(&|raw| raw[4] = 1);
        match v1 {
            Err(CoreError::CheckpointCorrupt { what }) => {
                assert!(what.contains("version 1"), "got: {what}");
                assert!(what.contains("counter-based"), "got: {what}");
            }
            other => panic!("v1 checkpoint must be refused, got {other:?}"),
        }
        // Likewise v2 (four-lane kernel reduction order): refused with a
        // restart-from-scratch explanation, not a generic version error.
        let v2 = reseal(&|raw| raw[4] = 2);
        match v2 {
            Err(CoreError::CheckpointCorrupt { what }) => {
                assert!(what.contains("version 2"), "got: {what}");
                assert!(what.contains("four-lane"), "got: {what}");
                assert!(what.contains("restart"), "got: {what}");
            }
            other => panic!("v2 checkpoint must be refused, got {other:?}"),
        }
        // Step count disagreeing with the ledger is rejected too.
        assert!(matches!(
            reseal(&|raw| raw[21] = 200),
            Err(CoreError::CheckpointCorrupt {
                what: "step count disagrees with ledger"
            })
        ));
    }

    #[test]
    fn fingerprint_tracks_config_and_vocab() {
        let hp = Hyperparameters::default();
        let a = config_fingerprint(&hp, 100).unwrap();
        assert_eq!(
            a,
            config_fingerprint(&hp, 100).unwrap(),
            "fingerprint is stable"
        );
        assert_ne!(a, config_fingerprint(&hp, 101).unwrap(), "vocab matters");
        let mut hp2 = hp.clone();
        hp2.noise_multiplier += 0.1;
        assert_ne!(a, config_fingerprint(&hp2, 100).unwrap(), "σ matters");
        let mut hp3 = hp;
        hp3.grouping_factor += 1;
        assert_ne!(a, config_fingerprint(&hp3, 100).unwrap(), "λ matters");
    }

    #[test]
    fn fingerprint_ignores_thread_count() {
        // Every trainer phase is bit-identical across thread counts, so a
        // checkpoint taken at threads=1 must resume at threads=8 (and vice
        // versa) without tripping the configuration check.
        let hp = Hyperparameters::default();
        let a = config_fingerprint(&hp, 100).unwrap();
        // 0 is the auto mode (resolve to available_parallelism); it must be
        // just as fingerprint-neutral as any explicit count.
        for threads in [0usize, 1, 2, 4, 8, 32] {
            let mut hp2 = hp.clone();
            hp2.threads = threads;
            assert_eq!(
                a,
                config_fingerprint(&hp2, 100).unwrap(),
                "threads={threads} must not change the fingerprint"
            );
        }
    }

    #[test]
    fn atomic_save_and_load() {
        let dir = std::env::temp_dir().join("plp_checkpoint_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.plpc");
        let first = sample_checkpoint(false);
        save_checkpoint(&first, &path).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), first);
        // Overwriting is atomic: the new checkpoint replaces the old one
        // and no temp file survives.
        let second = sample_checkpoint(true);
        save_checkpoint(&second, &path).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), second);
        assert!(
            !dir.join("run.plpc.tmp").exists(),
            "temp file must not linger"
        );
        assert!(load_checkpoint(&dir.join("absent.plpc")).is_err());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
