//! Counter-based, thread-invariant noise for Algorithm 1's Gaussian sum
//! query (line 9).
//!
//! The sequential trainer drew the whole `N(0, σ²C²ω²I)` perturbation from
//! one RNG stream, which forced the noise phase onto a single thread: the
//! k-th variate depended on the k−1 draws before it. Here the noise is
//! *counter-based* instead: each step derives a 64-bit noise seed from
//! `(run_seed, step)`, and every parameter row — embedding row i, context
//! row i, bias chunk j — gets its own `GaussianStream` seeded from
//! `(noise_seed, domain, row index)`. A row's noise depends only on those
//! three values, so any partition of the rows across worker threads
//! produces bit-identical output, and resume at a different thread count
//! stays on the same trajectory.
//!
//! Per-row seeding does not change the mechanism: every coordinate still
//! receives an independent N(0, σ²C²ω²) draw (streams are independent
//! across rows and i.i.d. within a row), so the sensitivity analysis and
//! the moments accounting are exactly those of the sequential sampler.

use plp_linalg::ops;
use plp_linalg::sample::mix64;
use plp_model::params::ModelParams;
use plp_privacy::mechanism::GaussianMechanism;

/// Stream domain of the embedding matrix `W`.
pub const DOMAIN_EMBEDDING: u64 = 0;
/// Stream domain of the context matrix `W′`.
pub const DOMAIN_CONTEXT: u64 = 1;
/// Stream domain of the bias vector `B′`.
pub const DOMAIN_BIAS: u64 = 2;

/// The bias vector is chunked into pseudo-rows of this many elements so it
/// partitions across workers like the matrices do. Part of the noise
/// trajectory: changing it changes which stream each bias element draws
/// from (covered by the checkpoint RNG-scheme version).
pub const BIAS_CHUNK: usize = 64;

/// Domain-separation salt for [`step_noise_seed`], keeping the noise seed
/// disjoint from the `step_rng` seed derivation (`mix64(run_seed ^
/// mix64(step))`) that drives sampling and grouping.
const NOISE_SEED_SALT: u64 = 0x4E4F_4953_4553_4544; // "NOISESED"

/// The 64-bit noise seed of `step` under `run_seed`. Depends only on the
/// pair, so step `k`'s noise is the same whether or not steps `1..k` ran in
/// this process — the resume contract extended to the noise phase.
pub fn step_noise_seed(run_seed: u64, step: u64) -> u64 {
    mix64(run_seed ^ NOISE_SEED_SALT ^ mix64(step))
}

/// One worker's share of a tensor slab: a contiguous row range.
struct NoiseJob<'a> {
    data: &'a mut [f64],
    row_len: usize,
    domain: u64,
    first_row: u64,
}

/// Splits `slab` (rows of `row_len`, the last possibly short) into at most
/// `parts` contiguous row ranges, recording each range's absolute first
/// row so its per-row streams are independent of the split.
fn push_row_jobs<'a>(
    mut slab: &'a mut [f64],
    row_len: usize,
    domain: u64,
    parts: usize,
    out: &mut Vec<NoiseJob<'a>>,
) {
    let rows = slab.len().div_ceil(row_len.max(1));
    let rows_per_part = rows.div_ceil(parts.max(1)).max(1);
    let mut first_row = 0u64;
    while !slab.is_empty() {
        let take = (rows_per_part * row_len).min(slab.len());
        let (head, tail) = slab.split_at_mut(take);
        out.push(NoiseJob {
            data: head,
            row_len,
            domain,
            first_row,
        });
        first_row += rows_per_part as u64;
        slab = tail;
    }
}

/// Perturbs `aggregate` with the mechanism's `N(0, (σC)²I)` noise and then
/// scales it by `scale_by` (the fixed-denominator average), fanning the
/// per-row work over up to `threads` crossbeam-scoped workers.
///
/// Bit-identical for every `threads` value: each row's noise comes from its
/// own counter-seeded stream (see the module docs) and both the noise add
/// and the scale are element-wise, so neither the partition nor the
/// execution order can change a single bit. `threads ≤ 1` runs inline
/// without spawning.
pub fn perturb_and_scale_threaded(
    aggregate: &mut ModelParams,
    mechanism: &GaussianMechanism,
    noise_seed: u64,
    scale_by: f64,
    threads: usize,
) {
    let threads = threads.max(1);
    let mut jobs = Vec::new();
    let domains = [DOMAIN_EMBEDDING, DOMAIN_CONTEXT, DOMAIN_BIAS];
    for ((slab, row_len), domain) in aggregate.row_slabs_mut(BIAS_CHUNK).into_iter().zip(domains) {
        push_row_jobs(slab, row_len, domain, threads, &mut jobs);
    }
    let run = |job: NoiseJob<'_>, scratch: &mut Vec<f64>| {
        if scratch.len() < job.row_len {
            scratch.resize(job.row_len, 0.0);
        }
        mechanism.perturb_rows(
            noise_seed,
            job.domain,
            job.row_len,
            job.first_row,
            job.data,
            scratch,
        );
        ops::scale(scale_by, job.data);
    };
    if threads <= 1 || jobs.len() <= 1 {
        let mut scratch = Vec::new();
        for job in jobs {
            run(job, &mut scratch);
        }
        return;
    }
    let workers = threads.min(jobs.len());
    let mut buckets: Vec<Vec<NoiseJob<'_>>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        buckets[i % workers].push(job);
    }
    crossbeam::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move |_| {
                    let mut scratch = Vec::new();
                    for job in bucket {
                        run(job, &mut scratch);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("noise worker panicked");
        }
    })
    .expect("noise thread scope");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ragged(vocab: usize, dim: usize) -> ModelParams {
        let mut p = ModelParams::zeros(vocab, dim);
        for (i, x) in p.embedding.as_mut_slice().iter_mut().enumerate() {
            *x = (i as f64 * 0.31).sin();
        }
        for (i, x) in p.context.as_mut_slice().iter_mut().enumerate() {
            *x = (i as f64 * 0.17).cos();
        }
        for (i, x) in p.bias.iter_mut().enumerate() {
            *x = i as f64 * 0.02 - 1.0;
        }
        p
    }

    /// Sequential reference: one `perturb_rows` call per whole tensor slab,
    /// then the scale — no partitioning at all.
    fn sequential_reference(
        base: &ModelParams,
        mechanism: &GaussianMechanism,
        noise_seed: u64,
        scale_by: f64,
    ) -> ModelParams {
        let mut p = base.clone();
        let dim = p.dim();
        let mut scratch = vec![0.0; dim.max(BIAS_CHUNK)];
        mechanism.perturb_rows(
            noise_seed,
            DOMAIN_EMBEDDING,
            dim,
            0,
            p.embedding.as_mut_slice(),
            &mut scratch,
        );
        mechanism.perturb_rows(
            noise_seed,
            DOMAIN_CONTEXT,
            dim,
            0,
            p.context.as_mut_slice(),
            &mut scratch,
        );
        mechanism.perturb_rows(
            noise_seed,
            DOMAIN_BIAS,
            BIAS_CHUNK,
            0,
            &mut p.bias,
            &mut scratch,
        );
        ops::scale(scale_by, p.embedding.as_mut_slice());
        ops::scale(scale_by, p.context.as_mut_slice());
        ops::scale(scale_by, &mut p.bias);
        p
    }

    fn bits_equal(a: &ModelParams, b: &ModelParams) -> bool {
        let eq = |x: &[f64], y: &[f64]| x.iter().zip(y).all(|(u, v)| u.to_bits() == v.to_bits());
        eq(a.embedding.as_slice(), b.embedding.as_slice())
            && eq(a.context.as_slice(), b.context.as_slice())
            && eq(&a.bias, &b.bias)
    }

    #[test]
    fn threaded_noise_matches_sequential_reference() {
        let base = ragged(137, 9); // vocab not divisible by BIAS_CHUNK
        let mechanism = GaussianMechanism::new(1.1, 0.75).unwrap();
        let seed = step_noise_seed(0xFEED, 17);
        let want = sequential_reference(&base, &mechanism, seed, 0.125);
        for threads in [1usize, 2, 4, 8] {
            let mut got = base.clone();
            perturb_and_scale_threaded(&mut got, &mechanism, seed, 0.125, threads);
            assert!(bits_equal(&got, &want), "threads={threads}");
        }
    }

    #[test]
    fn step_noise_seed_is_disjoint_across_steps_and_seeds() {
        assert_ne!(step_noise_seed(1, 1), step_noise_seed(1, 2));
        assert_ne!(step_noise_seed(1, 1), step_noise_seed(2, 1));
        // Distinct from the sampling/grouping RNG seed of the same step.
        assert_ne!(step_noise_seed(1, 1), mix64(1 ^ mix64(1)));
    }

    proptest! {
        /// Partition invariance over arbitrary shapes and thread counts —
        /// any row-range split must reproduce the sequential bits.
        #[test]
        fn noise_is_partition_invariant(
            vocab in 1usize..200,
            dim in 1usize..12,
            threads in 1usize..9,
            seed in 0u64..1_000_000_000,
        ) {
            let base = ragged(vocab, dim);
            let mechanism = GaussianMechanism::new(2.0, 0.5).unwrap();
            let want = sequential_reference(&base, &mechanism, seed, 0.25);
            let mut got = base.clone();
            perturb_and_scale_threaded(&mut got, &mechanism, seed, 0.25, threads);
            prop_assert!(bits_equal(&got, &want), "threads={threads}");
        }
    }
}
