//! Training and serving telemetry: per-step observations, run summaries
//! and the serving-layer counters reported by `plp-serve`.

use serde::{Deserialize, Serialize};

/// What one private step observed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepTelemetry {
    /// 1-based step index.
    pub step: u64,
    /// Users drawn by the Poisson sampler.
    pub sampled_users: usize,
    /// Buckets formed (`|H|`).
    pub buckets: usize,
    /// Buckets dropped from the Gaussian sum this step (non-finite delta
    /// or a panicking bucket worker). Dropping never increases the query's
    /// sensitivity, so the step's DP accounting is unaffected.
    pub skipped_buckets: usize,
    /// Mean local training loss across buckets.
    pub mean_local_loss: f64,
    /// Fraction of buckets whose delta hit the clip bound.
    pub clip_fraction: f64,
    /// Cumulative ε after this step.
    pub epsilon_spent: f64,
    /// Wall-clock time of the step in milliseconds.
    pub wall_ms: f64,
    /// Validation HR@10 measured at this step, if evaluation ran.
    pub validation_hr10: Option<f64>,
}

/// Summary of a finished private training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Private steps actually executed.
    pub steps: u64,
    /// ε spent at the stopping point.
    pub epsilon_spent: f64,
    /// δ of the guarantee.
    pub delta: f64,
    /// Total wall-clock milliseconds spent in the training loop.
    pub total_wall_ms: f64,
    /// Why training stopped.
    pub stop_reason: StopReason,
}

/// Why a private training loop terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The moments accountant hit the ε budget (Algorithm 1, line 12).
    BudgetExhausted,
    /// The configured `max_steps` cap was reached first.
    MaxSteps,
    /// Every bucket of a step was poisoned (non-finite delta or panicked
    /// worker): training cannot make progress and stops after accounting
    /// the aborted step conservatively.
    Diverged,
    /// The run was halted by its driver (e.g. a crash drill or scheduling
    /// preemption) before any other stop condition; it can be resumed from
    /// the latest checkpoint.
    Interrupted,
}

impl StopReason {
    /// Stable snake_case label used as the `reason` metric label on
    /// `plp_train_stop_total` and in log lines.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::BudgetExhausted => "budget_exhausted",
            StopReason::MaxSteps => "max_steps",
            StopReason::Diverged => "diverged",
            StopReason::Interrupted => "interrupted",
        }
    }
}

/// What a batch-serving engine observed over its lifetime: load, latency
/// percentiles and cache effectiveness (the serving counterpart of
/// [`StepTelemetry`], reported by the `plp-serve` engine).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeTelemetry {
    /// Recommendation queries answered (cache hits included).
    pub queries: u64,
    /// Scoring batches executed (cache hits never form a batch).
    pub batches: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that had to be scored.
    pub cache_misses: u64,
    /// Queries per **second** of engine wall time
    /// (`queries / (wall_ms / 1000)`); `0.0` before any traffic.
    pub qps: f64,
    /// Median per-query latency, in **milliseconds**. Derived from a
    /// bounded log-linear histogram, so it carries that histogram's
    /// ≤ one-bucket-width quantile error.
    pub p50_ms: f64,
    /// 95th-percentile per-query latency, in **milliseconds** (same
    /// histogram-derived error bound as `p50_ms`).
    pub p95_ms: f64,
    /// 99th-percentile per-query latency, in **milliseconds** (same
    /// histogram-derived error bound as `p50_ms`).
    pub p99_ms: f64,
    /// Total wall-clock time spent inside `serve` calls, in
    /// **milliseconds**.
    pub wall_ms: f64,
}

impl ServeTelemetry {
    /// Fraction of queries answered from the cache; `0.0` before any
    /// traffic.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_telemetry_hit_rate_and_serde() {
        let t = ServeTelemetry {
            queries: 100,
            batches: 4,
            cache_hits: 25,
            cache_misses: 75,
            qps: 1_000.0,
            p50_ms: 0.5,
            p95_ms: 1.5,
            p99_ms: 2.0,
            wall_ms: 100.0,
        };
        assert!((t.cache_hit_rate() - 0.25).abs() < 1e-12);
        let s = serde_json::to_string(&t).unwrap();
        let back: ServeTelemetry = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
        let empty = ServeTelemetry {
            queries: 0,
            cache_hits: 0,
            cache_misses: 0,
            batches: 0,
            qps: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            wall_ms: 0.0,
        };
        assert_eq!(empty.cache_hit_rate(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = StepTelemetry {
            step: 3,
            sampled_users: 12,
            buckets: 3,
            skipped_buckets: 1,
            mean_local_loss: 2.5,
            clip_fraction: 1.0,
            epsilon_spent: 0.4,
            wall_ms: 12.5,
            validation_hr10: Some(0.18),
        };
        let s = serde_json::to_string(&t).unwrap();
        let back: StepTelemetry = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);

        let r = RunSummary {
            steps: 100,
            epsilon_spent: 1.99,
            delta: 2e-4,
            total_wall_ms: 1234.0,
            stop_reason: StopReason::BudgetExhausted,
        };
        let s = serde_json::to_string(&r).unwrap();
        let back: RunSummary = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);
    }
}
