//! Hyper-parameters (Table 1 of the paper) with the §5.1 defaults.

use serde::{Deserialize, Serialize};

use plp_data::grouping::GroupingStrategy;
use plp_model::loss::Loss;
use plp_model::train::LocalSgdConfig;
use plp_privacy::PrivacyBudget;

use crate::error::CoreError;

/// Which optimiser the server applies to the noisy aggregated delta.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerOptimizer {
    /// `θ ← θ + lr · ĝ` (lr = 1 reproduces Algorithm 1, line 10 literally).
    Sgd {
        /// Server learning rate.
        learning_rate: f64,
    },
    /// DP-Adam over the noisy delta (the paper's choice, §5.1).
    Adam {
        /// Adam step size.
        learning_rate: f64,
    },
}

impl Default for ServerOptimizer {
    fn default() -> Self {
        // The paper's η = 0.06 maps to the *local* SGD rate here; the
        // server-side Adam step over the noisy aggregate uses a smaller
        // rate (calibrated empirically — larger values let the DP noise
        // random-walk the parameters out of the useful region, smaller
        // values freeze learning; see EXPERIMENTS.md).
        ServerOptimizer::Adam {
            learning_rate: 0.01,
        }
    }
}

/// All tunables of the system, named after Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hyperparameters {
    /// Embedding dimension `dim` (paper: 50).
    pub embedding_dim: usize,
    /// Symmetric context window `win` (paper: 2).
    pub context_window: usize,
    /// Batch size `b`/β (paper: 32).
    pub batch_size: usize,
    /// Negative samples `neg` (paper: 16).
    pub negative_samples: usize,
    /// Local SGD learning rate η (paper: 0.06).
    pub learning_rate: f64,
    /// User sampling probability `q` per step (paper default: 0.06).
    pub sampling_prob: f64,
    /// Noise scale σ (paper default: 2.5).
    pub noise_multiplier: f64,
    /// Overall clipping magnitude `C`; each tensor is clipped to `C/√3`
    /// (paper default: 0.5).
    pub clip_norm: f64,
    /// Grouping factor λ (paper default: 4).
    pub grouping_factor: usize,
    /// Data split factor ω (§4.2; the paper sets ω = 1).
    pub split_factor: usize,
    /// How users are packed into buckets.
    pub grouping_strategy: GroupingStrategyConfig,
    /// Privacy budget (ε, δ); δ defaults to the paper's 2·10⁻⁴.
    pub budget: PrivacyBudget,
    /// The training objective.
    pub loss: Loss,
    /// Server-side optimiser.
    pub server_optimizer: ServerOptimizer,
    /// Hard cap on private steps (safety net on top of the budget stop).
    pub max_steps: usize,
    /// Evaluate validation HR@10 every this many steps (0 = never).
    pub eval_every: usize,
    /// Worker threads for bucket updates (1 = sequential; results are
    /// identical either way because bucket RNGs are derived per bucket).
    ///
    /// `0` means *auto*: fan out over at most
    /// `std::thread::available_parallelism()` workers (see
    /// [`Hyperparameters::effective_threads`]). Oversubscribing a host —
    /// e.g. `threads: 4` on a single hardware thread — is strictly slower
    /// than sequential because the workers just time-slice one core, so
    /// auto is the right setting whenever the core count is unknown. Like
    /// every explicit thread count, auto is fingerprint-neutral: results
    /// are bit-identical for any resolved worker count.
    pub threads: usize,
}

/// Serde-friendly mirror of [`GroupingStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GroupingStrategyConfig {
    /// Random packing (the paper's default).
    #[default]
    Random,
    /// Balanced packing by record count.
    EqualFrequency,
}

impl From<GroupingStrategyConfig> for GroupingStrategy {
    fn from(c: GroupingStrategyConfig) -> Self {
        match c {
            GroupingStrategyConfig::Random => GroupingStrategy::Random,
            GroupingStrategyConfig::EqualFrequency => GroupingStrategy::EqualFrequency,
        }
    }
}

impl Default for Hyperparameters {
    fn default() -> Self {
        Hyperparameters {
            embedding_dim: 50,
            context_window: 2,
            batch_size: 32,
            negative_samples: 16,
            learning_rate: 0.06,
            sampling_prob: 0.06,
            noise_multiplier: 2.5,
            clip_norm: 0.5,
            grouping_factor: 4,
            split_factor: 1,
            grouping_strategy: GroupingStrategyConfig::Random,
            budget: PrivacyBudget {
                epsilon: 2.0,
                delta: 2e-4,
            },
            loss: Loss::SampledSoftmax,
            server_optimizer: ServerOptimizer::default(),
            max_steps: 10_000,
            eval_every: 0,
            threads: 1,
        }
    }
}

impl Hyperparameters {
    /// Validates every field's domain.
    ///
    /// # Errors
    /// Returns [`CoreError::BadConfig`] naming the first bad field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.embedding_dim == 0 {
            return Err(CoreError::BadConfig {
                name: "embedding_dim",
                expected: ">= 1",
            });
        }
        if self.context_window == 0 {
            return Err(CoreError::BadConfig {
                name: "context_window",
                expected: ">= 1",
            });
        }
        if self.batch_size == 0 {
            return Err(CoreError::BadConfig {
                name: "batch_size",
                expected: ">= 1",
            });
        }
        if self.negative_samples == 0 {
            return Err(CoreError::BadConfig {
                name: "negative_samples",
                expected: ">= 1",
            });
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(CoreError::BadConfig {
                name: "learning_rate",
                expected: "finite and > 0",
            });
        }
        // q = 0 samples nobody yet still spends budget every step; treat
        // it as a configuration bug rather than an expensive no-op.
        if !self.sampling_prob.is_finite() || self.sampling_prob <= 0.0 || self.sampling_prob > 1.0
        {
            return Err(CoreError::BadConfig {
                name: "sampling_prob",
                expected: "in (0, 1]",
            });
        }
        if !(self.noise_multiplier.is_finite() && self.noise_multiplier > 0.0) {
            return Err(CoreError::BadConfig {
                name: "noise_multiplier",
                expected: "finite and > 0",
            });
        }
        if !(self.clip_norm.is_finite() && self.clip_norm > 0.0) {
            return Err(CoreError::BadConfig {
                name: "clip_norm",
                expected: "finite and > 0",
            });
        }
        if self.grouping_factor == 0 {
            return Err(CoreError::BadConfig {
                name: "grouping_factor",
                expected: ">= 1",
            });
        }
        if self.split_factor == 0 {
            return Err(CoreError::BadConfig {
                name: "split_factor",
                expected: ">= 1",
            });
        }
        if self.max_steps == 0 {
            return Err(CoreError::BadConfig {
                name: "max_steps",
                expected: ">= 1",
            });
        }
        // threads == 0 is legal: it selects the auto mode resolved by
        // `effective_threads`, so there is no invalid thread count.
        let lr = match self.server_optimizer {
            ServerOptimizer::Sgd { learning_rate } | ServerOptimizer::Adam { learning_rate } => {
                learning_rate
            }
        };
        if !(lr.is_finite() && lr > 0.0) {
            return Err(CoreError::BadConfig {
                name: "server_optimizer.learning_rate",
                expected: "finite and > 0",
            });
        }
        Ok(())
    }

    /// Resolves the configured thread count to the worker fan-out actually
    /// used: `0` (auto) clamps to [`std::thread::available_parallelism`]
    /// (falling back to 1 if the host cannot report it); any explicit
    /// count is used as-is, oversubscribed or not. Always returns ≥ 1.
    ///
    /// The resolved count never appears in the checkpoint fingerprint —
    /// every trainer phase is bit-identical across thread counts — so the
    /// same run may resume under a different `available_parallelism`.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// The local-SGD slice of the configuration.
    pub fn local_sgd(&self) -> LocalSgdConfig {
        LocalSgdConfig {
            learning_rate: self.learning_rate,
            batch_size: self.batch_size,
            window: self.context_window,
            negatives: self.negative_samples,
            loss: self.loss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let h = Hyperparameters::default();
        assert_eq!(h.embedding_dim, 50);
        assert_eq!(h.context_window, 2);
        assert_eq!(h.batch_size, 32);
        assert_eq!(h.negative_samples, 16);
        assert_eq!(h.learning_rate, 0.06);
        assert_eq!(h.sampling_prob, 0.06);
        assert_eq!(h.noise_multiplier, 2.5);
        assert_eq!(h.clip_norm, 0.5);
        assert_eq!(h.grouping_factor, 4);
        assert_eq!(h.split_factor, 1);
        assert_eq!(h.budget.delta, 2e-4);
        assert!(h.validate().is_ok());
    }

    #[test]
    fn validation_rejects_each_bad_field() {
        let base = Hyperparameters::default();
        type Mutator = Box<dyn Fn(&mut Hyperparameters)>;
        let cases: Vec<Mutator> = vec![
            Box::new(|h| h.embedding_dim = 0),
            Box::new(|h| h.context_window = 0),
            Box::new(|h| h.batch_size = 0),
            Box::new(|h| h.negative_samples = 0),
            Box::new(|h| h.learning_rate = 0.0),
            Box::new(|h| h.sampling_prob = 1.5),
            Box::new(|h| h.sampling_prob = f64::NAN),
            Box::new(|h| h.noise_multiplier = 0.0),
            Box::new(|h| h.clip_norm = -1.0),
            Box::new(|h| h.grouping_factor = 0),
            Box::new(|h| h.sampling_prob = 0.0),
            Box::new(|h| h.sampling_prob = -0.1),
            Box::new(|h| h.noise_multiplier = -2.5),
            Box::new(|h| h.noise_multiplier = f64::INFINITY),
            Box::new(|h| h.clip_norm = 0.0),
            Box::new(|h| h.clip_norm = f64::NAN),
            Box::new(|h| h.split_factor = 0),
            Box::new(|h| h.max_steps = 0),
            Box::new(|h| h.server_optimizer = ServerOptimizer::Adam { learning_rate: 0.0 }),
        ];
        for (i, mutate) in cases.iter().enumerate() {
            let mut h = base.clone();
            mutate(&mut h);
            assert!(h.validate().is_err(), "case {i} should fail");
        }
    }

    #[test]
    fn validation_names_the_offending_privacy_bound() {
        let expect_name = |mutate: &dyn Fn(&mut Hyperparameters), name: &str| {
            let mut h = Hyperparameters::default();
            mutate(&mut h);
            match h.validate() {
                Err(CoreError::BadConfig { name: got, .. }) => {
                    assert_eq!(got, name, "wrong field blamed");
                }
                other => panic!("expected BadConfig for {name}, got {other:?}"),
            }
        };
        expect_name(&|h| h.noise_multiplier = 0.0, "noise_multiplier");
        expect_name(&|h| h.noise_multiplier = -1.0, "noise_multiplier");
        expect_name(&|h| h.sampling_prob = 0.0, "sampling_prob");
        expect_name(&|h| h.sampling_prob = 1.0 + 1e-12, "sampling_prob");
        expect_name(&|h| h.clip_norm = 0.0, "clip_norm");
        expect_name(&|h| h.clip_norm = -0.5, "clip_norm");
        expect_name(&|h| h.grouping_factor = 0, "grouping_factor");
        // The boundary values themselves are legal.
        let h = Hyperparameters {
            sampling_prob: 1.0,
            ..Hyperparameters::default()
        };
        assert!(h.validate().is_ok(), "q = 1 (sample everyone) is legal");
    }

    #[test]
    fn threads_zero_is_auto_and_valid() {
        let mut h = Hyperparameters {
            threads: 0,
            ..Hyperparameters::default()
        };
        assert!(h.validate().is_ok(), "threads = 0 selects auto mode");
        let resolved = h.effective_threads();
        assert!(resolved >= 1, "auto resolves to at least one worker");
        let avail = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(resolved, avail, "auto clamps to available_parallelism");
        // Explicit counts pass through untouched, even oversubscribed ones.
        h.threads = 7;
        assert_eq!(h.effective_threads(), 7);
    }

    #[test]
    fn local_sgd_slice_mirrors_fields() {
        let h = Hyperparameters::default();
        let l = h.local_sgd();
        assert_eq!(l.learning_rate, h.learning_rate);
        assert_eq!(l.batch_size, h.batch_size);
        assert_eq!(l.window, h.context_window);
        assert_eq!(l.negatives, h.negative_samples);
    }

    #[test]
    fn grouping_strategy_converts() {
        let r: GroupingStrategy = GroupingStrategyConfig::Random.into();
        assert_eq!(r, GroupingStrategy::Random);
        let e: GroupingStrategy = GroupingStrategyConfig::EqualFrequency.into();
        assert_eq!(e, GroupingStrategy::EqualFrequency);
    }

    #[test]
    fn serde_round_trip() {
        let h = Hyperparameters::default();
        let s = serde_json::to_string(&h).unwrap();
        let back: Hyperparameters = serde_json::from_str(&s).unwrap();
        assert_eq!(h, back);
    }
}
