//! Rényi-DP bounds for the subsampled Gaussian mechanism — the moments
//! accountant.
//!
//! Abadi et al. (2016) track, for each training step, the log-moments
//! `α_M(λ) = log E[exp(λ · privacy-loss)]` of the Gaussian mechanism applied
//! to a Poisson-subsampled batch. Log moments compose *additively* across
//! steps, and at the end convert to an (ε, δ) guarantee via
//!
//! ```text
//! ε(δ) = min_λ ( α_M(λ) + log(1/δ) ) / λ .
//! ```
//!
//! Equivalently, in Rényi-DP language (Mironov 2017): the RDP of order
//! `α = λ + 1` is `α_M(λ) / λ`, RDP composes additively, and
//! `ε = min_α rdp(α) + log(1/δ)/(α − 1)`.
//!
//! For integer moment order `λ` and sampling rate `q`, the Abadi et al.
//! upper bound on the log moment of one subsampled-Gaussian step is the
//! binomial expansion
//!
//! ```text
//! α(λ) ≤ log Σ_{k=0}^{λ+1} C(λ+1, k) (1−q)^{λ+1−k} q^k · exp(k(k−1) / 2σ²)
//! ```
//!
//! computed here entirely in log-space (log-binomials via `ln_gamma`,
//! combined with `log_sum_exp`) so that large orders do not overflow. This is
//! the same quantity TensorFlow-Privacy's accountant computes at integer
//! orders.

use serde::{Deserialize, Serialize};

use plp_linalg::ops::log_sum_exp;
use plp_linalg::stats::ln_gamma;

use crate::error::PrivacyError;

/// Default moment orders λ = 1..=255 (i.e. Rényi orders 2..=256).
///
/// The optimal order grows as ε shrinks or σ grows; 256 comfortably covers
/// every configuration in the paper (σ ≤ 3, ε ≥ 0.5).
pub const DEFAULT_MAX_MOMENT_ORDER: usize = 255;

/// `log C(n, k)` via log-gamma, exact to ~1e-12 for the orders used here.
fn log_binomial(n: usize, k: usize) -> f64 {
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Log-moment `α(λ)` of a single subsampled-Gaussian step with sampling rate
/// `q` and noise multiplier `sigma`, at integer moment order `lambda >= 1`.
///
/// Special cases: `q == 0` contributes nothing (returns 0); `q == 1` reduces
/// to the unamplified Gaussian log moment `λ(λ+1)/(2σ²)`.
pub fn log_moment_subsampled_gaussian(q: f64, sigma: f64, lambda: usize) -> f64 {
    debug_assert!(lambda >= 1);
    if q <= 0.0 {
        return 0.0;
    }
    let alpha = lambda + 1; // binomial expansion order
    if q >= 1.0 {
        // Unamplified Gaussian: E[exp(λ L)] with L ~ privacy loss of N(0, σ²).
        return (alpha * lambda) as f64 / (2.0 * sigma * sigma);
    }
    let log_q = q.ln();
    let log_1mq = (-q).ln_1p(); // ln(1 - q), stable for small q
    let mut terms = Vec::with_capacity(alpha + 1);
    for k in 0..=alpha {
        let t = log_binomial(alpha, k)
            + k as f64 * log_q
            + (alpha - k) as f64 * log_1mq
            + (k * k - k) as f64 / (2.0 * sigma * sigma);
        terms.push(t);
    }
    log_sum_exp(&terms)
}

/// A vector of accumulated log-moments over a fixed grid of integer orders.
///
/// `curve[i]` holds the total log moment at order `λ = i + 1`. Composition
/// across steps is element-wise addition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RdpCurve {
    log_moments: Vec<f64>,
}

impl RdpCurve {
    /// A zero curve (no privacy consumed) over orders `1..=max_order`.
    ///
    /// # Errors
    /// `max_order` must be at least 1.
    pub fn zero(max_order: usize) -> Result<Self, PrivacyError> {
        if max_order == 0 {
            return Err(PrivacyError::InvalidParameter {
                name: "max_order",
                value: 0.0,
                expected: ">= 1",
            });
        }
        Ok(RdpCurve {
            log_moments: vec![0.0; max_order],
        })
    }

    /// The curve of a single subsampled-Gaussian step.
    ///
    /// # Errors
    /// `q` must lie in `[0, 1]` and `sigma` must be finite and positive.
    pub fn subsampled_gaussian_step(
        q: f64,
        sigma: f64,
        max_order: usize,
    ) -> Result<Self, PrivacyError> {
        if !(0.0..=1.0).contains(&q) || !q.is_finite() {
            return Err(PrivacyError::InvalidParameter {
                name: "q",
                value: q,
                expected: "in [0, 1]",
            });
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "sigma",
                value: sigma,
                expected: "finite and > 0",
            });
        }
        let mut curve = RdpCurve::zero(max_order)?;
        for lambda in 1..=max_order {
            curve.log_moments[lambda - 1] = log_moment_subsampled_gaussian(q, sigma, lambda);
        }
        Ok(curve)
    }

    /// Number of tracked orders.
    pub fn max_order(&self) -> usize {
        self.log_moments.len()
    }

    /// The accumulated log moment at order `lambda` (1-based).
    pub fn log_moment(&self, lambda: usize) -> Option<f64> {
        if lambda == 0 {
            return None;
        }
        self.log_moments.get(lambda - 1).copied()
    }

    /// Element-wise addition: composes `other` (e.g. one more step) into
    /// this curve.
    ///
    /// # Errors
    /// The curves must track the same orders.
    pub fn compose(&mut self, other: &RdpCurve) -> Result<(), PrivacyError> {
        if self.log_moments.len() != other.log_moments.len() {
            return Err(PrivacyError::Unsatisfiable {
                reason: "cannot compose RDP curves over different order grids",
            });
        }
        for (a, b) in self.log_moments.iter_mut().zip(&other.log_moments) {
            *a += b;
        }
        Ok(())
    }

    /// Composes `steps` identical copies of `other` into this curve.
    ///
    /// # Errors
    /// The curves must track the same orders.
    pub fn compose_steps(&mut self, other: &RdpCurve, steps: u64) -> Result<(), PrivacyError> {
        if self.log_moments.len() != other.log_moments.len() {
            return Err(PrivacyError::Unsatisfiable {
                reason: "cannot compose RDP curves over different order grids",
            });
        }
        let s = steps as f64;
        for (a, b) in self.log_moments.iter_mut().zip(&other.log_moments) {
            *a += s * b;
        }
        Ok(())
    }

    /// Converts the accumulated log moments to the tightest ε for the given
    /// δ: `ε = min_λ (α(λ) + log(1/δ)) / λ` (Abadi et al., Theorem 2.2).
    ///
    /// # Errors
    /// `delta` must lie in `(0, 1)`.
    pub fn epsilon(&self, delta: f64) -> Result<f64, PrivacyError> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: delta,
                expected: "in (0, 1)",
            });
        }
        let log_inv_delta = (1.0 / delta).ln();
        let eps = self
            .log_moments
            .iter()
            .enumerate()
            .map(|(i, &a)| (a + log_inv_delta) / (i + 1) as f64)
            .fold(f64::INFINITY, f64::min);
        Ok(eps)
    }

    /// ε of `self` composed with one more `extra` curve, without
    /// materialising the composed curve.
    ///
    /// Bit-identical to `clone` + [`RdpCurve::compose`] + [`RdpCurve::epsilon`]:
    /// each order contributes `((a + b) + log(1/δ)) / λ`, the exact
    /// floating-point operation order of the three-call sequence, so the
    /// training loop's per-step budget peek can use this clone-free path
    /// while staying bitwise on the slow path's ε trajectory.
    ///
    /// # Errors
    /// The curves must track the same orders and `delta` must lie in
    /// `(0, 1)`.
    pub fn epsilon_composed_with(&self, extra: &RdpCurve, delta: f64) -> Result<f64, PrivacyError> {
        if self.log_moments.len() != extra.log_moments.len() {
            return Err(PrivacyError::Unsatisfiable {
                reason: "cannot compose RDP curves over different order grids",
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: delta,
                expected: "in (0, 1)",
            });
        }
        let log_inv_delta = (1.0 / delta).ln();
        let eps = self
            .log_moments
            .iter()
            .zip(&extra.log_moments)
            .enumerate()
            .map(|(i, (&a, &b))| ((a + b) + log_inv_delta) / (i + 1) as f64)
            .fold(f64::INFINITY, f64::min);
        Ok(eps)
    }

    /// The moment order achieving the minimum in [`RdpCurve::epsilon`].
    ///
    /// Useful diagnostics: if the optimal order sits at the grid edge, the
    /// grid should be enlarged.
    pub fn optimal_order(&self, delta: f64) -> Result<usize, PrivacyError> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: delta,
                expected: "in (0, 1)",
            });
        }
        let log_inv_delta = (1.0 / delta).ln();
        let (best, _) = self
            .log_moments
            .iter()
            .enumerate()
            .map(|(i, &a)| (i + 1, (a + log_inv_delta) / (i + 1) as f64))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("curve is non-empty by construction");
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_binomial_known_values() {
        assert!((log_binomial(5, 2) - 10.0f64.ln()).abs() < 1e-10);
        assert!((log_binomial(10, 0)).abs() < 1e-10);
        assert!((log_binomial(10, 10)).abs() < 1e-10);
    }

    #[test]
    fn q_one_reduces_to_pure_gaussian_rdp() {
        // For q = 1 the RDP of order α is exactly α / (2σ²):
        // log_moment(λ) = λ(λ+1)/(2σ²).
        let sigma = 2.0;
        for lambda in [1usize, 2, 5, 32] {
            let lm = log_moment_subsampled_gaussian(1.0, sigma, lambda);
            let expected = (lambda * (lambda + 1)) as f64 / (2.0 * sigma * sigma);
            assert!(
                (lm - expected).abs() < 1e-9,
                "lambda {lambda}: {lm} vs {expected}"
            );
        }
    }

    #[test]
    fn q_zero_consumes_nothing() {
        assert_eq!(log_moment_subsampled_gaussian(0.0, 1.0, 8), 0.0);
        // A zero curve's epsilon is the floor set by the conversion term
        // alone: min over lambda of ln(1/delta)/lambda = ln(1/delta)/max.
        let c = RdpCurve::subsampled_gaussian_step(0.0, 1.0, 32).unwrap();
        let expected = (1.0f64 / 1e-5).ln() / 32.0;
        assert!((c.epsilon(1e-5).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn log_moment_monotone_in_q_and_sigma() {
        let base = log_moment_subsampled_gaussian(0.05, 2.0, 16);
        assert!(
            log_moment_subsampled_gaussian(0.10, 2.0, 16) > base,
            "larger q leaks more"
        );
        assert!(
            log_moment_subsampled_gaussian(0.05, 3.0, 16) < base,
            "larger sigma leaks less"
        );
        assert!(
            log_moment_subsampled_gaussian(0.05, 2.0, 32) > base,
            "higher order is larger"
        );
    }

    #[test]
    fn subsampling_amplifies_privacy() {
        // The subsampled log moment must be far below the unamplified one.
        let sub = log_moment_subsampled_gaussian(0.01, 1.5, 8);
        let full = log_moment_subsampled_gaussian(1.0, 1.5, 8);
        assert!(sub < full / 10.0, "sub {sub} full {full}");
    }

    #[test]
    fn curve_composition_is_additive() {
        let step = RdpCurve::subsampled_gaussian_step(0.06, 2.5, 64).unwrap();
        let mut twice = RdpCurve::zero(64).unwrap();
        twice.compose(&step).unwrap();
        twice.compose(&step).unwrap();
        let mut bulk = RdpCurve::zero(64).unwrap();
        bulk.compose_steps(&step, 2).unwrap();
        for lambda in 1..=64 {
            let a = twice.log_moment(lambda).unwrap();
            let b = bulk.log_moment(lambda).unwrap();
            assert!((a - b).abs() < 1e-12);
            assert!((a - 2.0 * step.log_moment(lambda).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn compose_rejects_mismatched_grids() {
        let a = RdpCurve::zero(8).unwrap();
        let mut b = RdpCurve::zero(16).unwrap();
        assert!(b.compose(&a).is_err());
        assert!(b.compose_steps(&a, 3).is_err());
    }

    #[test]
    fn epsilon_grows_with_steps() {
        let step = RdpCurve::subsampled_gaussian_step(0.06, 2.5, 128).unwrap();
        let mut eps_prev = 0.0;
        for steps in [1u64, 10, 100, 1000] {
            let mut c = RdpCurve::zero(128).unwrap();
            c.compose_steps(&step, steps).unwrap();
            let eps = c.epsilon(2e-4).unwrap();
            assert!(eps > eps_prev, "eps must grow with steps");
            eps_prev = eps;
        }
    }

    #[test]
    fn epsilon_composed_with_is_bitwise_equal_to_clone_compose_epsilon() {
        let step = RdpCurve::subsampled_gaussian_step(0.06, 2.5, 255).unwrap();
        let mut total = RdpCurve::zero(255).unwrap();
        for _ in 0..300 {
            let want = {
                let mut peek = total.clone();
                peek.compose(&step).unwrap();
                peek.epsilon(2e-4).unwrap()
            };
            let got = total.epsilon_composed_with(&step, 2e-4).unwrap();
            assert_eq!(got.to_bits(), want.to_bits());
            total.compose(&step).unwrap();
        }
    }

    #[test]
    fn epsilon_composed_with_validates_inputs() {
        let a = RdpCurve::zero(8).unwrap();
        let b = RdpCurve::zero(16).unwrap();
        assert!(a.epsilon_composed_with(&b, 1e-5).is_err());
        assert!(a.epsilon_composed_with(&a, 0.0).is_err());
        assert!(a.epsilon_composed_with(&a, 1.0).is_err());
    }

    #[test]
    fn epsilon_matches_published_reference_point() {
        // Reference configuration from Abadi et al. / TF-Privacy docs:
        // q = 0.01, sigma = 4, T = 10000 steps, delta = 1e-5 => eps ~ 1.26.
        // Integer orders only, so allow a small slack above the fractional
        // optimum.
        let step = RdpCurve::subsampled_gaussian_step(0.01, 4.0, 255).unwrap();
        let mut c = RdpCurve::zero(255).unwrap();
        c.compose_steps(&step, 10_000).unwrap();
        let eps = c.epsilon(1e-5).unwrap();
        assert!(
            (1.15..1.40).contains(&eps),
            "eps {eps} outside the published band"
        );
    }

    #[test]
    fn moments_accountant_beats_naive_composition_by_orders_of_magnitude() {
        // Naive composition of T=1000 Gaussian releases each with
        // (eps_0, delta_0) grows linearly; the accountant grows ~sqrt(T).
        let q = 0.05;
        let sigma = 2.0;
        let steps = 1000u64;
        let step = RdpCurve::subsampled_gaussian_step(q, sigma, 255).unwrap();
        let mut c = RdpCurve::zero(255).unwrap();
        c.compose_steps(&step, steps).unwrap();
        let eps_ma = c.epsilon(1e-5).unwrap();
        // Per-step classical Gaussian eps for sigma=2, delta=1e-5 (~2.41),
        // naively composed and amplified linearly by q.
        let eps_step = (2.0 * (1.25f64 / 1e-5).ln()).sqrt() / sigma;
        let eps_naive = steps as f64 * q * eps_step;
        assert!(eps_ma < eps_naive / 5.0, "ma {eps_ma} naive {eps_naive}");
    }

    #[test]
    fn optimal_order_is_interior_for_paper_settings() {
        let step = RdpCurve::subsampled_gaussian_step(0.06, 2.5, 255).unwrap();
        let mut c = RdpCurve::zero(255).unwrap();
        c.compose_steps(&step, 200).unwrap();
        let order = c.optimal_order(2e-4).unwrap();
        assert!(order > 1 && order < 255, "order {order} should be interior");
    }

    #[test]
    fn parameter_validation() {
        assert!(RdpCurve::zero(0).is_err());
        assert!(RdpCurve::subsampled_gaussian_step(-0.1, 1.0, 8).is_err());
        assert!(RdpCurve::subsampled_gaussian_step(1.1, 1.0, 8).is_err());
        assert!(RdpCurve::subsampled_gaussian_step(0.5, 0.0, 8).is_err());
        let c = RdpCurve::zero(8).unwrap();
        assert!(c.epsilon(0.0).is_err());
        assert!(c.epsilon(1.0).is_err());
        assert!(c.optimal_order(0.0).is_err());
        assert_eq!(c.log_moment(0), None);
        assert_eq!(c.log_moment(9), None);
        assert_eq!(c.log_moment(8), Some(0.0));
    }

    #[test]
    fn serde_round_trip() {
        let c = RdpCurve::subsampled_gaussian_step(0.06, 1.5, 16).unwrap();
        let s = serde_json::to_string(&c).unwrap();
        let back: RdpCurve = serde_json::from_str(&s).unwrap();
        assert_eq!(c.max_order(), back.max_order());
        for lambda in 1..=16 {
            let a = c.log_moment(lambda).unwrap();
            let b = back.log_moment(lambda).unwrap();
            // JSON decimal round-trip may differ in the last ulp.
            assert!((a - b).abs() <= a.abs() * 1e-15);
        }
    }
}
