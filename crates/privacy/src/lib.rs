//! Differential-privacy machinery for Private Location Prediction.
//!
//! Implements everything the paper's Algorithm 1 needs on the privacy side:
//!
//! * [`budget`] — the (ε, δ) privacy budget type and validation,
//! * [`mechanism`] — the Gaussian mechanism (Dwork et al., Theorem 2.1 of the
//!   paper) plus a Laplace mechanism for completeness,
//! * [`rdp`] — Rényi-DP / log-moment bounds of the *subsampled* Gaussian
//!   mechanism at integer orders — i.e. the moments accountant of Abadi
//!   et al. (2016), the accounting method the paper uses ([2, 37, 54]),
//! * [`accountant`] — the privacy ledger of Algorithm 1 (lines 3, 11–12):
//!   per-step `(q, σ)` records composed into a cumulative ε(δ),
//! * [`composition`] — naive and advanced (ε, δ) composition theorems, used
//!   to demonstrate how much tighter the moments accountant is,
//! * [`planner`] — inverse queries: calibrate σ for a target budget, or the
//!   number of steps a budget affords (used to set up Figures 7, 8 and 11),
//! * [`geoind`] — geo-indistinguishability (planar Laplace), the
//!   client-side protection §3.3 recommends when querying an untrusted
//!   provider.

pub mod accountant;
pub mod budget;
pub mod composition;
pub mod error;
pub mod geoind;
pub mod mechanism;
pub mod planner;
pub mod rdp;

pub use accountant::{LedgerEntry, MomentsAccountant, PrivacyLedger};
pub use budget::PrivacyBudget;
pub use error::PrivacyError;
pub use geoind::PlanarLaplace;
pub use mechanism::{GaussianMechanism, LaplaceMechanism};
pub use rdp::RdpCurve;
