//! Classical (ε, δ) composition theorems.
//!
//! Provided as comparison baselines for the moments accountant: the paper
//! motivates the accountant by noting that "sequential querying using
//! differentially private mechanisms degrades the overall privacy level"
//! under the standard composition theorem (§1, §2.3), and that the
//! accountant "provides a much tighter upper bound on privacy budget
//! consumption" (§2.3). These functions quantify that gap (see the
//! `accountant_vs_composition` bench).

use crate::error::PrivacyError;

/// Naive (basic) composition: `k` mechanisms that are each
/// (ε₀, δ₀)-DP compose to `(k·ε₀, k·δ₀)`-DP.
///
/// # Errors
/// `eps0` must be finite and non-negative; `delta0` in `[0, 1)`.
pub fn naive_composition(eps0: f64, delta0: f64, k: u64) -> Result<(f64, f64), PrivacyError> {
    validate(eps0, delta0)?;
    Ok((k as f64 * eps0, (k as f64 * delta0).min(1.0)))
}

/// Advanced composition (Dwork–Rothblum–Vadhan): `k` mechanisms each
/// (ε₀, δ₀)-DP compose to
/// `(ε₀·√(2k·ln(1/δ′)) + k·ε₀·(e^{ε₀} − 1), k·δ₀ + δ′)`-DP
/// for any slack δ′ ∈ (0, 1).
///
/// # Errors
/// Parameter domains as in [`naive_composition`]; `delta_slack` must lie in
/// `(0, 1)`.
pub fn advanced_composition(
    eps0: f64,
    delta0: f64,
    k: u64,
    delta_slack: f64,
) -> Result<(f64, f64), PrivacyError> {
    validate(eps0, delta0)?;
    if !(delta_slack > 0.0 && delta_slack < 1.0) {
        return Err(PrivacyError::InvalidParameter {
            name: "delta_slack",
            value: delta_slack,
            expected: "in (0, 1)",
        });
    }
    let kf = k as f64;
    let eps = eps0 * (2.0 * kf * (1.0 / delta_slack).ln()).sqrt() + kf * eps0 * (eps0.exp_m1());
    let delta = (kf * delta0 + delta_slack).min(1.0);
    Ok((eps, delta))
}

fn validate(eps0: f64, delta0: f64) -> Result<(), PrivacyError> {
    if !(eps0.is_finite() && eps0 >= 0.0) {
        return Err(PrivacyError::InvalidParameter {
            name: "eps0",
            value: eps0,
            expected: "finite and >= 0",
        });
    }
    if !(0.0..1.0).contains(&delta0) {
        return Err(PrivacyError::InvalidParameter {
            name: "delta0",
            value: delta0,
            expected: "in [0, 1)",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_is_linear() {
        let (e, d) = naive_composition(0.1, 1e-6, 100).unwrap();
        assert!((e - 10.0).abs() < 1e-12);
        assert!((d - 1e-4).abs() < 1e-16);
    }

    #[test]
    fn naive_delta_saturates_at_one() {
        let (_, d) = naive_composition(0.1, 0.5, 100).unwrap();
        assert_eq!(d, 1.0);
    }

    #[test]
    fn advanced_beats_naive_for_many_small_steps() {
        let eps0 = 0.01;
        let k = 10_000;
        let (naive_e, _) = naive_composition(eps0, 0.0, k).unwrap();
        let (adv_e, _) = advanced_composition(eps0, 0.0, k, 1e-5).unwrap();
        assert!(adv_e < naive_e, "advanced {adv_e} vs naive {naive_e}");
    }

    #[test]
    fn advanced_composition_known_value() {
        // eps0=0.1, k=100, delta'=1e-6:
        // eps = 0.1*sqrt(200*ln(1e6)) + 100*0.1*(e^0.1 - 1)
        let (e, d) = advanced_composition(0.1, 0.0, 100, 1e-6).unwrap();
        let expected = 0.1 * (200.0f64 * (1e6f64).ln()).sqrt() + 10.0 * (0.1f64.exp() - 1.0);
        assert!((e - expected).abs() < 1e-12);
        assert!((d - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn validation_rejects_bad_domains() {
        assert!(naive_composition(-0.1, 0.0, 1).is_err());
        assert!(naive_composition(f64::NAN, 0.0, 1).is_err());
        assert!(naive_composition(0.1, 1.0, 1).is_err());
        assert!(advanced_composition(0.1, 0.0, 1, 0.0).is_err());
        assert!(advanced_composition(0.1, 0.0, 1, 1.0).is_err());
    }
}
