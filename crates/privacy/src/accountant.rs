//! The privacy ledger and moments accountant of Algorithm 1.
//!
//! Algorithm 1 keeps "a privacy ledger … to keep track of the privacy budget
//! spent in each iteration by recording the values of σ and C" (lines 3, 11)
//! and stops training once `cumulative_budget_spent() ≥ ε` (line 12). Here
//! the ledger stores `(q, σ, steps)` sample entries (the clipping norm C does
//! not enter the accountant — it scales the noise, not the privacy), and the
//! [`MomentsAccountant`] folds them into an [`RdpCurve`] to answer ε(δ)
//! queries at any point in training.

use serde::{Deserialize, Serialize};

use crate::budget::PrivacyBudget;
use crate::error::PrivacyError;
use crate::rdp::{RdpCurve, DEFAULT_MAX_MOMENT_ORDER};

/// One ledger record: `steps` executions of a subsampled Gaussian mechanism
/// with sampling rate `q` and (effective) noise multiplier
/// `noise_multiplier`.
///
/// When a user's data may be split across ω buckets, the *effective* noise
/// multiplier for accounting is `σ/ω` (equivalently: sensitivity grows to
/// ωC while the noise std stays σC — see paper §4.2 Case 2); callers encode
/// that in `noise_multiplier` before tracking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Poisson sampling rate of the step(s).
    pub q: f64,
    /// Effective noise multiplier of the step(s).
    pub noise_multiplier: f64,
    /// How many consecutive steps used these parameters.
    pub steps: u64,
}

/// An append-only record of every private step taken.
///
/// The ledger is the auditable artifact: serialising it alongside a released
/// model lets anyone recompute the (ε, δ) guarantee.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrivacyLedger {
    entries: Vec<LedgerEntry>,
}

impl PrivacyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        PrivacyLedger {
            entries: Vec::new(),
        }
    }

    /// Records one step with sampling rate `q` and effective noise
    /// multiplier `sigma`. Consecutive steps with identical parameters are
    /// coalesced into a single entry.
    ///
    /// # Errors
    /// `q` must lie in `[0, 1]`; `sigma` must be finite and positive.
    pub fn track(&mut self, q: f64, sigma: f64) -> Result<(), PrivacyError> {
        if !(0.0..=1.0).contains(&q) || !q.is_finite() {
            return Err(PrivacyError::InvalidParameter {
                name: "q",
                value: q,
                expected: "in [0, 1]",
            });
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "sigma",
                value: sigma,
                expected: "finite and > 0",
            });
        }
        if let Some(last) = self.entries.last_mut() {
            if last.q == q && last.noise_multiplier == sigma {
                last.steps += 1;
                return Ok(());
            }
        }
        self.entries.push(LedgerEntry {
            q,
            noise_multiplier: sigma,
            steps: 1,
        });
        Ok(())
    }

    /// Rebuilds a ledger from previously recorded entries (e.g. restored
    /// from a training checkpoint), re-validating every record.
    ///
    /// # Errors
    /// Each entry must satisfy the [`PrivacyLedger::track`] domain and
    /// cover at least one step.
    pub fn from_entries(entries: Vec<LedgerEntry>) -> Result<Self, PrivacyError> {
        let mut ledger = PrivacyLedger::new();
        for e in &entries {
            if e.steps == 0 {
                return Err(PrivacyError::InvalidParameter {
                    name: "steps",
                    value: 0.0,
                    expected: ">= 1 in every ledger entry",
                });
            }
            // Reuse track()'s parameter validation on the first step; the
            // remaining steps of the entry are identical.
            ledger.track(e.q, e.noise_multiplier)?;
            if let Some(last) = ledger.entries.last_mut() {
                last.steps = last.steps - 1 + e.steps;
            }
        }
        Ok(ledger)
    }

    /// All recorded entries, in order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Total number of private steps recorded.
    pub fn total_steps(&self) -> u64 {
        self.entries.iter().map(|e| e.steps).sum()
    }

    /// `true` iff no steps have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rebuilds the composed RDP curve from the ledger.
    ///
    /// # Errors
    /// Propagates parameter errors from curve construction.
    pub fn rdp_curve(&self, max_order: usize) -> Result<RdpCurve, PrivacyError> {
        let mut total = RdpCurve::zero(max_order)?;
        for e in &self.entries {
            let step = RdpCurve::subsampled_gaussian_step(e.q, e.noise_multiplier, max_order)?;
            total.compose_steps(&step, e.steps)?;
        }
        Ok(total)
    }

    /// The cumulative ε(δ) implied by the ledger — the paper's
    /// `cumulative_budget_spent()`. An empty ledger has spent ε = 0.
    ///
    /// # Errors
    /// `delta` must lie in `(0, 1)`.
    pub fn epsilon(&self, delta: f64) -> Result<f64, PrivacyError> {
        if self.is_empty() {
            if !(delta > 0.0 && delta < 1.0) {
                return Err(PrivacyError::InvalidParameter {
                    name: "delta",
                    value: delta,
                    expected: "in (0, 1)",
                });
            }
            return Ok(0.0);
        }
        self.rdp_curve(DEFAULT_MAX_MOMENT_ORDER)?.epsilon(delta)
    }
}

/// Incremental moments accountant: the fast path used inside the training
/// loop, caching the per-step curve so identical consecutive steps cost one
/// vector addition each.
#[derive(Debug, Clone)]
pub struct MomentsAccountant {
    delta: f64,
    max_order: usize,
    total: RdpCurve,
    steps: u64,
    cached_step: Option<(f64, f64, RdpCurve)>,
    ledger: PrivacyLedger,
}

impl MomentsAccountant {
    /// Creates an accountant for a fixed `delta` over the default order
    /// grid.
    ///
    /// # Errors
    /// `delta` must lie in `(0, 1)`.
    pub fn new(delta: f64) -> Result<Self, PrivacyError> {
        Self::with_max_order(delta, DEFAULT_MAX_MOMENT_ORDER)
    }

    /// Creates an accountant over a custom order grid `1..=max_order`.
    ///
    /// # Errors
    /// `delta` must lie in `(0, 1)` and `max_order >= 1`.
    pub fn with_max_order(delta: f64, max_order: usize) -> Result<Self, PrivacyError> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: delta,
                expected: "in (0, 1)",
            });
        }
        Ok(MomentsAccountant {
            delta,
            max_order,
            total: RdpCurve::zero(max_order)?,
            steps: 0,
            cached_step: None,
            ledger: PrivacyLedger::new(),
        })
    }

    /// Restores an accountant from an auditable ledger — the resume path
    /// of a crash-safe trainer. The ledger is the source of truth: the
    /// composed RDP curve (and hence ε) is recomputed from its entries by
    /// replaying them step by step, which is bit-identical to having
    /// accounted the same steps incrementally.
    ///
    /// # Errors
    /// Same δ domain as [`MomentsAccountant::new`]; propagates parameter
    /// errors from curve reconstruction.
    pub fn from_ledger(delta: f64, ledger: PrivacyLedger) -> Result<Self, PrivacyError> {
        let mut acc = Self::new(delta)?;
        for e in ledger.entries() {
            // One compose per step (not one scaled compose per entry) so a
            // restored accountant's floating-point state exactly matches an
            // uninterrupted run's.
            acc.refresh_step_curve(e.q, e.noise_multiplier)?;
            let (_, _, curve) = acc.cached_step.as_ref().expect("cache just refreshed");
            for _ in 0..e.steps {
                acc.total.compose(curve)?;
            }
            acc.steps += e.steps;
        }
        acc.ledger = ledger;
        Ok(acc)
    }

    /// The δ this accountant reports ε for.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of private steps accounted so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The underlying auditable ledger.
    pub fn ledger(&self) -> &PrivacyLedger {
        &self.ledger
    }

    /// Ensures `cached_step` holds the per-step RDP curve for `(q, sigma)`.
    ///
    /// Recomputing the subsampled-Gaussian log-moments is O(max_order²)
    /// log-space work; a training loop calls the accountant with the same
    /// `(q, σ)` every step, so after the first step both the budget peek and
    /// the step itself reduce to O(max_order) vector passes over the cached
    /// curve — no recompute and no clone.
    fn refresh_step_curve(&mut self, q: f64, sigma: f64) -> Result<(), PrivacyError> {
        if matches!(&self.cached_step, Some((cq, cs, _)) if *cq == q && *cs == sigma) {
            return Ok(());
        }
        let curve = RdpCurve::subsampled_gaussian_step(q, sigma, self.max_order)?;
        self.cached_step = Some((q, sigma, curve));
        Ok(())
    }

    /// Accounts one subsampled-Gaussian step.
    ///
    /// # Errors
    /// `q` must lie in `[0, 1]`; `sigma` must be finite and positive.
    pub fn step(&mut self, q: f64, sigma: f64) -> Result<(), PrivacyError> {
        self.refresh_step_curve(q, sigma)?;
        let (_, _, curve) = self.cached_step.as_ref().expect("cache just refreshed");
        self.total.compose(curve)?;
        self.steps += 1;
        self.ledger.track(q, sigma)?;
        Ok(())
    }

    /// The cumulative privacy cost ε at the accountant's δ; `0` before any
    /// step.
    pub fn epsilon(&self) -> Result<f64, PrivacyError> {
        if self.steps == 0 {
            return Ok(0.0);
        }
        self.total.epsilon(self.delta)
    }

    /// The RDP order at which the cumulative ε is achieved — the active
    /// constraint of the moments bound, useful burn-rate telemetry (a
    /// shifting order means the dominant regime changed).
    ///
    /// # Errors
    /// Propagates the curve's ε evaluation errors; requires at least one
    /// accounted step.
    pub fn optimal_order(&self) -> Result<usize, PrivacyError> {
        self.total.optimal_order(self.delta)
    }

    /// ε after a *hypothetical* additional step — lets a trainer decide
    /// whether the next step would overshoot the budget before taking it.
    ///
    /// Clone-free: evaluated via [`RdpCurve::epsilon_composed_with`], which
    /// is bit-identical to materialising the composed curve.
    ///
    /// # Errors
    /// Same parameter requirements as [`MomentsAccountant::step`].
    pub fn epsilon_after_hypothetical_step(
        &mut self,
        q: f64,
        sigma: f64,
    ) -> Result<f64, PrivacyError> {
        self.refresh_step_curve(q, sigma)?;
        let (_, _, curve) = self.cached_step.as_ref().expect("cache just refreshed");
        self.total.epsilon_composed_with(curve, self.delta)
    }

    /// Returns an error if the accumulated ε has reached `budget.epsilon`
    /// (Algorithm 1, line 12). The budget's δ must match the accountant's.
    ///
    /// # Errors
    /// [`PrivacyError::BudgetExhausted`] when spent ε ≥ budget, or
    /// [`PrivacyError::InvalidParameter`] on a δ mismatch.
    pub fn check_budget(&self, budget: PrivacyBudget) -> Result<(), PrivacyError> {
        if budget.delta != self.delta {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: budget.delta,
                expected: "equal to the accountant's delta",
            });
        }
        let spent = self.epsilon()?;
        if spent >= budget.epsilon {
            return Err(PrivacyError::BudgetExhausted {
                spent,
                budget: budget.epsilon,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_coalesces_identical_steps() {
        let mut l = PrivacyLedger::new();
        for _ in 0..5 {
            l.track(0.06, 2.5).unwrap();
        }
        l.track(0.10, 2.5).unwrap();
        assert_eq!(l.entries().len(), 2);
        assert_eq!(l.entries()[0].steps, 5);
        assert_eq!(l.total_steps(), 6);
    }

    #[test]
    fn ledger_validates_parameters() {
        let mut l = PrivacyLedger::new();
        assert!(l.track(-0.1, 1.0).is_err());
        assert!(l.track(1.1, 1.0).is_err());
        assert!(l.track(0.5, 0.0).is_err());
        assert!(l.track(0.5, f64::NAN).is_err());
        assert!(l.is_empty());
    }

    #[test]
    fn empty_ledger_spends_nothing() {
        let l = PrivacyLedger::new();
        assert_eq!(l.epsilon(1e-5).unwrap(), 0.0);
        assert!(l.epsilon(0.0).is_err());
    }

    #[test]
    fn accountant_matches_ledger_replay() {
        let mut acc = MomentsAccountant::with_max_order(2e-4, 128).unwrap();
        for _ in 0..50 {
            acc.step(0.06, 2.5).unwrap();
        }
        for _ in 0..20 {
            acc.step(0.10, 1.5).unwrap();
        }
        let eps_inc = acc.epsilon().unwrap();
        let replay = acc.ledger().rdp_curve(128).unwrap().epsilon(2e-4).unwrap();
        assert!((eps_inc - replay).abs() < 1e-9, "{eps_inc} vs {replay}");
        assert_eq!(acc.steps(), 70);
    }

    #[test]
    fn epsilon_is_zero_before_any_step() {
        let acc = MomentsAccountant::new(1e-5).unwrap();
        assert_eq!(acc.epsilon().unwrap(), 0.0);
    }

    #[test]
    fn hypothetical_step_does_not_mutate() {
        let mut acc = MomentsAccountant::new(2e-4).unwrap();
        acc.step(0.06, 2.5).unwrap();
        let before = acc.epsilon().unwrap();
        let peek = acc.epsilon_after_hypothetical_step(0.06, 2.5).unwrap();
        assert!(peek > before);
        assert_eq!(acc.epsilon().unwrap(), before);
        assert_eq!(acc.steps(), 1);
        // Taking the real step lands exactly on the peeked value.
        acc.step(0.06, 2.5).unwrap();
        assert!((acc.epsilon().unwrap() - peek).abs() < 1e-12);
    }

    #[test]
    fn cached_fast_path_matches_uncached_reference_over_500_steps() {
        // The accountant memoises the per-(q, σ) step curve; the reference
        // below recomputes it from scratch every step and materialises the
        // hypothetical composition. Both the budget peek and the post-step ε
        // must agree bit-for-bit on every one of 500 steps, across a (q, σ)
        // change that invalidates the cache mid-run.
        let delta = 2e-4;
        let max_order = 64; // smaller grid keeps the uncached reference fast
        let mut acc = MomentsAccountant::with_max_order(delta, max_order).unwrap();
        let mut ref_total = RdpCurve::zero(max_order).unwrap();
        for step in 0..500u64 {
            let (q, sigma) = if step < 250 { (0.06, 2.5) } else { (0.10, 1.5) };

            let ref_curve = RdpCurve::subsampled_gaussian_step(q, sigma, max_order).unwrap();
            let ref_peek = {
                let mut peek = ref_total.clone();
                peek.compose(&ref_curve).unwrap();
                peek.epsilon(delta).unwrap()
            };
            let peek = acc.epsilon_after_hypothetical_step(q, sigma).unwrap();
            assert_eq!(peek.to_bits(), ref_peek.to_bits(), "peek at step {step}");

            acc.step(q, sigma).unwrap();
            ref_total.compose(&ref_curve).unwrap();
            assert_eq!(
                acc.epsilon().unwrap().to_bits(),
                ref_total.epsilon(delta).unwrap().to_bits(),
                "epsilon at step {step}"
            );
        }
        assert_eq!(acc.steps(), 500);
    }

    #[test]
    fn check_budget_trips_when_exhausted() {
        let mut acc = MomentsAccountant::new(2e-4).unwrap();
        let budget = PrivacyBudget::new(0.8, 2e-4).unwrap();
        let mut tripped = false;
        for _ in 0..10_000 {
            acc.step(0.10, 1.0).unwrap();
            if acc.check_budget(budget).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "a tiny budget must eventually be exhausted");
        let err = acc.check_budget(budget).unwrap_err();
        assert!(matches!(err, PrivacyError::BudgetExhausted { .. }));
    }

    #[test]
    fn check_budget_rejects_delta_mismatch() {
        let acc = MomentsAccountant::new(2e-4).unwrap();
        let budget = PrivacyBudget::new(1.0, 1e-5).unwrap();
        assert!(acc.check_budget(budget).is_err());
    }

    #[test]
    fn accountant_rejects_bad_delta() {
        assert!(MomentsAccountant::new(0.0).is_err());
        assert!(MomentsAccountant::new(1.0).is_err());
        assert!(MomentsAccountant::with_max_order(1e-5, 0).is_err());
    }

    #[test]
    fn ledger_serde_round_trip() {
        let mut l = PrivacyLedger::new();
        l.track(0.06, 2.5).unwrap();
        l.track(0.06, 2.5).unwrap();
        let s = serde_json::to_string(&l).unwrap();
        let back: PrivacyLedger = serde_json::from_str(&s).unwrap();
        assert_eq!(l, back);
    }

    #[test]
    fn from_entries_validates_and_round_trips() {
        let mut l = PrivacyLedger::new();
        for _ in 0..7 {
            l.track(0.06, 2.5).unwrap();
        }
        l.track(0.1, 1.5).unwrap();
        let rebuilt = PrivacyLedger::from_entries(l.entries().to_vec()).unwrap();
        assert_eq!(rebuilt, l);
        assert!(PrivacyLedger::from_entries(vec![LedgerEntry {
            q: 2.0,
            noise_multiplier: 1.0,
            steps: 1
        }])
        .is_err());
        assert!(PrivacyLedger::from_entries(vec![LedgerEntry {
            q: 0.1,
            noise_multiplier: 1.0,
            steps: 0
        }])
        .is_err());
    }

    #[test]
    fn restored_accountant_is_bit_identical() {
        let mut live = MomentsAccountant::new(2e-4).unwrap();
        for _ in 0..40 {
            live.step(0.06, 2.5).unwrap();
        }
        for _ in 0..10 {
            live.step(0.08, 1.5).unwrap();
        }
        let restored = MomentsAccountant::from_ledger(2e-4, live.ledger().clone()).unwrap();
        assert_eq!(restored.steps(), live.steps());
        assert_eq!(restored.ledger(), live.ledger());
        // Bitwise equality, not approximate: resume must not drift.
        assert_eq!(
            restored.epsilon().unwrap().to_bits(),
            live.epsilon().unwrap().to_bits()
        );
        // Continuing both accountants stays bit-identical.
        let mut live2 = live.clone();
        let mut restored2 = restored.clone();
        live2.step(0.06, 2.5).unwrap();
        restored2.step(0.06, 2.5).unwrap();
        assert_eq!(
            restored2.epsilon().unwrap().to_bits(),
            live2.epsilon().unwrap().to_bits()
        );
    }

    #[test]
    fn omega_two_accounting_costs_more() {
        // Splitting a user across omega=2 buckets halves the effective noise
        // multiplier; the resulting epsilon must be strictly larger.
        let mut one = MomentsAccountant::new(2e-4).unwrap();
        let mut two = MomentsAccountant::new(2e-4).unwrap();
        for _ in 0..100 {
            one.step(0.06, 2.5).unwrap();
            two.step(0.06, 2.5 / 2.0).unwrap();
        }
        assert!(two.epsilon().unwrap() > one.epsilon().unwrap());
    }
}
