//! Output-perturbation mechanisms.
//!
//! [`GaussianMechanism`] is the noise source of Algorithm 1 (line 9): the
//! clipped bucket gradients are summed and perturbed with
//! `N(0, σ²C²I)` — or `N(0, σ²ω²C²I)` when a user's data may be split across
//! ω > 1 buckets (§4.2, Case 2). [`LaplaceMechanism`] is included for
//! completeness of the DP toolkit (pure ε-DP scalar releases, e.g.
//! publishing dataset statistics alongside the model).

use rand::{Rng, RngExt};

use plp_linalg::sample::{self, NormalSampler};

use crate::budget::PrivacyBudget;
use crate::error::PrivacyError;

/// The Gaussian mechanism of (ε, δ)-differential privacy.
///
/// Adds `N(0, (noise_multiplier · sensitivity)²)` noise per coordinate.
/// Following DP-SGD convention, the *noise multiplier* σ and the ℓ2
/// *sensitivity* C are kept separate so the accountant can reason about σ
/// alone.
#[derive(Debug, Clone)]
pub struct GaussianMechanism {
    noise_multiplier: f64,
    sensitivity: f64,
    sampler: NormalSampler,
}

impl GaussianMechanism {
    /// Creates a mechanism with noise multiplier `sigma` and ℓ2 sensitivity
    /// `sensitivity`.
    ///
    /// # Errors
    /// Both parameters must be finite and positive.
    pub fn new(sigma: f64, sensitivity: f64) -> Result<Self, PrivacyError> {
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "sigma",
                value: sigma,
                expected: "finite and > 0",
            });
        }
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "sensitivity",
                value: sensitivity,
                expected: "finite and > 0",
            });
        }
        Ok(GaussianMechanism {
            noise_multiplier: sigma,
            sensitivity,
            sampler: NormalSampler::new(),
        })
    }

    /// Calibrates the classical Gaussian mechanism for a single release under
    /// `budget` (paper Theorem 2.1): `σ² ε² ≥ 2 ln(1.25/δ)`, valid for
    /// ε ∈ (0, 1].
    ///
    /// # Errors
    /// Returns [`PrivacyError::InvalidParameter`] when ε ∉ (0, 1] (the
    /// classical bound does not apply) or sensitivity is invalid.
    pub fn calibrate(budget: PrivacyBudget, sensitivity: f64) -> Result<Self, PrivacyError> {
        if budget.epsilon > 1.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: budget.epsilon,
                expected: "in (0, 1] for the classical Gaussian mechanism",
            });
        }
        let sigma = (2.0 * (1.25 / budget.delta).ln()).sqrt() / budget.epsilon;
        GaussianMechanism::new(sigma, sensitivity)
    }

    /// The noise multiplier σ.
    pub fn noise_multiplier(&self) -> f64 {
        self.noise_multiplier
    }

    /// The ℓ2 sensitivity the mechanism is calibrated to.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The per-coordinate noise standard deviation `σ · C`.
    pub fn noise_std(&self) -> f64 {
        self.noise_multiplier * self.sensitivity
    }

    /// Adds `N(0, (σC)²)` noise to every coordinate of `v` in place —
    /// the vector Gaussian mechanism. Every coordinate is perturbed,
    /// including zeros: DP requires noise on the whole output vector.
    ///
    /// The internal Box–Muller sampler is one stream across consecutive
    /// `perturb`/`perturb_scalar` calls (see the stream contract in
    /// `plp_linalg::sample`); call [`GaussianMechanism::reset_stream`] at
    /// phase/step boundaries so a cached spare cannot couple logically
    /// independent releases. [`GaussianMechanism::perturb_rows`] needs no
    /// reset — every row there has its own counter-seeded stream.
    pub fn perturb<R: Rng + ?Sized>(&mut self, rng: &mut R, v: &mut [f64]) {
        let std = self.noise_std();
        self.sampler.perturb(rng, std, v);
    }

    /// Returns a noisy copy of the scalar `x`.
    pub fn perturb_scalar<R: Rng + ?Sized>(&mut self, rng: &mut R, x: f64) -> f64 {
        x + self.sampler.sample_scaled(rng, self.noise_std())
    }

    /// Ends the internal sampler's current stream, dropping any cached
    /// Box–Muller spare — call at every stream boundary when using the
    /// RNG-backed [`GaussianMechanism::perturb`] path.
    pub fn reset_stream(&mut self) {
        self.sampler.reset();
    }

    /// Adds `N(0, (σC)²)` noise to `data` — consecutive rows of length
    /// `row_len`, the first of which has absolute index `first_row` within
    /// `domain` — using one counter-seeded Gaussian stream per row (see
    /// `plp_linalg::sample::perturb_rows`).
    ///
    /// Because every row's noise depends only on
    /// `(noise_seed, domain, row index)`, callers may partition a parameter
    /// matrix into arbitrary contiguous row ranges and perturb the ranges on
    /// any threads in any order: the output is bit-identical to a sequential
    /// pass. Takes `&self` — no sampler state is shared between rows, calls,
    /// or threads. `scratch` must hold at least `row_len` elements.
    pub fn perturb_rows(
        &self,
        noise_seed: u64,
        domain: u64,
        row_len: usize,
        first_row: u64,
        data: &mut [f64],
        scratch: &mut [f64],
    ) {
        sample::perturb_rows(
            noise_seed,
            domain,
            self.noise_std(),
            row_len,
            first_row,
            data,
            scratch,
        );
    }
}

/// The Laplace mechanism for pure ε-DP releases with ℓ1 sensitivity.
#[derive(Debug, Clone)]
pub struct LaplaceMechanism {
    scale: f64,
}

impl LaplaceMechanism {
    /// Calibrates the mechanism: scale `b = sensitivity / ε`.
    ///
    /// # Errors
    /// Both parameters must be finite and positive.
    pub fn new(epsilon: f64, l1_sensitivity: f64) -> Result<Self, PrivacyError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                expected: "finite and > 0",
            });
        }
        if !(l1_sensitivity.is_finite() && l1_sensitivity > 0.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "l1_sensitivity",
                value: l1_sensitivity,
                expected: "finite and > 0",
            });
        }
        Ok(LaplaceMechanism {
            scale: l1_sensitivity / epsilon,
        })
    }

    /// The Laplace scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draws one Laplace(0, b) variate by inverse-CDF sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u uniform in (-0.5, 0.5]; inverse CDF of the Laplace distribution.
        let u: f64 = rng.random::<f64>() - 0.5;
        -self.scale * u.signum() * (1.0_f64 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
    }

    /// Returns a noisy copy of the scalar `x`.
    pub fn perturb_scalar<R: Rng + ?Sized>(&self, rng: &mut R, x: f64) -> f64 {
        x + self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_rejects_bad_params() {
        assert!(GaussianMechanism::new(0.0, 1.0).is_err());
        assert!(GaussianMechanism::new(1.0, 0.0).is_err());
        assert!(GaussianMechanism::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn calibrate_matches_theorem_2_1() {
        let b = PrivacyBudget::new(0.5, 1e-5).unwrap();
        let m = GaussianMechanism::calibrate(b, 2.0).unwrap();
        let expected = (2.0 * (1.25f64 / 1e-5).ln()).sqrt() / 0.5;
        assert!((m.noise_multiplier() - expected).abs() < 1e-12);
        assert!((m.noise_std() - expected * 2.0).abs() < 1e-12);
    }

    #[test]
    fn calibrate_rejects_large_epsilon() {
        let b = PrivacyBudget::new(2.0, 1e-5).unwrap();
        assert!(GaussianMechanism::calibrate(b, 1.0).is_err());
    }

    #[test]
    fn gaussian_noise_has_requested_std() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = GaussianMechanism::new(2.0, 0.5).unwrap();
        let mut v = vec![0.0; 100_000];
        m.perturb(&mut rng, &mut v);
        let var = v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        let expected = m.noise_std() * m.noise_std();
        assert!(
            (var - expected).abs() < 0.05 * expected,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn gaussian_perturbs_every_coordinate() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = GaussianMechanism::new(1.0, 1.0).unwrap();
        let mut v = vec![0.0; 64];
        m.perturb(&mut rng, &mut v);
        assert!(v.iter().all(|&x| x != 0.0), "zeros must also receive noise");
        let y = m.perturb_scalar(&mut rng, 10.0);
        assert!(y != 10.0);
    }

    #[test]
    fn reset_stream_drops_cached_spare() {
        // One scalar release caches a Box–Muller spare. Without a reset the
        // next release consumes it; after a reset the mechanism draws fresh
        // uniforms exactly like a new mechanism over the same RNG state.
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = GaussianMechanism::new(1.0, 1.0).unwrap();
        let _ = m.perturb_scalar(&mut rng, 0.0);

        let mut leaky = m.clone();
        let leaked = leaky.perturb_scalar(&mut rng.clone(), 0.0);

        let mut fresh_rng = rng.clone();
        m.reset_stream();
        let after_reset = m.perturb_scalar(&mut rng, 0.0);
        let mut fresh = GaussianMechanism::new(1.0, 1.0).unwrap();
        let fresh_next = fresh.perturb_scalar(&mut fresh_rng, 0.0);

        assert_eq!(after_reset.to_bits(), fresh_next.to_bits());
        assert_ne!(leaked.to_bits(), after_reset.to_bits());
    }

    #[test]
    fn perturb_rows_is_partition_invariant_and_scaled() {
        let m = GaussianMechanism::new(2.0, 0.5).unwrap();
        let row_len = 5;
        let rows = 8;
        let base = vec![1.0; rows * row_len];
        let mut scratch = vec![0.0; row_len];

        let mut want = base.clone();
        m.perturb_rows(77, 1, row_len, 0, &mut want, &mut scratch);

        // Split into three ranges, perturbed out of order.
        let mut got = base.clone();
        let (head, rest) = got.split_at_mut(2 * row_len);
        let (mid, tail) = rest.split_at_mut(3 * row_len);
        m.perturb_rows(77, 1, row_len, 5, tail, &mut scratch);
        m.perturb_rows(77, 1, row_len, 0, head, &mut scratch);
        m.perturb_rows(77, 1, row_len, 2, mid, &mut scratch);
        assert!(got
            .iter()
            .zip(&want)
            .all(|(g, w)| g.to_bits() == w.to_bits()));

        // Noise std is σ·C: check the empirical variance on a larger slab.
        let mut big = vec![0.0; 100_000];
        let mut s = vec![0.0; 64];
        m.perturb_rows(123, 0, 64, 0, &mut big, &mut s);
        let var = big.iter().map(|x| x * x).sum::<f64>() / big.len() as f64;
        let expected = m.noise_std() * m.noise_std();
        assert!(
            (var - expected).abs() < 0.05 * expected,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn laplace_moments_match_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = LaplaceMechanism::new(1.0, 2.0).unwrap();
        assert_eq!(m.scale(), 2.0);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| m.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // Laplace variance is 2b².
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 8.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn laplace_rejects_bad_params() {
        assert!(LaplaceMechanism::new(0.0, 1.0).is_err());
        assert!(LaplaceMechanism::new(1.0, -2.0).is_err());
    }
}
