//! Error types for the privacy layer.

use std::fmt;

/// Errors produced by differential-privacy primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum PrivacyError {
    /// An (ε, δ) pair or a mechanism parameter was outside its legal domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Description of the legal domain.
        expected: &'static str,
    },
    /// The requested privacy guarantee cannot be met (e.g. σ = 0, or a
    /// calibration search failed to converge).
    Unsatisfiable {
        /// Explanation of why the guarantee is unreachable.
        reason: &'static str,
    },
    /// The privacy budget has been exhausted; no further private steps may
    /// be executed.
    BudgetExhausted {
        /// ε spent so far.
        spent: f64,
        /// The configured budget.
        budget: f64,
    },
}

impl fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivacyError::InvalidParameter {
                name,
                value,
                expected,
            } => {
                write!(
                    f,
                    "invalid privacy parameter {name} = {value}: expected {expected}"
                )
            }
            PrivacyError::Unsatisfiable { reason } => {
                write!(f, "privacy guarantee unsatisfiable: {reason}")
            }
            PrivacyError::BudgetExhausted { spent, budget } => {
                write!(
                    f,
                    "privacy budget exhausted: spent eps = {spent} >= budget {budget}"
                )
            }
        }
    }
}

impl std::error::Error for PrivacyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PrivacyError::InvalidParameter {
            name: "q",
            value: 1.5,
            expected: "[0, 1]",
        };
        assert!(e.to_string().contains("q = 1.5"));
        let e = PrivacyError::BudgetExhausted {
            spent: 2.1,
            budget: 2.0,
        };
        assert!(e.to_string().contains("2.1"));
        let e = PrivacyError::Unsatisfiable {
            reason: "sigma too small",
        };
        assert!(e.to_string().contains("sigma too small"));
    }
}
