//! Budget planning: inverse queries over the moments accountant.
//!
//! The paper's experiments fix a budget ε and ask how many steps training
//! may run (Figures 7, 8, 11: "for a given value of δ, the privacy budget ε
//! affects the amount of steps we can train until we exceed that budget").
//! These helpers answer the two inverse questions a practitioner has:
//!
//! * [`max_steps`] — how many steps does (ε, δ) afford at fixed (q, σ)?
//! * [`calibrate_noise`] — what σ achieves (ε, δ) for a fixed (q, steps)?

use crate::budget::PrivacyBudget;
use crate::error::PrivacyError;
use crate::rdp::{RdpCurve, DEFAULT_MAX_MOMENT_ORDER};

/// ε(δ) after `steps` identical subsampled-Gaussian steps.
///
/// # Errors
/// Parameter domains as in [`RdpCurve::subsampled_gaussian_step`].
pub fn epsilon_for_steps(q: f64, sigma: f64, steps: u64, delta: f64) -> Result<f64, PrivacyError> {
    if steps == 0 {
        return Ok(0.0);
    }
    let step = RdpCurve::subsampled_gaussian_step(q, sigma, DEFAULT_MAX_MOMENT_ORDER)?;
    let mut total = RdpCurve::zero(DEFAULT_MAX_MOMENT_ORDER)?;
    total.compose_steps(&step, steps)?;
    total.epsilon(delta)
}

/// The largest number of steps whose cumulative ε stays *strictly below* the
/// budget, found by exponential search + bisection (ε is monotone in steps).
///
/// Returns 0 when even a single step overshoots.
///
/// # Errors
/// Parameter domains as in [`RdpCurve::subsampled_gaussian_step`].
pub fn max_steps(q: f64, sigma: f64, budget: PrivacyBudget) -> Result<u64, PrivacyError> {
    // Validate parameters once up front.
    let _ = RdpCurve::subsampled_gaussian_step(q, sigma, 1)?;
    if epsilon_for_steps(q, sigma, 1, budget.delta)? >= budget.epsilon {
        return Ok(0);
    }
    // Exponential search for an upper bound.
    let mut hi = 1u64;
    while epsilon_for_steps(q, sigma, hi, budget.delta)? < budget.epsilon {
        if hi > (1 << 40) {
            // The mechanism consumes essentially nothing (e.g. q ~ 0);
            // report the cap rather than looping forever.
            return Ok(hi);
        }
        hi *= 2;
    }
    let mut lo = hi / 2; // known feasible
                         // Invariant: eps(lo) < budget <= eps(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if epsilon_for_steps(q, sigma, mid, budget.delta)? < budget.epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// The smallest noise multiplier σ (within `tol`) such that `steps` steps at
/// sampling rate `q` stay within `budget`, found by bisection over σ
/// (ε is monotone decreasing in σ).
///
/// # Errors
/// [`PrivacyError::Unsatisfiable`] if even σ = `sigma_max` overshoots.
pub fn calibrate_noise(
    q: f64,
    steps: u64,
    budget: PrivacyBudget,
    sigma_max: f64,
    tol: f64,
) -> Result<f64, PrivacyError> {
    if !(sigma_max.is_finite() && sigma_max > 0.0) {
        return Err(PrivacyError::InvalidParameter {
            name: "sigma_max",
            value: sigma_max,
            expected: "finite and > 0",
        });
    }
    if epsilon_for_steps(q, sigma_max, steps, budget.delta)? > budget.epsilon {
        return Err(PrivacyError::Unsatisfiable {
            reason: "even sigma_max exceeds the budget; raise sigma_max or lower steps",
        });
    }
    let mut lo = 1e-3; // below any usable multiplier
    let mut hi = sigma_max;
    if epsilon_for_steps(q, lo, steps, budget.delta)? <= budget.epsilon {
        return Ok(lo);
    }
    // Invariant: eps(lo) > budget >= eps(hi).
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if epsilon_for_steps(q, mid, steps, budget.delta)? > budget.epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(eps: f64) -> PrivacyBudget {
        PrivacyBudget::new(eps, 2e-4).unwrap()
    }

    #[test]
    fn epsilon_for_zero_steps_is_zero() {
        assert_eq!(epsilon_for_steps(0.06, 2.5, 0, 2e-4).unwrap(), 0.0);
    }

    #[test]
    fn max_steps_is_the_boundary() {
        let q = 0.06;
        let sigma = 2.5;
        let b = budget(2.0);
        let n = max_steps(q, sigma, b).unwrap();
        assert!(n > 0);
        let at = epsilon_for_steps(q, sigma, n, b.delta).unwrap();
        let over = epsilon_for_steps(q, sigma, n + 1, b.delta).unwrap();
        assert!(at < b.epsilon, "eps({n}) = {at} must be under budget");
        assert!(
            over >= b.epsilon,
            "eps({}) = {over} must reach budget",
            n + 1
        );
    }

    #[test]
    fn more_budget_allows_more_steps() {
        let a = max_steps(0.06, 1.5, budget(1.0)).unwrap();
        let b = max_steps(0.06, 1.5, budget(2.0)).unwrap();
        let c = max_steps(0.06, 1.5, budget(4.0)).unwrap();
        assert!(a < b && b < c, "{a} {b} {c}");
    }

    #[test]
    fn larger_sigma_allows_more_steps() {
        let lo = max_steps(0.06, 1.0, budget(2.0)).unwrap();
        let hi = max_steps(0.06, 3.0, budget(2.0)).unwrap();
        assert!(hi > lo, "{hi} vs {lo}");
    }

    #[test]
    fn larger_q_allows_fewer_steps() {
        // The paper: "for a higher sampling probability, the privacy budget
        // is consumed faster, hence the count of total training steps is
        // smaller" (Figure 8 discussion).
        let lo_q = max_steps(0.04, 1.5, budget(2.0)).unwrap();
        let hi_q = max_steps(0.12, 1.5, budget(2.0)).unwrap();
        assert!(lo_q > hi_q, "{lo_q} vs {hi_q}");
    }

    #[test]
    fn max_steps_zero_when_one_step_overshoots() {
        // Tiny noise, huge q: a single step blows a microscopic budget.
        let n = max_steps(1.0, 0.5, PrivacyBudget::new(0.01, 1e-6).unwrap()).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn calibrate_noise_meets_budget_tightly() {
        let b = budget(2.0);
        let q = 0.06;
        let steps = 500;
        let sigma = calibrate_noise(q, steps, b, 50.0, 1e-4).unwrap();
        let eps = epsilon_for_steps(q, sigma, steps, b.delta).unwrap();
        assert!(eps <= b.epsilon, "calibrated sigma must satisfy the budget");
        // Tightness: slightly less noise must overshoot.
        let eps_tight = epsilon_for_steps(q, sigma - 5e-3, steps, b.delta).unwrap();
        assert!(
            eps_tight > b.epsilon * 0.98,
            "sigma should be near the boundary"
        );
    }

    #[test]
    fn calibrate_noise_unsatisfiable_when_capped() {
        let b = PrivacyBudget::new(0.05, 1e-6).unwrap();
        let r = calibrate_noise(0.5, 100_000, b, 1.0, 1e-3);
        assert!(matches!(r, Err(PrivacyError::Unsatisfiable { .. })));
    }

    #[test]
    fn calibrate_rejects_bad_sigma_max() {
        assert!(calibrate_noise(0.1, 10, budget(1.0), 0.0, 1e-3).is_err());
        assert!(calibrate_noise(0.1, 10, budget(1.0), f64::NAN, 1e-3).is_err());
    }
}
