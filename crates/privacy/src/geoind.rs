//! Geo-indistinguishability: the planar Laplace mechanism.
//!
//! §3.3: "When the model is deployed at an untrusted location-based service
//! provider, the mobile user must protect the set ζ locally. Techniques
//! such as geo-indistinguishability [3] can be applied to protect the
//! check-in history … the check-in coordinates can be obfuscated."
//!
//! Andrés et al. (CCS 2013) define ε-geo-indistinguishability over the
//! Euclidean plane and achieve it with the *planar Laplace* mechanism:
//! draw an angle uniformly and a radius from the Gamma(2, 1/ε)
//! distribution (whose density is `ε²·r·e^{−εr}`), obtained by inverting
//! its CDF with the analytic solution based on the Lambert-W function's
//! −1 branch.

use rand::{Rng, RngExt};

use crate::error::PrivacyError;

/// The planar Laplace mechanism of geo-indistinguishability.
///
/// `epsilon` is the privacy parameter *per unit of distance*: points within
/// distance `r` are ε·r-indistinguishable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanarLaplace {
    epsilon: f64,
}

impl PlanarLaplace {
    /// Creates the mechanism.
    ///
    /// # Errors
    /// `epsilon` must be finite and positive.
    pub fn new(epsilon: f64) -> Result<Self, PrivacyError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                expected: "finite and > 0",
            });
        }
        Ok(PlanarLaplace { epsilon })
    }

    /// The privacy parameter ε (per distance unit).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The expected displacement `E[r] = 2/ε` of the mechanism.
    pub fn expected_distance(&self) -> f64 {
        2.0 / self.epsilon
    }

    /// Draws a radial displacement from the Gamma(2, 1/ε) radius
    /// distribution by inverse-CDF sampling:
    /// `r = −(W₋₁((u−1)/e) + 1) / ε` for `u` uniform in (0, 1).
    pub fn sample_radius<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut u: f64 = rng.random();
        while u <= f64::MIN_POSITIVE || u >= 1.0 {
            u = rng.random();
        }
        let w = lambert_w_minus1((u - 1.0) / std::f64::consts::E);
        -(w + 1.0) / self.epsilon
    }

    /// Perturbs a planar point `(x, y)` (in the same distance units ε was
    /// calibrated for).
    pub fn perturb_point<R: Rng + ?Sized>(&self, rng: &mut R, x: f64, y: f64) -> (f64, f64) {
        let theta = std::f64::consts::TAU * rng.random::<f64>();
        let r = self.sample_radius(rng);
        (x + r * theta.cos(), y + r * theta.sin())
    }
}

/// The −1 branch of the Lambert W function on `[-1/e, 0)`, via Newton
/// iterations from the standard series initialisation.
///
/// Returns `f64::NAN` outside the domain.
pub fn lambert_w_minus1(x: f64) -> f64 {
    let inv_e = -1.0 / std::f64::consts::E;
    if !(inv_e..0.0).contains(&x) {
        if (x - inv_e).abs() < 1e-15 {
            return -1.0;
        }
        return f64::NAN;
    }
    // Initialisation (Chapeau-Blondeau & Monir): series in
    // p = -sqrt(2(1 + e·x)) near the branch point, asymptotic elsewhere.
    let mut w = if x > -0.25 {
        let l1 = (-x).ln();
        let l2 = (-l1).ln();
        l1 - l2 + l2 / l1
    } else {
        let p = -(2.0 * (1.0 + std::f64::consts::E * x)).sqrt();
        -1.0 + p - p * p / 3.0 + 11.0 * p * p * p / 72.0
    };
    for _ in 0..60 {
        let ew = w.exp();
        let f = w * ew - x;
        let df = ew * (w + 1.0);
        if df.abs() < 1e-300 {
            break;
        }
        let step = f / df;
        w -= step;
        if step.abs() < 1e-14 * (1.0 + w.abs()) {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lambert_w_satisfies_defining_equation() {
        for &x in &[-0.3, -0.2, -0.1, -0.05, -0.01, -0.001] {
            let w = lambert_w_minus1(x);
            assert!((w * w.exp() - x).abs() < 1e-10, "x={x} w={w}");
            assert!(w <= -1.0, "the -1 branch lies below -1: w={w}");
        }
        assert!((lambert_w_minus1(-1.0 / std::f64::consts::E) + 1.0).abs() < 1e-6);
        assert!(lambert_w_minus1(0.5).is_nan());
        assert!(lambert_w_minus1(-1.0).is_nan());
    }

    #[test]
    fn radius_matches_gamma_2_mean_and_positivity() {
        let eps = 0.5;
        let m = PlanarLaplace::new(eps).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let radii: Vec<f64> = (0..n).map(|_| m.sample_radius(&mut rng)).collect();
        assert!(radii.iter().all(|&r| r >= 0.0));
        let mean = radii.iter().sum::<f64>() / n as f64;
        // Gamma(2, 1/eps) has mean 2/eps = 4.
        assert!((mean - m.expected_distance()).abs() < 0.1, "mean {mean}");
        // And variance 2/eps^2 = 8.
        let var = radii.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n as f64;
        assert!((var - 8.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn perturbation_is_isotropic() {
        let m = PlanarLaplace::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut dx = 0.0;
        let mut dy = 0.0;
        for _ in 0..n {
            let (x, y) = m.perturb_point(&mut rng, 10.0, -3.0);
            dx += x - 10.0;
            dy += y + 3.0;
        }
        assert!((dx / n as f64).abs() < 0.05, "mean dx {}", dx / n as f64);
        assert!((dy / n as f64).abs() < 0.05, "mean dy {}", dy / n as f64);
    }

    #[test]
    fn stronger_epsilon_means_smaller_displacement() {
        let mut rng = StdRng::seed_from_u64(7);
        let weak = PlanarLaplace::new(0.1).unwrap();
        let strong = PlanarLaplace::new(10.0).unwrap();
        let avg = |m: &PlanarLaplace, rng: &mut StdRng| {
            (0..5000).map(|_| m.sample_radius(rng)).sum::<f64>() / 5000.0
        };
        assert!(avg(&weak, &mut rng) > 50.0 * avg(&strong, &mut rng));
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(PlanarLaplace::new(0.0).is_err());
        assert!(PlanarLaplace::new(-1.0).is_err());
        assert!(PlanarLaplace::new(f64::NAN).is_err());
    }
}
