//! The (ε, δ) privacy budget.

use serde::{Deserialize, Serialize};

use crate::error::PrivacyError;

/// An (ε, δ) differential-privacy budget.
///
/// The paper trains until the moments accountant reports a cumulative ε that
/// reaches this budget (Algorithm 1, line 12), with δ fixed in advance to a
/// value below `1/N` (§5.1 uses δ = 2·10⁻⁴ < 1/4602).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyBudget {
    /// The privacy budget ε (smaller is more private).
    pub epsilon: f64,
    /// The failure probability δ (smaller is more private).
    pub delta: f64,
}

impl PrivacyBudget {
    /// Creates a validated budget.
    ///
    /// # Errors
    /// `epsilon` must be finite and positive; `delta` must lie in `(0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, PrivacyError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                expected: "finite and > 0",
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: delta,
                expected: "in (0, 1)",
            });
        }
        Ok(PrivacyBudget { epsilon, delta })
    }

    /// The δ the paper uses for the Foursquare Tokyo dataset
    /// (2·10⁻⁴, below 1/N for N = 4602 training users).
    pub fn paper_delta() -> f64 {
        2e-4
    }

    /// `true` iff `delta < 1/n` for a dataset of `n` individuals — the rule
    /// of thumb of Dwork et al. quoted in the paper (§2.1).
    pub fn delta_is_safe_for(&self, n: usize) -> bool {
        n > 0 && self.delta < 1.0 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_budget() {
        let b = PrivacyBudget::new(2.0, 1e-5).unwrap();
        assert_eq!(b.epsilon, 2.0);
        assert_eq!(b.delta, 1e-5);
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(PrivacyBudget::new(0.0, 1e-5).is_err());
        assert!(PrivacyBudget::new(-1.0, 1e-5).is_err());
        assert!(PrivacyBudget::new(f64::INFINITY, 1e-5).is_err());
        assert!(PrivacyBudget::new(f64::NAN, 1e-5).is_err());
    }

    #[test]
    fn rejects_bad_delta() {
        assert!(PrivacyBudget::new(1.0, 0.0).is_err());
        assert!(PrivacyBudget::new(1.0, 1.0).is_err());
        assert!(PrivacyBudget::new(1.0, -0.1).is_err());
    }

    #[test]
    fn paper_delta_is_safe_for_paper_population() {
        let b = PrivacyBudget::new(2.0, PrivacyBudget::paper_delta()).unwrap();
        assert!(b.delta_is_safe_for(4602));
        assert!(!b.delta_is_safe_for(10_000));
        assert!(!b.delta_is_safe_for(0));
    }

    #[test]
    fn serde_round_trip() {
        let b = PrivacyBudget::new(3.0, 1e-6).unwrap();
        let s = serde_json::to_string(&b).unwrap();
        let back: PrivacyBudget = serde_json::from_str(&s).unwrap();
        assert_eq!(b, back);
    }
}
