//! The structured JSONL event sink.
//!
//! Each event is one JSON object on its own line, written with a single
//! `write_all` call (line + trailing newline together) to an append-mode
//! file — the same "whole record or nothing" discipline as the PLPC
//! checkpoint writer, scaled down to log lines. A process killed between
//! events therefore leaves a log whose every line parses; at worst the
//! final line is torn, which a line-by-line reader skips.
//!
//! An in-memory variant backs tests and short-lived tooling that wants to
//! inspect the event stream without touching the filesystem.

use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Where emitted event lines go.
#[derive(Debug)]
pub enum EventSink {
    /// Append-mode file at `path`; one `write_all` per event line.
    File {
        /// The open log file.
        file: File,
        /// Where the log lives (for diagnostics).
        path: PathBuf,
    },
    /// In-memory capture (tests, tooling).
    Memory(Vec<String>),
}

impl EventSink {
    /// Opens (creating if needed) an append-mode JSONL file at `path`.
    ///
    /// # Errors
    /// Any `std::io::Error` from opening the file.
    pub fn file(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventSink::File {
            file,
            path: path.to_path_buf(),
        })
    }

    /// An in-memory sink capturing every line.
    pub fn memory() -> Self {
        EventSink::Memory(Vec::new())
    }

    /// Appends one event line (the trailing newline is added here, so
    /// `line` must not contain one). File sinks issue a single
    /// `write_all` and flush before returning.
    ///
    /// # Errors
    /// Any `std::io::Error` from the underlying write.
    pub fn append_line(&mut self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "one event per line");
        match self {
            EventSink::File { file, .. } => {
                let mut record = String::with_capacity(line.len() + 1);
                record.push_str(line);
                record.push('\n');
                file.write_all(record.as_bytes())?;
                file.flush()
            }
            EventSink::Memory(lines) => {
                lines.push(line.to_string());
                Ok(())
            }
        }
    }

    /// The captured lines of a memory sink (`None` for a file sink).
    pub fn lines(&self) -> Option<&[String]> {
        match self {
            EventSink::Memory(lines) => Some(lines),
            EventSink::File { .. } => None,
        }
    }

    /// The path of a file sink (`None` for a memory sink).
    pub fn path(&self) -> Option<&Path> {
        match self {
            EventSink::File { path, .. } => Some(path),
            EventSink::Memory(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plp_obs_{}_{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("events.jsonl")
    }

    #[test]
    fn memory_sink_captures_lines_in_order() {
        let mut sink = EventSink::memory();
        sink.append_line("{\"a\":1}").unwrap();
        sink.append_line("{\"b\":2}").unwrap();
        assert_eq!(sink.lines().unwrap(), &["{\"a\":1}", "{\"b\":2}"]);
        assert!(sink.path().is_none());
    }

    #[test]
    fn file_sink_appends_parseable_lines() {
        let path = scratch("file_sink");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = EventSink::file(&path).unwrap();
            sink.append_line("{\"kind\":\"one\"}").unwrap();
        }
        {
            // Reopening appends instead of truncating (resume semantics).
            let mut sink = EventSink::file(&path).unwrap();
            sink.append_line("{\"kind\":\"two\"}").unwrap();
            assert_eq!(sink.path(), Some(path.as_path()));
            assert!(sink.lines().is_none());
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.as_object().is_some(), "every line is a JSON object");
        }
    }
}
