//! The structured JSONL event sink.
//!
//! Each event is one JSON object on its own line, written with a single
//! `write_all` call (line + trailing newline together) to an append-mode
//! file — the same "whole record or nothing" discipline as the PLPC
//! checkpoint writer, scaled down to log lines. A process killed between
//! events therefore leaves a log whose every line parses; at worst the
//! final line is torn, which a line-by-line reader skips.
//!
//! An in-memory variant backs tests and short-lived tooling that wants to
//! inspect the event stream without touching the filesystem.

use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Where emitted event lines go.
#[derive(Debug)]
pub enum EventSink {
    /// Append-mode file at `path`; one `write_all` per event line.
    File {
        /// The open log file.
        file: File,
        /// Where the log lives (for diagnostics).
        path: PathBuf,
    },
    /// In-memory capture (tests, tooling).
    Memory(Vec<String>),
}

impl EventSink {
    /// Opens (creating if needed) an append-mode JSONL file at `path`.
    ///
    /// # Errors
    /// Any `std::io::Error` from opening the file.
    pub fn file(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventSink::File {
            file,
            path: path.to_path_buf(),
        })
    }

    /// An in-memory sink capturing every line.
    pub fn memory() -> Self {
        EventSink::Memory(Vec::new())
    }

    /// Appends one event line (the trailing newline is added here, so
    /// `line` must not contain one). File sinks issue a single
    /// `write_all` and flush before returning.
    ///
    /// # Errors
    /// Any `std::io::Error` from the underlying write.
    pub fn append_line(&mut self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "one event per line");
        match self {
            EventSink::File { file, .. } => {
                let mut record = String::with_capacity(line.len() + 1);
                record.push_str(line);
                record.push('\n');
                file.write_all(record.as_bytes())?;
                file.flush()
            }
            EventSink::Memory(lines) => {
                lines.push(line.to_string());
                Ok(())
            }
        }
    }

    /// The captured lines of a memory sink (`None` for a file sink).
    pub fn lines(&self) -> Option<&[String]> {
        match self {
            EventSink::Memory(lines) => Some(lines),
            EventSink::File { .. } => None,
        }
    }

    /// The path of a file sink (`None` for a memory sink).
    pub fn path(&self) -> Option<&Path> {
        match self {
            EventSink::File { path, .. } => Some(path),
            EventSink::Memory(_) => None,
        }
    }
}

/// Replays a JSONL event log written by [`EventSink`], returning the
/// parsed events plus the count of skipped lines.
///
/// The sink's crash discipline guarantees every *completed* line parses;
/// a process killed mid-`write_all` can leave at most a torn final line.
/// Replay therefore parses line by line and skips (but counts) anything
/// that fails — a reader must never die on the artifact of a crash it is
/// investigating.
///
/// # Errors
/// Any `std::io::Error` from reading the file.
pub fn replay_jsonl(path: &Path) -> io::Result<(Vec<serde_json::Value>, usize)> {
    let text = std::fs::read_to_string(path)?;
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match serde_json::from_str::<serde_json::Value>(line) {
            Ok(v) if v.as_object().is_some() => events.push(v),
            _ => skipped += 1,
        }
    }
    Ok((events, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plp_obs_{}_{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("events.jsonl")
    }

    #[test]
    fn memory_sink_captures_lines_in_order() {
        let mut sink = EventSink::memory();
        sink.append_line("{\"a\":1}").unwrap();
        sink.append_line("{\"b\":2}").unwrap();
        assert_eq!(sink.lines().unwrap(), &["{\"a\":1}", "{\"b\":2}"]);
        assert!(sink.path().is_none());
    }

    #[test]
    fn file_sink_appends_parseable_lines() {
        let path = scratch("file_sink");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = EventSink::file(&path).unwrap();
            sink.append_line("{\"kind\":\"one\"}").unwrap();
        }
        {
            // Reopening appends instead of truncating (resume semantics).
            let mut sink = EventSink::file(&path).unwrap();
            sink.append_line("{\"kind\":\"two\"}").unwrap();
            assert_eq!(sink.path(), Some(path.as_path()));
            assert!(sink.lines().is_none());
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.as_object().is_some(), "every line is a JSON object");
        }
    }

    #[test]
    fn torn_final_line_is_skipped_on_replay() {
        let path = scratch("torn_line");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = EventSink::file(&path).unwrap();
            sink.append_line("{\"kind\":\"one\",\"seq\":0}").unwrap();
            sink.append_line("{\"kind\":\"two\",\"seq\":1}").unwrap();
        }
        // A process killed mid-`write_all` leaves a prefix of the final
        // record with no trailing newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"kind\":\"three\",\"se").unwrap();
        }
        let (events, skipped) = replay_jsonl(&path).unwrap();
        assert_eq!(events.len(), 2, "completed lines survive");
        assert_eq!(skipped, 1, "the torn line is skipped, not fatal");
        for (i, event) in events.iter().enumerate() {
            let obj = event.as_object().unwrap();
            assert_eq!(
                obj.get("seq").and_then(serde_json::Value::as_f64),
                Some(i as f64)
            );
        }

        // Resume semantics: a sink reopened over the torn tail appends
        // after it; the torn line stays torn (exactly one skip) and the
        // new record parses.
        {
            let mut sink = EventSink::file(&path).unwrap();
            sink.append_line("{\"kind\":\"four\",\"seq\":2}").unwrap();
        }
        let (events, skipped) = replay_jsonl(&path).unwrap();
        // The torn prefix and the appended record share a physical line,
        // so both are lost to the torn write — but nothing after parses
        // wrong and nothing panics.
        assert_eq!(skipped, 1);
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn concurrent_sinks_on_one_file_never_interleave_records() {
        let path = scratch("concurrent_sinks");
        let _ = std::fs::remove_file(&path);
        const WRITERS: usize = 4;
        const LINES: usize = 250;
        // Each record is long enough that interleaved partial writes
        // would be obvious, and each carries its writer id.
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let path = path.clone();
                scope.spawn(move || {
                    let mut sink = EventSink::file(&path).unwrap();
                    let pad = "x".repeat(64 + w);
                    for i in 0..LINES {
                        let line = format!("{{\"writer\":{w},\"i\":{i},\"pad\":\"{pad}\"}}");
                        sink.append_line(&line).unwrap();
                    }
                });
            }
        });
        let (events, skipped) = replay_jsonl(&path).unwrap();
        assert_eq!(skipped, 0, "no torn or interleaved records");
        assert_eq!(events.len(), WRITERS * LINES);
        // Every writer's every record arrived intact and in per-writer
        // order (O_APPEND + one write_all per record).
        let mut next = [0usize; WRITERS];
        for event in &events {
            let obj = event.as_object().unwrap();
            let w = obj
                .get("writer")
                .and_then(serde_json::Value::as_f64)
                .unwrap() as usize;
            let i = obj.get("i").and_then(serde_json::Value::as_f64).unwrap() as usize;
            assert_eq!(i, next[w], "writer {w} records in order");
            next[w] += 1;
        }
        assert_eq!(next, [LINES; WRITERS]);
    }
}
