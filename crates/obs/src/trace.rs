//! Deterministic cross-process tracing and the flight recorder.
//!
//! The coordinator/worker substrate (plp-fed) and the batched ANN
//! serving pipeline both span several processes and several pipeline
//! stages; flat per-process counters cannot follow one federated round
//! across the pipe or attribute a slow query to its probe/re-rank
//! stage. This module adds spans without giving up the workspace's
//! bit-identity contract:
//!
//! * **Deterministic IDs.** Trace and span ids are pure functions of
//!   quantities the run already determines — `(run_seed, step)` for
//!   training, the engine's query sequence number for serving — chained
//!   through the same SplitMix64 finalizer ([`mix64`]) the counter-based
//!   noise streams use. No wall clock, no `rand`: enabling tracing
//!   cannot consume randomness or reorder any RNG stream, so traced and
//!   untraced runs produce bit-identical parameters, ledgers and ε.
//! * **Flight recorder.** A bounded ring buffer ([`FlightRecorder`])
//!   retains the last N *completed* spans per process. Writers never
//!   block: a slot is claimed with an atomic ticket and written through
//!   `Mutex::try_lock`; the only possible contention (a dump reading the
//!   slot, or a writer a full lap ahead) drops the record and counts it
//!   instead of waiting. On fault events — worker drop, straggler
//!   deadline, `Diverged` stop, chaos-drill kill — the recorder dumps to
//!   JSONL so the seconds before the fault are reconstructable.
//! * **Perfetto export.** [`stitch_chrome_trace`] merges the JSONL dumps
//!   of the coordinator and its workers into a single Chrome-trace-event
//!   JSON (loadable in Perfetto / `chrome://tracing`), re-parenting
//!   worker spans under the coordinator spans whose deterministic ids
//!   they carry and aligning each worker's clock to its parent span.
//!
//! Timestamps are microseconds since the per-process [`Tracer`] epoch;
//! they are *display* data only and never feed back into training or
//! serving. Ids are rendered as fixed-width hex strings in JSON because
//! consumers that read numbers as `f64` would corrupt ids above 2^53.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde_json::Value;

/// Domain constant separating per-step training traces.
pub const DOMAIN_TRAIN_STEP: u64 = 0x706c_705f_7374_6570; // "plp_step"
/// Domain constant separating federated-round traces (standalone
/// executor use; under the trainer the step trace id is inherited).
pub const DOMAIN_FED_ROUND: u64 = 0x706c_705f_726f_756e; // "plp_roun"
/// Domain constant separating per-query serving traces.
pub const DOMAIN_SERVE_QUERY: u64 = 0x706c_705f_7175_6572; // "plp_quer"

/// SplitMix64 finalizer — the same mixing function as
/// `plp_linalg::sample::mix64` (duplicated here so `plp-obs` stays
/// dependency-light; pinned equal by a cross-crate test in `plp-fed`).
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a span name: turns the name into a derivation domain so
/// sibling spans of different kinds get unrelated ids.
#[must_use]
pub fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Never return the reserved id 0 ("no parent") from a derivation.
fn nonzero(id: u64) -> u64 {
    if id == 0 {
        1
    } else {
        id
    }
}

/// Deterministic trace id: `mix64(mix64(mix64(root) ^ domain) ^ index)`
/// — the exact chain shape of `plp_linalg::sample::stream_seed`, with
/// `root` a seed the run already owns (`run_seed`, a query-sequence
/// root) and `index` the step / query number. Never 0.
#[must_use]
pub fn derive_trace_id(root: u64, domain: u64, index: u64) -> u64 {
    nonzero(mix64(mix64(mix64(root) ^ domain) ^ index))
}

/// Deterministic span id within `trace_id`: the span's `name` is hashed
/// into the domain and `index` distinguishes repeats (step, attempt,
/// bucket index, batch index). Never 0.
#[must_use]
pub fn derive_span_id(trace_id: u64, name: &str, index: u64) -> u64 {
    nonzero(mix64(mix64(trace_id ^ fnv1a64(name)) ^ index))
}

/// Renders an id as the fixed-width hex string used in every JSON form.
#[must_use]
pub fn hex_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a [`hex_id`]-formatted id back to a `u64`.
#[must_use]
pub fn parse_hex_id(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// The parent/child context propagated across the fed process boundary
/// (16 little-endian bytes in the frame header: trace id then parent
/// span id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span on both sides of the pipe belongs to.
    pub trace_id: u64,
    /// The sender-side span the receiver parents its spans under.
    pub parent_span: u64,
}

impl TraceContext {
    /// Wire size of an encoded context.
    pub const WIRE_BYTES: usize = 16;

    /// Encodes as 16 little-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; Self::WIRE_BYTES] {
        let mut out = [0u8; Self::WIRE_BYTES];
        out[..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..].copy_from_slice(&self.parent_span.to_le_bytes());
        out
    }

    /// Decodes from the 16-byte wire form.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; Self::WIRE_BYTES]) -> Self {
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        a.copy_from_slice(&bytes[..8]);
        b.copy_from_slice(&bytes[8..]);
        TraceContext {
            trace_id: u64::from_le_bytes(a),
            parent_span: u64::from_le_bytes(b),
        }
    }
}

/// What a [`SpanRecord`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A duration span (`ts_us` + `dur_us`).
    Span,
    /// A point event (`dur_us == 0`).
    Instant,
}

/// Up to two `(name, value)` integer arguments carried by a record; an
/// empty name marks an unused slot.
pub type SpanArgs = [(&'static str, u64); 2];

/// The empty argument list.
pub const NO_ARGS: SpanArgs = [("", 0), ("", 0)];

/// One completed span or instant event, as retained by the flight
/// recorder. `Copy`, fixed-size, and built from `&'static str` names so
/// recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// The trace this record belongs to.
    pub trace_id: u64,
    /// This record's own id (0 for instants without identity).
    pub span_id: u64,
    /// Parent span id; 0 = root.
    pub parent_id: u64,
    /// Span name (static: "fed_round", "local_sgd", …).
    pub name: &'static str,
    /// Category ("train", "fed", "serve") — becomes the Chrome `cat`.
    pub cat: &'static str,
    /// Span vs instant.
    pub kind: RecordKind,
    /// Start, µs since the recording tracer's epoch.
    pub ts_us: u64,
    /// Duration in µs (0 for instants).
    pub dur_us: u64,
    /// Integer arguments (step, slot, attempt, …).
    pub args: SpanArgs,
}

/// Bounded ring buffer of the last N completed records.
///
/// Writers claim a slot with an atomic ticket, then `try_lock` it; the
/// lock is only ever contended by a dump in progress or a writer a full
/// lap ahead, in which case the record is dropped (counted) rather than
/// blocking the hot path.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<(u64, SpanRecord)>>>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` (≥ 1) records.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records claimed so far (including overwritten and dropped ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records dropped to slot contention.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stores `rec`, overwriting the oldest record once full. Never
    /// blocks.
    pub fn record(&self, rec: SpanRecord) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (ticket % self.slots.len() as u64) as usize;
        match self.slots[idx].try_lock() {
            Ok(mut slot) => *slot = Some((ticket, rec)),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The retained records in recording order (oldest first).
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut kept: Vec<(u64, SpanRecord)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            if let Ok(guard) = slot.lock() {
                if let Some(entry) = *guard {
                    kept.push(entry);
                }
            }
        }
        kept.sort_by_key(|(ticket, _)| *ticket);
        kept.into_iter().map(|(_, rec)| rec).collect()
    }
}

/// Configuration for a per-process [`Tracer`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Process label in dumps and the stitched trace ("coordinator",
    /// "worker", "serve", …).
    pub process: String,
    /// Flight-recorder capacity (completed records retained).
    pub capacity: usize,
    /// Where [`Tracer::dump_on_fault`] writes, if anywhere.
    pub dump_path: Option<PathBuf>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            process: "main".to_string(),
            capacity: 4096,
            dump_path: None,
        }
    }
}

impl TraceConfig {
    /// A tracer config with the given process label and defaults
    /// elsewhere.
    #[must_use]
    pub fn named(process: &str) -> Self {
        TraceConfig {
            process: process.to_string(),
            ..TraceConfig::default()
        }
    }

    /// Sets the fault-dump path.
    #[must_use]
    pub fn dump_to(mut self, path: PathBuf) -> Self {
        self.dump_path = Some(path);
        self
    }
}

/// Per-process tracing state: an epoch for timestamps plus the flight
/// recorder. Shared via `Arc` by everything in the process that records.
#[derive(Debug)]
pub struct Tracer {
    process: String,
    pid: u32,
    epoch: Instant,
    recorder: FlightRecorder,
    dump_path: Option<PathBuf>,
    fault_dumps: AtomicU64,
}

impl Tracer {
    /// A tracer with a fresh epoch and an empty recorder.
    #[must_use]
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            process: cfg.process,
            pid: std::process::id(),
            epoch: Instant::now(),
            recorder: FlightRecorder::new(cfg.capacity),
            dump_path: cfg.dump_path,
            fault_dumps: AtomicU64::new(0),
        }
    }

    /// The process label dumps are stamped with.
    #[must_use]
    pub fn process(&self) -> &str {
        &self.process
    }

    /// Microseconds since this tracer's epoch.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// The underlying flight recorder.
    #[must_use]
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Starts a span; it records itself into the flight recorder when
    /// dropped (or [`TraceSpan::finish`]ed).
    #[must_use]
    pub fn span(
        &self,
        name: &'static str,
        cat: &'static str,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
    ) -> TraceSpan<'_> {
        TraceSpan {
            tracer: self,
            rec: SpanRecord {
                trace_id,
                span_id,
                parent_id,
                name,
                cat,
                kind: RecordKind::Span,
                ts_us: self.now_us(),
                dur_us: 0,
                args: NO_ARGS,
            },
        }
    }

    /// Records a completed span with explicit start/end timestamps (for
    /// spans whose lifetime does not nest lexically, e.g. a query that
    /// completes inside a batch worker).
    #[allow(clippy::too_many_arguments)]
    pub fn record_span_at(
        &self,
        name: &'static str,
        cat: &'static str,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        ts_us: u64,
        end_us: u64,
        args: SpanArgs,
    ) {
        self.recorder.record(SpanRecord {
            trace_id,
            span_id,
            parent_id,
            name,
            cat,
            kind: RecordKind::Span,
            ts_us,
            dur_us: end_us.saturating_sub(ts_us),
            args,
        });
    }

    /// Records a point event.
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        trace_id: u64,
        parent_id: u64,
        args: SpanArgs,
    ) {
        self.recorder.record(SpanRecord {
            trace_id,
            span_id: 0,
            parent_id,
            name,
            cat,
            kind: RecordKind::Instant,
            ts_us: self.now_us(),
            dur_us: 0,
            args,
        });
    }

    /// The retained records, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.recorder.snapshot()
    }

    /// The configured fault-dump path.
    #[must_use]
    pub fn dump_path(&self) -> Option<&Path> {
        self.dump_path.as_deref()
    }

    /// Fault dumps attempted so far.
    #[must_use]
    pub fn fault_dumps(&self) -> u64 {
        self.fault_dumps.load(Ordering::Relaxed)
    }

    /// Writes the recorder state as JSONL to `path` (truncating: a dump
    /// is a complete snapshot, the latest fault wins). The first line is
    /// a `"record":"meta"` header carrying the process label, pid,
    /// `reason` and drop counters; each following line is one record.
    ///
    /// # Errors
    /// Any `std::io::Error` from creating or writing the file.
    pub fn dump_to(&self, path: &Path, reason: &str) -> io::Result<usize> {
        let records = self.snapshot();
        let mut out = String::new();
        let meta = serde_json::json!({
            "record": "meta",
            "process": self.process,
            "pid": self.pid,
            "reason": reason,
            "recorded": self.recorder.recorded(),
            "dropped": self.recorder.dropped(),
        });
        out.push_str(&meta.to_string());
        out.push('\n');
        for rec in &records {
            out.push_str(&record_json(self.pid, &self.process, rec).to_string());
            out.push('\n');
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(out.as_bytes())?;
        file.flush()?;
        Ok(records.len())
    }

    /// Dumps to the configured path on a fault event; errors are
    /// swallowed (tracing must never crash the instrumented process) and
    /// the attempt is counted. A no-op without a configured path.
    pub fn dump_on_fault(&self, reason: &str) {
        if let Some(path) = &self.dump_path {
            self.fault_dumps.fetch_add(1, Ordering::Relaxed);
            let _ = self.dump_to(path, reason);
        }
    }
}

/// RAII span guard: measures from creation to drop and records into the
/// tracer's flight recorder.
#[derive(Debug)]
pub struct TraceSpan<'t> {
    tracer: &'t Tracer,
    rec: SpanRecord,
}

impl TraceSpan<'_> {
    /// Attaches an integer argument (two slots; extras are ignored).
    #[must_use]
    pub fn arg(mut self, name: &'static str, value: u64) -> Self {
        for slot in &mut self.rec.args {
            if slot.0.is_empty() {
                *slot = (name, value);
                break;
            }
        }
        self
    }

    /// This span's id, for parenting children under it.
    #[must_use]
    pub fn span_id(&self) -> u64 {
        self.rec.span_id
    }

    /// Ends the span now (same as dropping it).
    pub fn finish(self) {}
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        self.rec.dur_us = self.tracer.now_us().saturating_sub(self.rec.ts_us);
        self.tracer.recorder.record(self.rec);
    }
}

fn record_json(pid: u32, process: &str, rec: &SpanRecord) -> Value {
    let mut args = serde::Map::new();
    for (name, value) in rec.args {
        if !name.is_empty() {
            args.insert(name.to_string(), Value::UInt(value));
        }
    }
    serde_json::json!({
        "record": match rec.kind {
            RecordKind::Span => "span",
            RecordKind::Instant => "instant",
        },
        "process": process,
        "pid": pid,
        "name": rec.name,
        "cat": rec.cat,
        "trace_id": hex_id(rec.trace_id),
        "span_id": hex_id(rec.span_id),
        "parent_id": hex_id(rec.parent_id),
        "ts_us": rec.ts_us,
        "dur_us": rec.dur_us,
        "args": Value::Object(args),
    })
}

/// One record parsed back from a dump (owned strings: the `&'static`
/// discipline only applies at recording time).
#[derive(Debug, Clone, PartialEq)]
pub struct DumpRecord {
    /// Span vs instant.
    pub kind: RecordKind,
    /// Span name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Trace id.
    pub trace_id: u64,
    /// Span id (0 for instants).
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_id: u64,
    /// Start, µs since the dumping process's epoch.
    pub ts_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Named integer arguments.
    pub args: Vec<(String, u64)>,
}

/// A parsed flight-recorder dump: one process's retained records.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDump {
    /// Process label from the meta line.
    pub process: String,
    /// Pid from the meta line.
    pub pid: u64,
    /// Why the dump was taken.
    pub reason: String,
    /// Records in recording order.
    pub records: Vec<DumpRecord>,
    /// Lines skipped because they did not parse (a torn final line from
    /// a killed process is expected and tolerated).
    pub skipped_lines: usize,
}

fn get_str(obj: &serde::Map, key: &str) -> Option<String> {
    match obj.get(key) {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn get_u64(obj: &serde::Map, key: &str) -> Option<u64> {
    match obj.get(key) {
        Some(Value::UInt(v)) => Some(*v),
        Some(Value::Int(v)) if *v >= 0 => Some(*v as u64),
        _ => None,
    }
}

fn get_id(obj: &serde::Map, key: &str) -> Option<u64> {
    match obj.get(key) {
        Some(Value::Str(s)) => parse_hex_id(s),
        _ => None,
    }
}

/// Parses the JSONL text of one flight-recorder dump.
///
/// Unparseable or incomplete lines are skipped and counted
/// ([`TraceDump::skipped_lines`]) — the dump may have been written by a
/// process killed mid-write.
///
/// # Errors
/// If the first line is not a valid `"record":"meta"` header (the dump
/// is unusable without its process identity).
pub fn parse_dump_jsonl(text: &str) -> Result<TraceDump, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let meta_line = lines.next().ok_or_else(|| "empty dump".to_string())?;
    let meta: Value =
        serde_json::from_str(meta_line).map_err(|e| format!("bad meta line: {e:?}"))?;
    let meta = meta.as_object().ok_or("meta line is not an object")?;
    if get_str(meta, "record").as_deref() != Some("meta") {
        return Err("first line is not a meta record".to_string());
    }
    let process = get_str(meta, "process").ok_or("meta missing process")?;
    let pid = get_u64(meta, "pid").ok_or("meta missing pid")?;
    let reason = get_str(meta, "reason").unwrap_or_default();

    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in lines {
        let Ok(value) = serde_json::from_str::<Value>(line) else {
            skipped += 1;
            continue;
        };
        let Some(rec) = parse_record(&value) else {
            skipped += 1;
            continue;
        };
        records.push(rec);
    }
    Ok(TraceDump {
        process,
        pid,
        reason,
        records,
        skipped_lines: skipped,
    })
}

fn parse_record(value: &Value) -> Option<DumpRecord> {
    let obj = value.as_object()?;
    let kind = match get_str(obj, "record")?.as_str() {
        "span" => RecordKind::Span,
        "instant" => RecordKind::Instant,
        _ => return None,
    };
    let mut args = Vec::new();
    if let Some(Value::Object(map)) = obj.get("args") {
        for (k, v) in map.iter() {
            match v {
                Value::UInt(n) => args.push((k.clone(), *n)),
                Value::Int(n) if *n >= 0 => args.push((k.clone(), *n as u64)),
                _ => {}
            }
        }
    }
    Some(DumpRecord {
        kind,
        name: get_str(obj, "name")?,
        cat: get_str(obj, "cat")?,
        trace_id: get_id(obj, "trace_id")?,
        span_id: get_id(obj, "span_id")?,
        parent_id: get_id(obj, "parent_id")?,
        ts_us: get_u64(obj, "ts_us")?,
        dur_us: get_u64(obj, "dur_us")?,
        args,
    })
}

/// Stitches per-process flight-recorder dumps into one Chrome-trace-event
/// JSON string (an object with a `traceEvents` array — loadable in
/// Perfetto and `chrome://tracing`).
///
/// `dumps[0]` is the clock anchor (by convention the coordinator). Every
/// other process's timestamps are offset so that its earliest span whose
/// `parent_id` lives in the anchor process starts where that parent
/// starts; processes with no cross-process parent are aligned on minimum
/// timestamps. Cross-process parent/child edges additionally get Chrome
/// flow events (`ph: "s"` / `"f"`) keyed by the deterministic span id,
/// so Perfetto draws the arrow across the pipe.
#[must_use]
pub fn stitch_chrome_trace(dumps: &[TraceDump]) -> String {
    // Span ids owned by the anchor process, with their start times.
    let anchor_spans: std::collections::BTreeMap<u64, u64> = dumps
        .first()
        .map(|d| {
            d.records
                .iter()
                .filter(|r| r.span_id != 0)
                .map(|r| (r.span_id, r.ts_us))
                .collect()
        })
        .unwrap_or_default();
    let anchor_min = dumps
        .first()
        .and_then(|d| d.records.iter().map(|r| r.ts_us).min())
        .unwrap_or(0);

    let mut events: Vec<Value> = Vec::new();
    let mut offsets: Vec<i64> = Vec::with_capacity(dumps.len());
    for (i, dump) in dumps.iter().enumerate() {
        let offset = if i == 0 {
            0
        } else {
            let linked = dump
                .records
                .iter()
                .filter_map(|r| anchor_spans.get(&r.parent_id).map(|p| (*p, r.ts_us)))
                .min_by_key(|(_, child_ts)| *child_ts);
            match linked {
                Some((parent_ts, child_ts)) => parent_ts as i64 - child_ts as i64,
                None => {
                    let child_min = dump.records.iter().map(|r| r.ts_us).min().unwrap_or(0);
                    anchor_min as i64 - child_min as i64
                }
            }
        };
        offsets.push(offset);
        events.push(serde_json::json!({
            "ph": "M",
            "name": "process_name",
            "pid": dump.pid,
            "tid": 0,
            "args": {"name": dump.process},
        }));
        events.push(serde_json::json!({
            "ph": "M",
            "name": "process_sort_index",
            "pid": dump.pid,
            "tid": 0,
            "args": {"sort_index": i as u64},
        }));
    }

    for (dump, offset) in dumps.iter().zip(&offsets) {
        for rec in &dump.records {
            let ts = (rec.ts_us as i64 + offset).max(0) as u64;
            let mut args = serde::Map::new();
            args.insert("trace_id".to_string(), Value::Str(hex_id(rec.trace_id)));
            args.insert("span_id".to_string(), Value::Str(hex_id(rec.span_id)));
            args.insert("parent_id".to_string(), Value::Str(hex_id(rec.parent_id)));
            for (k, v) in &rec.args {
                args.insert(k.clone(), Value::UInt(*v));
            }
            match rec.kind {
                RecordKind::Span => events.push(serde_json::json!({
                    "ph": "X",
                    "name": rec.name,
                    "cat": rec.cat,
                    "pid": dump.pid,
                    "tid": 1,
                    "ts": ts,
                    "dur": rec.dur_us,
                    "args": Value::Object(args),
                })),
                RecordKind::Instant => events.push(serde_json::json!({
                    "ph": "i",
                    "s": "p",
                    "name": rec.name,
                    "cat": rec.cat,
                    "pid": dump.pid,
                    "tid": 1,
                    "ts": ts,
                    "args": Value::Object(args),
                })),
            }
            // Cross-process parent edge → flow arrow from the anchor's
            // parent span to this record's start.
            if dump.pid != dumps[0].pid {
                if let Some(parent_ts) = anchor_spans.get(&rec.parent_id) {
                    let id = hex_id(rec.parent_id);
                    events.push(serde_json::json!({
                        "ph": "s",
                        "id": id,
                        "name": "fed_pipe",
                        "cat": "flow",
                        "pid": dumps[0].pid,
                        "tid": 1,
                        "ts": *parent_ts,
                    }));
                    events.push(serde_json::json!({
                        "ph": "f",
                        "bp": "e",
                        "id": hex_id(rec.parent_id),
                        "name": "fed_pipe",
                        "cat": "flow",
                        "pid": dump.pid,
                        "tid": 1,
                        "ts": ts,
                    }));
                }
            }
        }
    }

    serde_json::json!({
        "traceEvents": Value::Array(events),
        "displayTimeUnit": "ms",
    })
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_domain_separated() {
        let a = derive_trace_id(42, DOMAIN_TRAIN_STEP, 7);
        let b = derive_trace_id(42, DOMAIN_TRAIN_STEP, 7);
        assert_eq!(a, b, "same inputs, same id");
        assert_ne!(a, derive_trace_id(42, DOMAIN_TRAIN_STEP, 8));
        assert_ne!(a, derive_trace_id(43, DOMAIN_TRAIN_STEP, 7));
        assert_ne!(a, derive_trace_id(42, DOMAIN_SERVE_QUERY, 7));
        assert_ne!(a, 0, "0 is reserved for 'no parent'");

        let s = derive_span_id(a, "local_sgd", 3);
        assert_eq!(s, derive_span_id(a, "local_sgd", 3));
        assert_ne!(s, derive_span_id(a, "noise", 3));
        assert_ne!(s, derive_span_id(a, "local_sgd", 4));
        assert_ne!(s, 0);
    }

    #[test]
    fn hex_ids_round_trip() {
        for id in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_hex_id(&hex_id(id)), Some(id));
        }
        assert_eq!(parse_hex_id("xyz"), None);
        assert_eq!(parse_hex_id("123"), None, "ids are fixed-width");
    }

    #[test]
    fn trace_context_round_trips_through_wire_bytes() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef,
            parent_span: u64::MAX,
        };
        assert_eq!(TraceContext::from_bytes(&ctx.to_bytes()), ctx);
    }

    fn rec(name: &'static str, ts: u64) -> SpanRecord {
        SpanRecord {
            trace_id: 1,
            span_id: ts + 10,
            parent_id: 0,
            name,
            cat: "test",
            kind: RecordKind::Span,
            ts_us: ts,
            dur_us: 5,
            args: NO_ARGS,
        }
    }

    #[test]
    fn flight_recorder_retains_last_n_in_order() {
        let ring = FlightRecorder::new(4);
        for i in 0..10u64 {
            ring.record(rec("r", i));
        }
        let kept = ring.snapshot();
        assert_eq!(kept.len(), 4);
        let ts: Vec<u64> = kept.iter().map(|r| r.ts_us).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "last N, oldest first");
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn flight_recorder_is_safe_under_concurrent_writers() {
        let ring = FlightRecorder::new(64);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        ring.record(rec("w", t * 10_000 + i));
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 4000);
        let kept = ring.snapshot();
        // Every retained record is one that was actually written, and
        // drops (if any) are accounted for.
        assert!(kept.len() <= 64);
        assert!(kept.len() as u64 + ring.dropped() >= 64 || ring.recorded() < 64);
    }

    #[test]
    fn span_guard_records_on_drop_with_args() {
        let tracer = Tracer::new(TraceConfig::named("test"));
        let tid = derive_trace_id(1, DOMAIN_TRAIN_STEP, 0);
        {
            let span = tracer
                .span("step", "train", tid, derive_span_id(tid, "step", 0), 0)
                .arg("step", 7);
            let child = tracer
                .span(
                    "sample",
                    "train",
                    tid,
                    derive_span_id(tid, "sample", 0),
                    span.span_id(),
                )
                .arg("n", 3)
                .arg("m", 4)
                .arg("ignored", 5);
            child.finish();
            span.finish();
        }
        let recs = tracer.snapshot();
        assert_eq!(recs.len(), 2);
        // Child finished first, so it is recorded first.
        assert_eq!(recs[0].name, "sample");
        assert_eq!(recs[0].args[0], ("n", 3));
        assert_eq!(recs[0].args[1], ("m", 4), "third arg dropped");
        assert_eq!(recs[1].name, "step");
        assert_eq!(recs[0].parent_id, recs[1].span_id);
        assert_eq!(recs[0].trace_id, recs[1].trace_id);
    }

    #[test]
    fn dump_and_parse_round_trip_including_torn_final_line() {
        let dir = std::env::temp_dir().join(format!("plp_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump_roundtrip.jsonl");

        let tracer = Tracer::new(TraceConfig::named("coordinator").dump_to(path.clone()));
        let tid = derive_trace_id(9, DOMAIN_FED_ROUND, 1);
        tracer
            .span(
                "fed_round",
                "fed",
                tid,
                derive_span_id(tid, "fed_round", 1),
                0,
            )
            .arg("step", 1)
            .finish();
        tracer.instant("fed_straggler", "fed", tid, 0, [("slot", 2), ("", 0)]);
        tracer.dump_on_fault("test_fault");
        assert_eq!(tracer.fault_dumps(), 1);

        // Simulate a torn final line from a killed process.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"record\":\"span\",\"name\":\"tor").unwrap();
        }

        let text = std::fs::read_to_string(&path).unwrap();
        let dump = parse_dump_jsonl(&text).unwrap();
        assert_eq!(dump.process, "coordinator");
        assert_eq!(dump.reason, "test_fault");
        assert_eq!(dump.skipped_lines, 1, "torn line skipped, not fatal");
        assert_eq!(dump.records.len(), 2);
        assert_eq!(dump.records[0].name, "fed_round");
        assert_eq!(dump.records[0].args, vec![("step".to_string(), 1)]);
        assert_eq!(dump.records[0].trace_id, tid);
        assert_eq!(dump.records[1].kind, RecordKind::Instant);
        assert_eq!(dump.records[1].name, "fed_straggler");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stitch_aligns_worker_clock_and_emits_flow_edges() {
        let tid = derive_trace_id(5, DOMAIN_FED_ROUND, 2);
        let parent = derive_span_id(tid, "fed_send", 0);
        let coord = TraceDump {
            process: "coordinator".into(),
            pid: 100,
            reason: "drill".into(),
            records: vec![DumpRecord {
                kind: RecordKind::Span,
                name: "fed_send".into(),
                cat: "fed".into(),
                trace_id: tid,
                span_id: parent,
                parent_id: 0,
                ts_us: 1000,
                dur_us: 50,
                args: vec![],
            }],
            skipped_lines: 0,
        };
        let worker = TraceDump {
            process: "worker".into(),
            pid: 200,
            reason: "exit".into(),
            records: vec![DumpRecord {
                kind: RecordKind::Span,
                name: "fed_worker_round".into(),
                cat: "fed".into(),
                trace_id: tid,
                span_id: derive_span_id(tid, "fed_worker_round", 0),
                parent_id: parent,
                ts_us: 77, // worker epoch differs wildly from coordinator's
                dur_us: 30,
                args: vec![("step".into(), 2)],
            }],
            skipped_lines: 0,
        };
        let stitched = stitch_chrome_trace(&[coord, worker]);
        let value: Value = serde_json::from_str(&stitched).unwrap();
        let obj = value.as_object().unwrap();
        let Some(Value::Array(events)) = obj.get("traceEvents") else {
            panic!("traceEvents missing: {stitched}");
        };
        // Two process_name + two sort_index metas, two X spans, one s/f
        // flow pair.
        assert_eq!(events.len(), 8, "{stitched}");
        let mut saw_flow_start = false;
        let mut saw_flow_finish = false;
        for ev in events {
            let ev = ev.as_object().unwrap();
            match ev.get("ph") {
                Some(Value::Str(ph))
                    if ph == "X" && get_str(ev, "name").as_deref() == Some("fed_worker_round") =>
                {
                    // Worker clock aligned to the parent span start.
                    assert_eq!(get_u64(ev, "ts"), Some(1000), "{stitched}");
                    assert_eq!(get_u64(ev, "pid"), Some(200));
                }
                Some(Value::Str(ph)) if ph == "s" => saw_flow_start = true,
                Some(Value::Str(ph)) if ph == "f" => saw_flow_finish = true,
                _ => {}
            }
        }
        assert!(saw_flow_start && saw_flow_finish, "{stitched}");
    }

    #[test]
    fn stitch_without_cross_links_aligns_minimums() {
        let mk = |process: &str, pid: u64, ts: u64| TraceDump {
            process: process.into(),
            pid,
            reason: String::new(),
            records: vec![DumpRecord {
                kind: RecordKind::Span,
                name: "solo".into(),
                cat: "t".into(),
                trace_id: 1,
                span_id: 2,
                parent_id: 0,
                ts_us: ts,
                dur_us: 1,
                args: vec![],
            }],
            skipped_lines: 0,
        };
        let stitched = stitch_chrome_trace(&[mk("a", 1, 500), mk("b", 2, 9000)]);
        let value: Value = serde_json::from_str(&stitched).unwrap();
        let Some(Value::Array(events)) = value.as_object().unwrap().get("traceEvents") else {
            panic!();
        };
        for ev in events {
            let ev = ev.as_object().unwrap();
            if let Some(Value::Str(ph)) = ev.get("ph") {
                if ph == "X" {
                    assert_eq!(get_u64(ev, "ts"), Some(500), "min-aligned");
                }
            }
        }
    }
}
