//! Bounded-memory log-linear histograms.
//!
//! A [`Histogram`] records non-negative samples (typically milliseconds)
//! into a **fixed** bucket layout: each power-of-two range
//! `[2^e, 2^{e+1})` is split into [`SUB_BUCKETS`] linear sub-buckets, for
//! exponents `e` in `[`[`MIN_EXP`]`, `[`MAX_EXP`]`)`, plus one underflow
//! bucket (`v <` [`lowest_tracked`]) and one overflow bucket
//! (`v ≥` [`cap`]). Memory is therefore **O([`NUM_BUCKETS`])** regardless
//! of how many samples are recorded — this is what lets a serving engine
//! keep per-query latencies forever without an unbounded `Vec`.
//!
//! Because the layout is fixed, two histograms are always mergeable by
//! bucket-wise addition ([`Histogram::merge`]), and merging is
//! associative and commutative on the counts.
//!
//! # Accuracy guarantee
//!
//! [`Histogram::quantile`] returns the upper bound of the bucket that
//! contains the exact nearest-rank quantile sample (clamped to the
//! recorded maximum). The estimate therefore never undershoots and is off
//! by **at most one bucket width** — a relative error of at most
//! `1 /` [`SUB_BUCKETS`] `= 12.5%` for values inside the tracked range.
//! Samples below [`lowest_tracked`] report at most `lowest_tracked`
//! absolute error; samples at or above [`cap`] are clamped to `cap`.
//!
//! Non-finite input is sanitized so a stray `NaN` can never poison the
//! statistics: `NaN` and negative values record as `0`, `+∞` records as
//! [`cap`] (the overflow bucket).

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power of two (sets the relative bucket width).
pub const SUB_BUCKETS: usize = 8;
/// Smallest tracked exponent: values below `2^MIN_EXP` share the
/// underflow bucket.
pub const MIN_EXP: i32 = -13;
/// One-past-largest tracked exponent: values at or above `2^MAX_EXP`
/// share the overflow bucket.
pub const MAX_EXP: i32 = 23;
/// Total bucket count: underflow + log-linear grid + overflow.
pub const NUM_BUCKETS: usize = 2 + (MAX_EXP - MIN_EXP) as usize * SUB_BUCKETS;

/// Upper bound of the underflow bucket, `2^MIN_EXP` (≈ 0.000122).
pub fn lowest_tracked() -> f64 {
    2.0f64.powi(MIN_EXP)
}

/// Lower bound of the overflow bucket, `2^MAX_EXP` (≈ 8.4 × 10⁶); also
/// the value recorded samples are clamped to.
pub fn cap() -> f64 {
    2.0f64.powi(MAX_EXP)
}

/// A mergeable, serde-able histogram with a fixed log-linear bucket
/// layout. See the module docs for the layout and accuracy guarantee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket sample counts (length [`NUM_BUCKETS`]).
    counts: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Sum of (sanitized) sample values.
    sum: f64,
    /// Smallest sanitized sample, if any were recorded.
    min: Option<f64>,
    /// Largest sanitized sample, if any were recorded.
    max: Option<f64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    /// The bucket index a (sanitized) value falls into.
    pub fn bucket_of(value: f64) -> usize {
        let v = sanitize(value);
        if v < lowest_tracked() {
            return 0;
        }
        if v >= cap() {
            return NUM_BUCKETS - 1;
        }
        // v is normal (≥ 2^-13), so the IEEE exponent field is exact.
        let e = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        let frac = v / 2.0f64.powi(e) - 1.0; // in [0, 1)
        let sub = ((frac * SUB_BUCKETS as f64) as usize).min(SUB_BUCKETS - 1);
        1 + (e - MIN_EXP) as usize * SUB_BUCKETS + sub
    }

    /// `[lower, upper)` bounds of bucket `index`. The underflow bucket is
    /// `[0, lowest_tracked)`; the overflow bucket's upper bound is `+∞`.
    pub fn bucket_bounds(index: usize) -> (f64, f64) {
        assert!(index < NUM_BUCKETS, "bucket index out of range");
        if index == 0 {
            return (0.0, lowest_tracked());
        }
        if index == NUM_BUCKETS - 1 {
            return (cap(), f64::INFINITY);
        }
        let e = MIN_EXP + ((index - 1) / SUB_BUCKETS) as i32;
        let s = (index - 1) % SUB_BUCKETS;
        let base = 2.0f64.powi(e);
        let step = base / SUB_BUCKETS as f64;
        (base + s as f64 * step, base + (s + 1) as f64 * step)
    }

    /// Records one sample. `NaN` and negative values record as `0`; `+∞`
    /// records as [`cap`].
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Records the same sample `n` times in O(1).
    pub fn record_n(&mut self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        let v = sanitize(value);
        self.counts[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum += v * n as f64;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of sanitized sample values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Mean of recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Raw per-bucket counts (length [`NUM_BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Quantile estimate for `q` in `[0, 1]` (`0.5` = median): the upper
    /// bound of the bucket containing the exact nearest-rank sample,
    /// clamped to the recorded maximum. Off by at most one bucket width;
    /// never an undershoot. `None` when empty or `q` is out of range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = Self::bucket_bounds(i);
                return Some(self.max.map_or(upper, |m| upper.min(m)));
            }
        }
        self.max
    }

    /// Bucket-wise merge of `other` into `self`. Both histograms share
    /// the fixed layout, so this is exact on the counts (and associative
    /// and commutative up to floating-point addition of the sums).
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.counts.len(), other.counts.len(), "fixed layout");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = merge_opt(self.min, other.min, f64::min);
        self.max = merge_opt(self.max, other.max, f64::max);
    }
}

/// Maps any float to the recordable domain `[0, cap]`.
fn sanitize(value: f64) -> f64 {
    if value.is_nan() || value < 0.0 {
        0.0
    } else {
        value.min(cap())
    }
}

fn merge_opt(a: Option<f64>, b: Option<f64>, pick: fn(f64, f64) -> f64) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(pick(x, y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exact nearest-rank percentile: the smallest sample with at least
    /// `⌈q·n⌉` samples at or below it.
    fn exact_nearest_rank(values: &[f64], q: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = Histogram::new();
        h.record(3.7);
        assert_eq!(h.count(), 1);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_of(3.7));
            assert!(est >= 3.7 && est <= hi.min(h.max().unwrap()), "q={q}");
            assert!(lo <= 3.7);
        }
        assert_eq!(h.min(), Some(3.7));
        assert_eq!(h.max(), Some(3.7));
    }

    #[test]
    fn quantile_rejects_out_of_range_q() {
        let mut h = Histogram::new();
        h.record(1.0);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        assert_eq!(h.quantile(f64::NAN), None);
    }

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        let mut prev_upper = 0.0;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo < hi, "bucket {i} is non-empty");
            assert!(
                (lo - prev_upper).abs() < 1e-12 * lo.max(1.0),
                "bucket {i} starts where {} ended",
                i.wrapping_sub(1)
            );
            prev_upper = hi;
        }
        assert!(prev_upper.is_infinite());
    }

    #[test]
    fn bucket_of_respects_bounds() {
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_of(lo), i, "lower bound of {i}");
            if hi.is_finite() {
                let inside = lo + (hi - lo) * 0.5;
                assert_eq!(Histogram::bucket_of(inside), i, "midpoint of {i}");
            }
        }
    }

    #[test]
    fn non_finite_and_negative_samples_are_sanitized() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(-5.0);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 4);
        assert!(h.sum().is_finite());
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(cap()));
        assert!(h.quantile(0.99).unwrap().is_finite());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(2.5, 7);
        for _ in 0..7 {
            b.record(2.5);
        }
        assert_eq!(a.bucket_counts(), b.bucket_counts());
        assert_eq!(a.count(), b.count());
        assert!((a.sum() - b.sum()).abs() < 1e-9);
        a.record_n(1.0, 0);
        assert_eq!(a.count(), 7, "recording zero samples is a no-op");
    }

    #[test]
    fn serde_round_trip_preserves_everything() {
        let mut h = Histogram::new();
        for v in [0.0, 0.0001, 0.7, 1.0, 13.25, 900.0, 1e9] {
            h.record(v);
        }
        let text = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&text).unwrap();
        assert_eq!(h, back);
        // The empty histogram (min/max = None) must round-trip too.
        let empty = Histogram::new();
        let text = serde_json::to_string(&empty).unwrap();
        let back: Histogram = serde_json::from_str(&text).unwrap();
        assert_eq!(empty, back);
    }

    proptest! {
        #[test]
        fn percentile_error_is_at_most_one_bucket_width(
            values in prop::collection::vec(0.0..2000.0f64, 1..200),
            q in 0.01..1.0f64,
        ) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let exact = exact_nearest_rank(&values, q);
            let est = h.quantile(q).unwrap();
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_of(exact));
            prop_assert!(est >= exact, "estimate never undershoots: {est} < {exact}");
            prop_assert!(
                est - exact <= hi - lo,
                "error {} exceeds bucket width {} (exact {exact}, est {est})",
                est - exact,
                hi - lo
            );
        }

        #[test]
        fn merge_is_associative_and_commutative(
            xs in prop::collection::vec(0.0..500.0f64, 0..60),
            ys in prop::collection::vec(0.0..500.0f64, 0..60),
            zs in prop::collection::vec(0.0..500.0f64, 0..60),
        ) {
            let build = |vals: &[f64]| {
                let mut h = Histogram::new();
                for &v in vals {
                    h.record(v);
                }
                h
            };
            let (a, b, c) = (build(&xs), build(&ys), build(&zs));

            // (a ⊕ b) ⊕ c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);

            prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
            prop_assert_eq!(left.count(), right.count());
            prop_assert_eq!(left.min(), right.min());
            prop_assert_eq!(left.max(), right.max());
            let scale = left.sum().abs().max(1.0);
            prop_assert!((left.sum() - right.sum()).abs() <= 1e-9 * scale);

            // b ⊕ a == a ⊕ b on the counts.
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab.bucket_counts(), ba.bucket_counts());
            prop_assert_eq!(ab.count(), ba.count());
        }

        #[test]
        fn merged_equals_bulk_recorded(
            xs in prop::collection::vec(0.0..500.0f64, 0..80),
            split in 0.0..1.0f64,
        ) {
            let cut = (split * xs.len() as f64) as usize;
            let mut all = Histogram::new();
            for &v in &xs {
                all.record(v);
            }
            let mut left = Histogram::new();
            for &v in &xs[..cut] {
                left.record(v);
            }
            let mut right = Histogram::new();
            for &v in &xs[cut..] {
                right.record(v);
            }
            left.merge(&right);
            prop_assert_eq!(all.bucket_counts(), left.bucket_counts());
            prop_assert_eq!(all.count(), left.count());
            prop_assert_eq!(all.min(), left.min());
            prop_assert_eq!(all.max(), left.max());
        }

        #[test]
        fn serde_round_trip_random(values in prop::collection::vec(0.0..1e7f64, 0..50)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let text = serde_json::to_string(&h).unwrap();
            let back: Histogram = serde_json::from_str(&text).unwrap();
            prop_assert_eq!(h, back);
        }
    }
}
