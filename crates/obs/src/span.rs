//! Hand-rolled span timing (no `tracing` dependency — the build is
//! offline, so this follows the same stub-over-crate discipline as
//! `compat/`).
//!
//! A [`Span`] measures the wall time of one phase of work and records it,
//! in milliseconds, into the per-phase [`HistogramHandle`] it was started
//! from — either when explicitly [`Span::finish`]ed or when dropped, so
//! early returns and `?` propagation are still measured.

use std::time::Instant;

use crate::registry::HistogramHandle;

/// An in-flight phase timer; records elapsed milliseconds on drop.
#[derive(Debug)]
pub struct Span {
    hist: HistogramHandle,
    start: Instant,
}

impl Span {
    /// Starts timing now, recording into `hist` on completion.
    pub(crate) fn new(hist: HistogramHandle) -> Self {
        Span {
            hist,
            start: Instant::now(),
        }
    }

    /// Milliseconds elapsed so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Ends the span, recording its duration (equivalent to dropping it,
    /// but reads better at call sites).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record_ms_since(self.start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn span_records_once_on_finish_or_drop() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("phase_ms", Some(("phase", "demo")));
        h.start_span().finish();
        {
            let _span = h.start_span(); // dropped at scope end
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert!(snap.min().unwrap() >= 0.0);
    }

    #[test]
    fn disconnected_span_is_a_no_op() {
        let h = HistogramHandle::default();
        let span = h.start_span();
        assert!(span.elapsed_ms() >= 0.0);
        span.finish();
        assert_eq!(h.snapshot().count(), 0);
    }
}
