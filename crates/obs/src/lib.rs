//! `plp-obs` — dependency-light observability for training and serving.
//!
//! The ROADMAP's production north-star needs a run to be observable
//! *while* it burns its ε budget, not only from a `Vec` returned at the
//! end. This crate provides the four pieces the rest of the workspace
//! threads through its hot paths:
//!
//! * [`hist::Histogram`] — bounded-memory **log-linear histograms**
//!   (fixed bucket layout, mergeable, serde-able, ≤ one-bucket-width
//!   quantile error) that replace unbounded per-sample `Vec`s,
//! * [`registry::MetricsRegistry`] — named counters, gauges and
//!   histograms behind cheap `Arc` handles, with a
//!   **Prometheus-text-format** exporter
//!   ([`MetricsRegistry::render_prometheus`]),
//! * [`span::Span`] — hand-rolled **phase-span timing** (no `tracing`
//!   crate; the build is offline) recording per-phase latency histograms,
//! * [`events::EventSink`] — a **structured JSONL event log** written
//!   one `write_all` per line, so a killed run leaves a readable log.
//!
//! [`Observer`] bundles them behind one cheap-to-clone handle that is
//! **inert by default** (like the trainer's `FaultInjector`): a
//! `Observer::disabled()` makes every counter, span and event a no-op,
//! so instrumentation can stay compiled into the hot paths
//! unconditionally.

pub mod events;
pub mod hist;
pub mod registry;
pub mod span;
pub mod trace;

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde_json::Value;

use events::EventSink;
pub use hist::Histogram;
pub use registry::{Counter, Gauge, HistogramHandle, MetricsRegistry};
pub use span::Span;
pub use trace::{TraceConfig, TraceContext, TraceSpan, Tracer};

/// The shared state behind an enabled [`Observer`].
#[derive(Debug)]
struct ObserverCore {
    run_id: String,
    registry: MetricsRegistry,
    sink: Option<Mutex<EventSink>>,
    seq: AtomicU64,
    dropped_events: AtomicU64,
    /// Attached post-construction by [`Observer::attach_tracer`]; shared
    /// by every clone, like the registry.
    tracer: Mutex<Option<Arc<Tracer>>>,
    /// The trace context the *current* unit of work (train step, fed
    /// round) runs under — set by the driving loop, read by executors so
    /// their spans parent correctly without threading context through
    /// every call signature.
    trace_scope: Mutex<Option<TraceContext>>,
}

/// One observability context for a run: a metrics registry plus an
/// optional JSONL event sink, shared by every clone.
///
/// `Observer::default()` is **disabled**: every operation is a no-op and
/// every handle it returns is disconnected, so components accept an
/// `Observer` unconditionally and pay nothing when nobody is watching.
///
/// Event-sink write failures never propagate into the instrumented code
/// path (observability must not crash training); they are counted in
/// [`Observer::dropped_events`] instead.
#[derive(Debug, Clone, Default)]
pub struct Observer {
    inner: Option<Arc<ObserverCore>>,
}

impl Observer {
    /// The inert observer: records nothing, emits nothing.
    pub fn disabled() -> Self {
        Observer { inner: None }
    }

    /// An enabled observer with a metrics registry but no event sink.
    pub fn new(run_id: &str) -> Self {
        Observer::with_sink(run_id, None)
    }

    /// An enabled observer writing JSONL events to `path` (created if
    /// missing, appended to if present — resume semantics).
    ///
    /// # Errors
    /// Any `std::io::Error` from opening the log file.
    pub fn with_jsonl_file(run_id: &str, path: &Path) -> std::io::Result<Self> {
        Ok(Observer::with_sink(run_id, Some(EventSink::file(path)?)))
    }

    /// An enabled observer capturing events in memory (tests, tooling);
    /// read them back with [`Observer::captured_events`].
    pub fn with_memory_sink(run_id: &str) -> Self {
        Observer::with_sink(run_id, Some(EventSink::memory()))
    }

    fn with_sink(run_id: &str, sink: Option<EventSink>) -> Self {
        Observer {
            inner: Some(Arc::new(ObserverCore {
                run_id: run_id.to_string(),
                registry: MetricsRegistry::new(),
                sink: sink.map(Mutex::new),
                seq: AtomicU64::new(0),
                dropped_events: AtomicU64::new(0),
                tracer: Mutex::new(None),
                trace_scope: Mutex::new(None),
            })),
        }
    }

    /// Attaches a [`Tracer`] (flight recorder + deterministic span ids)
    /// to this observer and every clone sharing its core. Returns the
    /// shared tracer handle, or `None` when the observer is disabled —
    /// tracing rides on an enabled observer, never the other way round.
    ///
    /// Attaching twice replaces the tracer; instrumented code resolves
    /// [`Observer::tracer`] per unit of work, so a replacement takes
    /// effect at the next step/round/query.
    pub fn attach_tracer(&self, cfg: TraceConfig) -> Option<Arc<Tracer>> {
        let core = self.inner.as_ref()?;
        let tracer = Arc::new(Tracer::new(cfg));
        *core.tracer.lock().expect("tracer poisoned") = Some(Arc::clone(&tracer));
        Some(tracer)
    }

    /// The attached tracer, if tracing is enabled. Hot paths resolve
    /// this once per step / round / serve call, not per span.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.inner
            .as_ref()
            .and_then(|c| c.tracer.lock().ok().and_then(|t| t.clone()))
    }

    /// Publishes the trace context the current unit of work (train
    /// step, fed round) runs under; executors read it with
    /// [`Observer::trace_scope`] to parent their spans without context
    /// threading through every call signature. No-op when disabled.
    pub fn set_trace_scope(&self, ctx: Option<TraceContext>) {
        if let Some(core) = &self.inner {
            if let Ok(mut scope) = core.trace_scope.lock() {
                *scope = ctx;
            }
        }
    }

    /// The trace context published by the driving loop, if any.
    pub fn trace_scope(&self) -> Option<TraceContext> {
        self.inner
            .as_ref()
            .and_then(|c| c.trace_scope.lock().ok().and_then(|s| *s))
    }

    /// `false` for the inert observer.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The run id events are stamped with (`None` when disabled).
    pub fn run_id(&self) -> Option<&str> {
        self.inner.as_ref().map(|c| c.run_id.as_str())
    }

    /// The metrics registry (`None` when disabled).
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|c| &c.registry)
    }

    /// The counter `name` (disconnected no-op handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .as_ref()
            .map_or_else(Counter::default, |c| c.registry.counter(name))
    }

    /// The counter `name{key="value"}`.
    pub fn counter_with(&self, name: &str, key: &str, value: &str) -> Counter {
        self.inner.as_ref().map_or_else(Counter::default, |c| {
            c.registry.counter_with(name, Some((key, value)))
        })
    }

    /// The gauge `name` (disconnected no-op handle when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .as_ref()
            .map_or_else(Gauge::default, |c| c.registry.gauge(name))
    }

    /// The histogram `name` (disconnected no-op handle when disabled).
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.inner
            .as_ref()
            .map_or_else(HistogramHandle::default, |c| c.registry.histogram(name))
    }

    /// The histogram `name{key="value"}` — the per-phase latency series.
    pub fn histogram_with(&self, name: &str, key: &str, value: &str) -> HistogramHandle {
        self.inner
            .as_ref()
            .map_or_else(HistogramHandle::default, |c| {
                c.registry.histogram_with(name, Some((key, value)))
            })
    }

    /// Starts a [`Span`] recording into `name{phase="..."}` when it ends.
    pub fn span(&self, name: &str, phase: &str) -> Span {
        self.histogram_with(name, "phase", phase).start_span()
    }

    /// Appends one event to the JSONL sink as
    /// `{"kind": …, "payload": …, "run_id": …, "seq": n}`. A no-op when
    /// disabled or sinkless; write failures increment
    /// [`Observer::dropped_events`] and are otherwise swallowed.
    pub fn emit(&self, kind: &str, payload: Value) {
        let Some(core) = &self.inner else { return };
        let Some(sink) = &core.sink else { return };
        let seq = core.seq.fetch_add(1, Ordering::Relaxed);
        let line = serde_json::json!({
            "run_id": core.run_id,
            "seq": seq,
            "kind": kind,
            "payload": payload
        })
        .to_string();
        let wrote = sink
            .lock()
            .map_err(|_| ())
            .and_then(|mut s| s.append_line(&line).map_err(|_| ()));
        if wrote.is_err() {
            core.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events lost to sink write failures.
    pub fn dropped_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |c| c.dropped_events.load(Ordering::Relaxed))
    }

    /// The lines captured by a memory sink (empty otherwise).
    pub fn captured_events(&self) -> Vec<String> {
        let Some(core) = &self.inner else {
            return Vec::new();
        };
        let Some(sink) = &core.sink else {
            return Vec::new();
        };
        sink.lock()
            .expect("sink poisoned")
            .lines()
            .map_or_else(Vec::new, <[String]>::to_vec)
    }

    /// Renders the registry in Prometheus text format (empty string when
    /// disabled).
    pub fn render_prometheus(&self) -> String {
        self.inner
            .as_ref()
            .map_or_else(String::new, |c| c.registry.render_prometheus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_is_free_and_silent() {
        let obs = Observer::disabled();
        assert!(!obs.is_enabled());
        obs.counter("c").inc();
        obs.gauge("g").set(1.0);
        obs.histogram("h").record(1.0);
        obs.span("p", "x").finish();
        obs.emit("step", serde_json::json!({"step": 1}));
        assert_eq!(obs.captured_events().len(), 0);
        assert_eq!(obs.render_prometheus(), "");
        assert_eq!(obs.run_id(), None);
        assert!(obs.registry().is_none());
    }

    #[test]
    fn emitted_events_carry_envelope_and_sequence() {
        let obs = Observer::with_memory_sink("run-7");
        obs.emit("run_start", serde_json::json!({"max_steps": 5}));
        obs.emit("step", serde_json::json!({"step": 1, "eps": 0.25}));
        let events = obs.captured_events();
        assert_eq!(events.len(), 2);
        for (i, line) in events.iter().enumerate() {
            let v: Value = serde_json::from_str(line).unwrap();
            let obj = v.as_object().unwrap();
            assert_eq!(obj.get("run_id"), Some(&Value::Str("run-7".into())));
            assert_eq!(obj.get("seq").and_then(Value::as_f64), Some(i as f64));
            assert!(obj.contains_key("kind") && obj.contains_key("payload"));
        }
        assert_eq!(obs.dropped_events(), 0);
    }

    #[test]
    fn clones_share_registry_and_sink() {
        let obs = Observer::with_memory_sink("shared");
        let clone = obs.clone();
        clone.counter("steps").add(3);
        clone.emit("step", serde_json::json!({"step": 1}));
        assert_eq!(obs.counter("steps").get(), 3);
        assert_eq!(obs.captured_events().len(), 1);
    }

    #[test]
    fn prometheus_rendering_covers_all_metric_kinds() {
        let obs = Observer::new("render");
        obs.counter("plp_steps_total").inc();
        obs.gauge("plp_epsilon_spent").set(0.75);
        obs.span("plp_train_phase_ms", "sample").finish();
        let text = obs.render_prometheus();
        assert!(text.contains("plp_steps_total 1"), "{text}");
        assert!(text.contains("plp_epsilon_spent 0.75"), "{text}");
        assert!(
            text.contains("plp_train_phase_ms_bucket{phase=\"sample\",le=\"+Inf\"} 1"),
            "{text}"
        );
    }
}
