//! The metrics registry: named counters, gauges and histograms behind
//! cheap cloneable handles, with a Prometheus-text-format exporter.
//!
//! Metrics are identified by a name plus an optional single
//! `key="value"` label (enough for the per-phase series this workspace
//! needs). Handles returned by the registry are `Arc`-backed: resolve
//! once, then record lock-free (counters, gauges) or under a short
//! per-metric mutex (histograms). A `Default`-constructed handle is
//! *disconnected* — every operation is a no-op — which is how the
//! disabled [`crate::Observer`] makes instrumentation free to leave in
//! place.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::Histogram;
use crate::span::Span;

/// Metric identity: name plus an optional `(key, value)` label pair.
type MetricKey = (String, Option<(String, String)>);

/// A concurrent registry of counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<Mutex<Histogram>>>>,
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disconnected handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle. Values are stored as raw `f64` bits,
/// so `set(x)` followed by `get()` is bit-exact.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge to `v` (bit-exact).
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (`0.0` for a disconnected handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// A histogram handle; see [`Histogram`] for the layout and accuracy
/// guarantees.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Mutex<Histogram>>>);

impl HistogramHandle {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        self.record_n(v, 1);
    }

    /// Records the same sample `n` times in O(1).
    pub fn record_n(&self, v: f64, n: u64) {
        if let Some(cell) = &self.0 {
            cell.lock().expect("histogram poisoned").record_n(v, n);
        }
    }

    /// Records the milliseconds elapsed since `start`.
    pub fn record_ms_since(&self, start: Instant) {
        self.record(start.elapsed().as_secs_f64() * 1e3);
    }

    /// Starts a [`Span`] that records its elapsed milliseconds here when
    /// dropped (or [`Span::finish`]ed).
    pub fn start_span(&self) -> Span {
        Span::new(self.clone())
    }

    /// A point-in-time copy of the histogram (empty for a disconnected
    /// handle).
    pub fn snapshot(&self) -> Histogram {
        self.0.as_ref().map_or_else(Histogram::new, |cell| {
            cell.lock().expect("histogram poisoned").clone()
        })
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, None)
    }

    /// The counter `name{key="value"}` (created on first use); `label`
    /// is an optional `(key, value)` pair.
    pub fn counter_with(&self, name: &str, label: Option<(&str, &str)>) -> Counter {
        let mut map = self.counters.lock().expect("registry poisoned");
        Counter(Some(Arc::clone(
            map.entry(key_of(name, label)).or_default(),
        )))
    }

    /// The gauge `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, None)
    }

    /// The gauge `name{key="value"}` (created on first use).
    pub fn gauge_with(&self, name: &str, label: Option<(&str, &str)>) -> Gauge {
        let mut map = self.gauges.lock().expect("registry poisoned");
        Gauge(Some(Arc::clone(
            map.entry(key_of(name, label)).or_default(),
        )))
    }

    /// The histogram `name` (created on first use).
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.histogram_with(name, None)
    }

    /// The histogram `name{key="value"}` (created on first use).
    pub fn histogram_with(&self, name: &str, label: Option<(&str, &str)>) -> HistogramHandle {
        let mut map = self.histograms.lock().expect("registry poisoned");
        HistogramHandle(Some(Arc::clone(
            map.entry(key_of(name, label)).or_default(),
        )))
    }

    /// Renders every metric in the Prometheus text exposition format.
    ///
    /// Histograms render cumulative `_bucket{le="…"}` series (only the
    /// boundaries whose bucket is non-empty, plus `+Inf` — omitting
    /// boundaries keeps cumulative counts valid and the output compact),
    /// a `_sum` and a `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let counters = self.counters.lock().expect("registry poisoned");
        render_scalars(&mut out, &counters, "counter", |cell| {
            format_number(cell.load(Ordering::Relaxed) as f64)
        });
        drop(counters);

        let gauges = self.gauges.lock().expect("registry poisoned");
        render_scalars(&mut out, &gauges, "gauge", |cell| {
            format_number(f64::from_bits(cell.load(Ordering::Relaxed)))
        });
        drop(gauges);

        let histograms = self.histograms.lock().expect("registry poisoned");
        let mut last_name: Option<&str> = None;
        for ((name, label), cell) in histograms.iter() {
            if last_name != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} histogram");
                last_name = Some(name.as_str());
            }
            let h = cell.lock().expect("histogram poisoned").clone();
            let mut cumulative = 0u64;
            for (i, &c) in h.bucket_counts().iter().enumerate() {
                cumulative += c;
                let (_, upper) = Histogram::bucket_bounds(i);
                if c > 0 && upper.is_finite() {
                    let series = series_with_le(name, label.as_ref(), &format_number(upper));
                    let _ = writeln!(out, "{series} {cumulative}");
                }
            }
            let series = series_with_le(name, label.as_ref(), "+Inf");
            let _ = writeln!(out, "{series} {cumulative}");
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                name,
                label_suffix(label.as_ref()),
                format_number(h.sum())
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                name,
                label_suffix(label.as_ref()),
                h.count()
            );
        }
        out
    }
}

fn key_of(name: &str, label: Option<(&str, &str)>) -> MetricKey {
    (
        name.to_string(),
        label.map(|(k, v)| (k.to_string(), v.to_string())),
    )
}

/// Renders the counter or gauge sections (they share their shape).
fn render_scalars(
    out: &mut String,
    map: &BTreeMap<MetricKey, Arc<AtomicU64>>,
    kind: &str,
    value_of: impl Fn(&AtomicU64) -> String,
) {
    let mut last_name: Option<&str> = None;
    for ((name, label), cell) in map.iter() {
        if last_name != Some(name.as_str()) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_name = Some(name.as_str());
        }
        let _ = writeln!(
            out,
            "{}{} {}",
            name,
            label_suffix(label.as_ref()),
            value_of(cell)
        );
    }
}

/// `{key="value"}` or the empty string.
fn label_suffix(label: Option<&(String, String)>) -> String {
    match label {
        Some((k, v)) => format!("{{{k}=\"{}\"}}", escape_label(v)),
        None => String::new(),
    }
}

/// `name_bucket{…,le="…"}` with the metric label (if any) merged in.
fn series_with_le(name: &str, label: Option<&(String, String)>, le: &str) -> String {
    match label {
        Some((k, v)) => format!("{name}_bucket{{{k}=\"{}\",le=\"{le}\"}}", escape_label(v)),
        None => format!("{name}_bucket{{le=\"{le}\"}}"),
    }
}

/// Escapes `\`, `"` and newlines per the Prometheus text format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Shortest-round-trip float rendering (integers render without `.0`,
/// matching Prometheus conventions).
fn format_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate_and_render() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-resolving the same name sees the same cell.
        assert_eq!(reg.counter("requests_total").get(), 5);

        let g = reg.gauge("epsilon_spent");
        g.set(1.25);
        assert_eq!(g.get(), 1.25);
        g.set(2.5);
        assert_eq!(reg.gauge("epsilon_spent").get(), 2.5);

        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total 5"), "{text}");
        assert!(text.contains("# TYPE epsilon_spent gauge"), "{text}");
        assert!(text.contains("epsilon_spent 2.5"), "{text}");
    }

    #[test]
    fn gauge_round_trip_is_bit_exact() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("eps");
        for v in [0.1 + 0.2, 1.0 / 3.0, 2.0f64.powi(-40), 123.456789] {
            g.set(v);
            assert_eq!(g.get().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn labeled_series_are_distinct_and_rendered() {
        let reg = MetricsRegistry::new();
        reg.counter_with("stops_total", Some(("reason", "Diverged")))
            .inc();
        reg.counter_with("stops_total", Some(("reason", "MaxSteps")))
            .add(2);
        assert_eq!(
            reg.counter_with("stops_total", Some(("reason", "Diverged")))
                .get(),
            1
        );
        let text = reg.render_prometheus();
        assert!(
            text.contains("stops_total{reason=\"Diverged\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("stops_total{reason=\"MaxSteps\"} 2"),
            "{text}"
        );
        // One TYPE line for the family.
        assert_eq!(text.matches("# TYPE stops_total counter").count(), 1);
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("phase_ms", Some(("phase", "matmul")));
        h.record(0.5);
        h.record(0.6);
        h.record(200.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE phase_ms histogram"), "{text}");
        assert!(
            text.contains("phase_ms_bucket{phase=\"matmul\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("phase_ms_count{phase=\"matmul\"} 3"),
            "{text}"
        );
        // Cumulative counts are non-decreasing down the rendered series.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("phase_ms_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "cumulative counts must not decrease: {text}");
            last = n;
        }
        assert_eq!(last, 3);
    }

    #[test]
    fn hostile_label_values_are_escaped_per_exposition_format() {
        // Regression pin for the exposition escaping rules: a label
        // value containing `\`, `"` or a newline must render as `\\`,
        // `\"` and `\n` — otherwise one hostile/odd label (say, a user
        // agent or a path) corrupts the whole scrape.
        let reg = MetricsRegistry::new();
        let hostile = "path\\to\"x\"\nline2";
        reg.counter_with("odd_total", Some(("label", hostile)))
            .inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains("odd_total{label=\"path\\\\to\\\"x\\\"\\nline2\"} 1"),
            "{text}"
        );
        // The rendered output must stay one series per physical line: a
        // raw newline in a label value would split the series in two.
        for line in text.lines().filter(|l| l.contains("odd_total{")) {
            assert!(
                line.ends_with(" 1"),
                "series split by unescaped newline: {line:?}"
            );
        }
    }

    #[test]
    fn hostile_label_values_are_escaped_in_histogram_bucket_series() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("odd_ms", Some(("phase", "a\"b\\c\nd")));
        h.record(1.0);
        let text = reg.render_prometheus();
        // Both the bucket series (le merged in) and the sum/count series
        // go through the escaping path.
        assert!(
            text.contains("odd_ms_bucket{phase=\"a\\\"b\\\\c\\nd\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("odd_ms_count{phase=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
        // Escape order matters: backslashes first, or the `\"` from the
        // quote escape would be double-escaped.
        assert_eq!(escape_label("\\\""), "\\\\\\\"");
        assert_eq!(escape_label("\n"), "\\n");
    }

    #[test]
    fn disconnected_handles_are_no_ops() {
        let c = Counter::default();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(9.0);
        assert_eq!(g.get(), 0.0);
        let h = HistogramHandle::default();
        h.record(1.0);
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn handles_share_state_across_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut joins = Vec::new();
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            joins.push(std::thread::spawn(move || {
                let c = reg.counter("shared");
                let h = reg.histogram("lat_ms");
                for i in 0..100 {
                    c.inc();
                    h.record(i as f64 * 0.01);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(reg.counter("shared").get(), 400);
        assert_eq!(reg.histogram("lat_ms").snapshot().count(), 400);
    }
}
